#!/usr/bin/env python3
"""Compare the wrapped and subheap allocators on real workloads.

Reproduces the headline of the paper's Figure 10/12 story: the subheap
allocator's shared per-block metadata makes allocation-heavy programs
*faster and smaller* than baseline, while the wrapped allocator pays
per-object metadata everywhere.

Run:  python examples/allocator_comparison.py [benchmark ...]
"""

import sys

from repro.eval import Sweep
from repro.workloads import all_workloads, get

DEFAULT_SET = ("treeadd", "perimeter", "health", "ft", "anagram")


def main() -> None:
    names = sys.argv[1:] or DEFAULT_SET
    workloads = [get(name) for name in names]
    sweep = Sweep(scale=1, workloads=workloads)

    print(f"{'benchmark':12s} {'config':9s} {'instructions':>13s} "
          f"{'cycles':>11s} {'L1D miss':>9s} {'memory':>10s} "
          f"{'vs baseline':>12s}")
    print("-" * 74)
    for workload in workloads:
        base = sweep.run(workload, "baseline")
        for config in ("baseline", "wrapped", "subheap"):
            run = sweep.run(workload, config)
            ratio = run.cycles / base.cycles
            print(f"{workload.name:12s} {config:9s} "
                  f"{run.instructions:13,d} {run.cycles:11,d} "
                  f"{run.stats.l1d_misses:9,d} {run.memory:10,d} "
                  f"{ratio:11.2f}x")
        print()

    print("Note how treeadd/perimeter run *below* 1.00x under the subheap")
    print("allocator (the pool allocator beats the glibc model by more")
    print("than the instrumentation costs), the paper's Table 4 result.")


if __name__ == "__main__":
    main()
