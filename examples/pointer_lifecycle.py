#!/usr/bin/env python3
"""Trace one pointer through its In-Fat Pointer lifecycle.

Uses the execution tracer to show the actual `ifp*` instructions a
pointer's journey executes, and `explain_pointer` to decode the tagged
values along the way.

Run:  python examples/pointer_lifecycle.py
"""

from repro.compiler import CompilerOptions, compile_source
from repro.debug import attach_tracer, explain_pointer
from repro.vm import Machine

SOURCE = """
struct Packet {
    int header;
    char payload[24];
    int checksum;
};

char *g_cursor;

int main(void) {
    struct Packet *p = (struct Packet*)malloc(sizeof(struct Packet));
    p->header = 42;
    g_cursor = p->payload;        /* subobject pointer escapes */
    char *q = g_cursor;           /* reload: promote + narrowing */
    q[5] = 'x';
    p->checksum = 7;
    free(p);
    return 0;
}
"""


def main() -> None:
    program = compile_source(SOURCE, CompilerOptions.wrapped())
    machine = Machine(program)
    tracer = attach_tracer(machine, ifp_only=True)
    result = machine.run()
    assert result.ok

    print("IFP instructions executed by main() (tag maintenance,")
    print("metadata registration, promote):")
    print("-" * 64)
    for event in tracer.events:
        if event.function == "main":
            print(f"  {event}")
    print()

    # Rebuild the pointer states to explain them.
    machine2 = Machine(compile_source(SOURCE, CompilerOptions.wrapped()))
    tagged, bounds, _c, _i = machine2.wrapped_allocator.malloc(
        32, machine2.image.symbols.get("__IFP_LT_Packet", 0), 32)
    print("anatomy of the allocation's tagged pointer:")
    print(explain_pointer(machine2, tagged).describe())
    print()

    from repro.ifp.tag import unpack_tag
    from repro.compiler.layout_gen import member_delta
    payload_ptr = (tagged + 4)  # &p->payload, before tag maintenance
    # Apply the ifpidx the compiler would emit (payload is entry 2).
    tag = unpack_tag(tagged).with_subobject_index(2)
    from repro.ifp.tag import with_tag
    subobject = with_tag(payload_ptr, tag)
    print("anatomy after ifpadd + ifpidx to &p->payload:")
    print(explain_pointer(machine2, subobject).describe())
    print()
    print("Note the non-zero subobject index and the narrowed bounds the")
    print("promote dry-run reports — that narrowing is what catches the")
    print("paper's Listing-1 intra-object overflow.")


if __name__ == "__main__":
    main()
