#!/usr/bin/env python3
"""Subobject-granularity protection: the paper's Listing 1 end-to-end.

Shows (1) the layout table generated for a nested struct (the paper's
Figure 9), (2) an intra-object overflow that coarse object-bounds schemes
miss, caught by In-Fat Pointer's bounds narrowing, and (3) how the
guarantee degrades gracefully to object granularity when no layout table
exists (allocation through a wrapper).

Run:  python examples/intra_object.py
"""

from repro import CompilerOptions, Machine, compile_source
from repro.compiler.layout_gen import build_layout_table
from repro.lang import analyze, parse

SOURCE_TEMPLATE = """
struct NestedTy {{
    int v3;
    int v4;
}};

struct S {{
    int v1;
    struct NestedTy array[2];
    int v5;
}};

{alloc_helper}

int *g_escape;

int main(void) {{
    struct S *s = (struct S*){alloc_call}(sizeof(struct S));
    s->v5 = 99;
    g_escape = &s->array[1].v3;   /* subobject pointer escapes */
    int *q = g_escape;            /* reload: promote + narrowing */
    q[{index}] = 7;               /* q[1] would write v4 */
    printf("v5 = %d\\n", s->v5);
    return 0;
}}
"""


def build(index: int, wrapper: bool) -> str:
    return SOURCE_TEMPLATE.format(
        alloc_helper=("void *my_alloc(unsigned long n) "
                      "{ return malloc(n); }" if wrapper else ""),
        alloc_call="my_alloc" if wrapper else "malloc",
        index=index)


def show_layout_table() -> None:
    program = analyze(parse(build(0, wrapper=False)))
    table = build_layout_table(program.struct("S"), "S", 64)
    print("layout table for struct S (paper Figure 9b):")
    print(f"  {'#':>2s} {'parent':>6s} {'base':>5s} {'bound':>5s} "
          f"{'size':>5s}  path")
    for index, entry in enumerate(table.entries):
        print(f"  {index:2d} {entry.parent:6d} {entry.base:5d} "
              f"{entry.bound:5d} {entry.size:5d}  {table.names[index]}")
    print()


def run_case(label: str, source: str) -> None:
    program = compile_source(source, CompilerOptions.wrapped())
    result = Machine(program).run()
    ifp = result.stats.ifp
    verdict = ("ran clean" if result.ok
               else f"DETECTED ({type(result.trap).__name__})")
    print(f"{label:55s} {verdict}")
    print(f"{'':55s} narrowing: {ifp.narrow_success}/{ifp.narrow_attempts}"
          f" succeeded, {ifp.narrow_no_layout_table} without tables")


def main() -> None:
    print("Subobject-granularity protection (paper Listing 1 / Figure 9)")
    print("=" * 72)
    show_layout_table()
    run_case("write s->array[1].v3 (in subobject bounds)",
             build(0, wrapper=False))
    run_case("write one past v3 into v4 (intra-object overflow)",
             build(1, wrapper=False))
    run_case("same overflow, allocation via wrapper (no layout table,"
             " inside object)", build(1, wrapper=True))
    run_case("wrapper allocation, write beyond the whole object",
             build(8, wrapper=True))
    print()
    print("With the layout table, the overflow into the sibling member is")
    print("caught; through the wrapper, protection degrades to object")
    print("bounds exactly as Section 3 of the paper specifies.")


if __name__ == "__main__":
    main()
