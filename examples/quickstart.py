#!/usr/bin/env python3
"""Quickstart: compile a mini-C program with In-Fat Pointer
instrumentation, run it on the simulated machine, and watch a heap
overflow get caught.

Run:  python examples/quickstart.py
"""

from repro import CompilerOptions, Machine, compile_source

GOOD_PROGRAM = """
struct Point { int x; int y; };

int main(void) {
    struct Point *pts = (struct Point*)malloc(4 * sizeof(struct Point));
    int i;
    for (i = 0; i < 4; i++) {
        pts[i].x = i;
        pts[i].y = i * i;
    }
    int total = 0;
    for (i = 0; i < 4; i++) {
        total += pts[i].x + pts[i].y;
    }
    printf("total = %d\\n", total);
    free(pts);
    return 0;
}
"""

BAD_PROGRAM = GOOD_PROGRAM.replace("i < 4; i++) {\n        pts[i].x",
                                   "i <= 4; i++) {\n        pts[i].x")


def run(label: str, source: str) -> None:
    print(f"--- {label} ---")
    program = compile_source(source, CompilerOptions.wrapped())
    result = Machine(program).run()
    if result.ok:
        print(f"ran clean, output: {result.output.strip()!r}")
    else:
        print(f"DETECTED: {type(result.trap).__name__}: {result.trap}")
    stats = result.stats
    print(f"instructions: {stats.total_instructions:,} "
          f"({stats.promote_instructions} promotes, "
          f"{stats.ifp_arith_instructions} IFP-arithmetic)")
    print(f"heap objects registered: {stats.heap_objects} "
          f"({stats.heap_objects_lt} with layout tables)")
    print()


def main() -> None:
    print("In-Fat Pointer quickstart")
    print("=" * 60)
    run("in-bounds program", GOOD_PROGRAM)
    run("off-by-one overflow (i <= 4)", BAD_PROGRAM)

    # Peek at the instrumented assembly of main().
    program = compile_source(GOOD_PROGRAM, CompilerOptions.wrapped())
    listing = program.functions["main"].dump().splitlines()
    print("--- first 25 instructions of instrumented main() ---")
    print("\n".join(listing[:25]))


if __name__ == "__main__":
    main()
