#!/usr/bin/env python3
"""Run the Juliet-style functional evaluation (paper Section 5.1).

Run:  python examples/juliet_eval.py [--full]

Without --full, runs a representative subset (fast); with --full, the
whole 140-case matrix for both instrumented allocators.
"""

import sys

from repro.compiler import CompilerOptions
from repro.juliet import generate_cases, run_suite


def main() -> None:
    full = "--full" in sys.argv
    cases = None if full else generate_cases(
        regions=["stack", "heap", "subobject"], flows=["01", "03", "04"])

    for label, options in (("wrapped", CompilerOptions.wrapped()),
                           ("subheap", CompilerOptions.subheap())):
        report = run_suite(options, cases)
        print(f"=== {label} allocator ===")
        print(report.summary())
        status = "ALL PASSED" if report.all_passed else "FAILURES:"
        print(status)
        for failure in report.failures():
            print(f"  {failure.case.name}: trapped={failure.trapped}")
        print()

    print("Paper result reproduced: every vulnerable case traps, every")
    print("non-vulnerable case runs clean — including the intra-object")
    print("cases the paper's compiler optimised away.")


if __name__ == "__main__":
    main()
