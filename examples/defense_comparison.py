#!/usr/bin/env python3
"""Head-to-head: In-Fat Pointer vs ASan-like vs MPX-like defenses.

The paper argues for IFP against the shadow-memory and bounds-table
families via Table 1 and overheads quoted from other papers.  Here all
three run on the same workloads on the same machine, and their coverage
differences (intra-object, use-after-free) are demonstrated live.

Run:  python examples/defense_comparison.py
"""

from repro.compiler import CompilerOptions, compile_source
from repro.debug import attach_tracer
from repro.vm import Machine, MachineConfig
from repro.workloads import get

DEFENSES = [
    ("baseline", CompilerOptions.baseline()),
    ("ifp-subheap", CompilerOptions.subheap()),
    ("ifp-wrapped", CompilerOptions.wrapped()),
    ("asan", CompilerOptions.asan()),
    ("mpx", CompilerOptions.mpx()),
]

CASES = {
    "heap overflow": """
        int main(void) {
            char *p = (char*)malloc(16);
            p[16] = 'x';
            return 0;
        }
    """,
    "intra-object overflow": """
        struct S { char a[12]; char b[12]; };
        char *g;
        int main(void) {
            struct S *s = (struct S*)malloc(sizeof(struct S));
            g = s->a;
            char *q = g;
            q[13] = 'X';
            return 0;
        }
    """,
    "use-after-free": """
        int *g;
        int main(void) {
            g = (int*)malloc(16);
            free(g);
            int *p = g;
            *p = 1;
            return 0;
        }
    """,
}


def main() -> None:
    print("Performance on real workloads (overhead vs baseline)")
    print("-" * 72)
    print(f"{'benchmark':10s} {'defense':12s} {'instr':>8s} {'cycles':>8s} "
          f"{'memory':>8s}")
    for name in ("treeadd", "health", "ks"):
        workload = get(name)
        base = None
        for label, options in DEFENSES:
            program = compile_source(workload.source(1), options)
            result = Machine(program, MachineConfig(
                max_instructions=200_000_000)).run()
            assert result.ok, (name, label, result.trap)
            stats = result.stats
            if base is None:
                base = stats
            print(f"{name:10s} {label:12s} "
                  f"{stats.total_instructions / base.total_instructions:7.2f}x "
                  f"{stats.cycles / base.cycles:7.2f}x "
                  f"{stats.peak_mapped_bytes / base.peak_mapped_bytes:7.2f}x")
        print()

    print("Detection coverage (Table 1, demonstrated)")
    print("-" * 72)
    header = f"{'violation':24s}" + "".join(f"{label:>13s}"
                                            for label, _o in DEFENSES[1:])
    print(header)
    for case_name, source in CASES.items():
        row = [f"{case_name:24s}"]
        for label, options in DEFENSES[1:]:
            program = compile_source(source, options)
            result = Machine(program).run()
            row.append(f"{'DETECTED' if result.detected_violation else '—':>13s}")
        print("".join(row))
    print()
    print("IFP and MPX (pointer-based) catch the intra-object case ASan")
    print("cannot see; ASan's quarantine catches the use-after-free that")
    print("MPX's stale bounds wave through. IFP costs the least.")


if __name__ == "__main__":
    main()
