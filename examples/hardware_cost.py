#!/usr/bin/env python3
"""Explore the hardware area model (paper Section 5.3, Figure 13).

Run:  python examples/hardware_cost.py
"""

from repro.hwmodel import AreaModel


def main() -> None:
    print("Figure 13: LUT decomposition of the modified CVA6")
    print("=" * 64)
    print(AreaModel().report())
    print()

    print("Design-space what-ifs (the paper's area guidance):")
    designs = [
        ("full In-Fat Pointer", AreaModel()),
        ("without bounds register file", AreaModel(bounds_registers=False)),
        ("without layout-table walker", AreaModel(layout_walker=False)),
        ("global-table scheme only",
         AreaModel(schemes=("global_table",))),
        ("object-granularity minimum",
         AreaModel(bounds_registers=False, layout_walker=False,
                   schemes=("global_table",))),
    ]
    for label, model in designs:
        print(f"  {label:32s} {model.total_luts():7,} LUTs  "
              f"(+{model.lut_overhead() * 100:4.1f}%), "
              f"FFs +{model.ff_overhead() * 100:4.1f}%")
    print()
    print("As the paper notes: the bounds registers cost more LUTs than")
    print("the IFP unit itself — a sub-30% design must drop them and")
    print("redesign the instruction set.")


if __name__ == "__main__":
    main()
