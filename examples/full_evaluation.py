#!/usr/bin/env python3
"""Regenerate the paper's entire evaluation in one run.

The script is the reproduction's analogue of the artifact appendix's
terminal-log workflow: it runs every experiment and prints every table
and figure, ready to diff against EXPERIMENTS.md.

Run:  python examples/full_evaluation.py          (~2 minutes)
      python examples/full_evaluation.py --quick  (3 benchmarks only)
"""

import sys
import time

from repro.compiler import CompilerOptions
from repro.eval import (
    Sweep, figure10_series, figure11_series, figure12_series,
    format_figure, format_table4, table4_rows,
)
from repro.eval.related import format_table1, format_table2, format_table3
from repro.hwmodel import AreaModel
from repro.juliet import run_suite
from repro.workloads import all_workloads, get


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    quick = "--quick" in sys.argv
    start = time.time()
    workloads = ([get("treeadd"), get("health"), get("anagram")]
                 if quick else None)

    banner("Tables 1-3: design-space comparison, schemes, instructions")
    print(format_table1())
    print()
    print(format_table2())
    print()
    print(format_table3())

    banner("Section 5.1: Juliet-style functional evaluation")
    report = run_suite(CompilerOptions.wrapped())
    print(report.summary())

    banner("Table 4: dynamic event counts")
    sweep = Sweep(scale=1, workloads=workloads)
    sweep.verify_outputs_agree()
    print(format_table4(table4_rows(sweep)))

    banner("Figure 10: runtime overhead")
    print(format_figure(figure10_series(sweep), ""))

    banner("Figure 11: new-instruction share of baseline")
    print(format_figure(figure11_series(sweep), ""))

    banner("Figure 12: memory overhead (scale 3)")
    memory_workloads = [w for w in (workloads or all_workloads())
                        if w.name not in ("ks", "yacr2", "coremark")]
    memory_sweep = Sweep(scale=3, workloads=memory_workloads)
    print(format_figure(figure12_series(memory_sweep, ()), ""))

    banner("Figure 13: hardware area")
    print(AreaModel().report())

    print()
    print(f"full evaluation regenerated in {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
