"""Tests for the ASan-like and MPX-like comparison baselines."""

import pytest

from repro.baselines.asan import (
    ASAN_SHADOW_BASE, REDZONE, shadow_address, unpoison_object,
)
from repro.baselines.mpx import MPX_TABLE_BASE, mpx_entry_address
from repro.compiler import CompilerOptions, compile_source, Op
from repro.vm import Machine, MachineConfig
from tests.conftest import compile_and_run

ASAN = CompilerOptions.asan()
MPX = CompilerOptions.mpx()

HEAP_OVERFLOW = """
int main(void) {
    char *p = (char*)malloc(16);
    int i;
    for (i = 0; i <= 16; i++) { p[i] = 'x'; }
    free(p);
    return 0;
}
"""
HEAP_GOOD = HEAP_OVERFLOW.replace("i <= 16", "i < 16")

HEAP_UNDERWRITE = """
int main(void) {
    int *p = (int*)malloc(32);
    p[-1] = 5;
    free(p);
    return 0;
}
"""

USE_AFTER_FREE = """
int *g;
int main(void) {
    g = (int*)malloc(16);
    free(g);
    int *p = g;
    *p = 1;
    return 0;
}
"""

INTRA_OBJECT = """
struct S { char a[12]; char b[12]; };
char *g;
int main(void) {
    struct S *s = (struct S*)malloc(sizeof(struct S));
    g = s->a;
    char *q = g;
    q[13] = 'X';
    return 0;
}
"""


class TestAsanMechanics:
    def test_shadow_mapping(self):
        assert shadow_address(0) == ASAN_SHADOW_BASE
        assert shadow_address(64) == ASAN_SHADOW_BASE + 8

    def test_unpoison_partial_byte(self):
        from repro.mem import Memory
        memory = Memory()
        memory.map_range(shadow_address(0x1000), 64)
        unpoison_object(memory, 0x1000, 11)
        assert memory.load_int(shadow_address(0x1000), 1) == 0
        assert memory.load_int(shadow_address(0x1000) + 1, 1) == 3

    def test_pass_inserts_checks(self):
        program = compile_source(HEAP_GOOD, ASAN)
        ops = [i.op for i in program.functions["main"].instrs]
        # Every original access gained a shadow load.
        assert ops.count(Op.LOAD) >= ops.count(Op.STORE) >= 1
        names = [i.name for i in program.functions["main"].instrs
                 if i.op == Op.CALL]
        assert "__asan_malloc" in names and "__asan_free" in names
        assert "__asan_report" in names
        assert program.defense == "asan"

    def test_branch_targets_survive_pass(self):
        # A program with loops and branches must still compute correctly.
        source = """
        int main(void) {
            int buf[8];
            int i; int total = 0;
            for (i = 0; i < 8; i++) { buf[i] = i * 2; }
            for (i = 0; i < 8; i++) {
                if (buf[i] % 4 == 0) { total += buf[i]; }
            }
            print_int(total);
            return 0;
        }
        """
        result = compile_and_run(source, ASAN)
        assert result.ok
        assert result.output == str(sum(i * 2 for i in range(8)
                                        if (i * 2) % 4 == 0))


class TestAsanDetection:
    def test_heap_overflow_detected(self):
        assert compile_and_run(HEAP_OVERFLOW, ASAN).detected_violation

    def test_heap_underwrite_detected(self):
        assert compile_and_run(HEAP_UNDERWRITE, ASAN).detected_violation

    def test_use_after_free_detected(self):
        """The quarantine keeps freed memory poisoned — ASan's temporal
        detection, which IFP only gets via metadata invalidation."""
        assert compile_and_run(USE_AFTER_FREE, ASAN).detected_violation

    def test_good_program_clean(self):
        result = compile_and_run(HEAP_GOOD, ASAN)
        assert result.ok

    def test_intra_object_missed(self):
        """ASan's known blind spot (Table 1: 'Partial'): no redzones
        between struct members."""
        assert compile_and_run(INTRA_OBJECT, ASAN).ok

    def test_far_overflow_can_be_missed(self):
        """Jumping clear over a redzone lands in valid memory — the
        probabilistic gap of memory-based schemes."""
        source = """
        int main(void) {
            char *a = (char*)malloc(64);
            char *b = (char*)malloc(64);
            a[96] = 'x';   /* leaps the redzone into b's chunk */
            return 0;
        }
        """
        result = compile_and_run(source, ASAN)
        # Depending on heap layout this lands in b or its redzone; both
        # outcomes are legitimate ASan behaviour — assert it *runs*
        # (i.e. the defense does not false-positive on the leap itself
        # when the target is addressable).
        assert result.ok or result.detected_violation

    def test_shadow_memory_cost_visible(self):
        base = compile_and_run(HEAP_GOOD, CompilerOptions.baseline())
        asan = compile_and_run(HEAP_GOOD, ASAN)
        assert asan.stats.peak_mapped_bytes > 2 * base.stats.peak_mapped_bytes
        assert asan.stats.total_instructions > base.stats.total_instructions


class TestMpxMechanics:
    def test_entry_address(self):
        assert mpx_entry_address(0) == MPX_TABLE_BASE
        assert mpx_entry_address(8) == MPX_TABLE_BASE + 16

    def test_codegen_emits_table_traffic(self):
        program = compile_source(USE_AFTER_FREE, MPX)
        ops = [i.op for i in program.functions["main"].instrs]
        assert Op.LDBND in ops and Op.STBND in ops
        assert Op.IFPBND in ops           # bndmk at the malloc site
        assert Op.PROMOTE not in ops      # nothing IFP about it
        assert program.defense == "mpx"

    def test_plain_malloc_used(self):
        program = compile_source(HEAP_GOOD, MPX)
        names = [i.name for i in program.functions["main"].instrs
                 if i.op == Op.CALL]
        assert "malloc" in names and "__ifp_malloc" not in names


class TestMpxDetection:
    def test_heap_overflow_detected(self):
        assert compile_and_run(HEAP_OVERFLOW, MPX).detected_violation

    def test_heap_underwrite_detected(self):
        assert compile_and_run(HEAP_UNDERWRITE, MPX).detected_violation

    def test_bounds_roundtrip_through_memory(self):
        """Bounds survive a store/reload through the bounds table."""
        source = """
        char *g;
        int main(void) {
            g = (char*)malloc(16);
            char *p = g;        /* bndldx */
            p[16] = 'x';
            return 0;
        }
        """
        assert compile_and_run(source, MPX).detected_violation

    def test_use_after_free_missed(self):
        """MPX has no temporal story: stale bounds still 'fit'."""
        assert compile_and_run(USE_AFTER_FREE, MPX).ok

    def test_subobject_granularity(self):
        """Pointer-based schemes narrow statically: Table 1 grants MPX
        subobject granularity, unlike ASan."""
        assert compile_and_run(INTRA_OBJECT, MPX).detected_violation

    def test_good_program_clean(self):
        assert compile_and_run(HEAP_GOOD, MPX).ok

    def test_bounds_table_memory_cost(self):
        base = compile_and_run(USE_AFTER_FREE, CompilerOptions.baseline())
        mpx = compile_and_run(USE_AFTER_FREE, MPX)
        assert mpx.stats.peak_mapped_bytes > base.stats.peak_mapped_bytes
        assert mpx.stats.bounds_ls_instructions > 0


class TestComparative:
    @pytest.mark.parametrize("workload_name", ["treeadd", "yacr2"])
    def test_ifp_cheaper_than_both_baselines(self, workload_name):
        """The paper's core claim, measured: IFP's overhead sits well
        below the shadow-memory and bounds-table families."""
        from repro.workloads import get
        workload = get(workload_name)

        def run(options):
            program = compile_source(workload.source(1), options)
            result = Machine(program, MachineConfig(
                max_instructions=150_000_000)).run()
            assert result.ok, result.trap
            return result.stats

        base = run(CompilerOptions.baseline())
        ifp = run(CompilerOptions.subheap())
        asan = run(ASAN)
        mpx = run(MPX)
        ifp_over = ifp.total_instructions / base.total_instructions
        asan_over = asan.total_instructions / base.total_instructions
        mpx_over = mpx.total_instructions / base.total_instructions
        assert ifp_over < asan_over
        assert ifp_over < mpx_over

    def test_all_defenses_agree_on_output(self):
        source = """
        int main(void) {
            int *v = (int*)malloc(10 * sizeof(int));
            int i;
            for (i = 0; i < 10; i++) { v[i] = i * i; }
            long total = 0;
            for (i = 0; i < 10; i++) { total += v[i]; }
            free(v);
            print_int(total);
            return 0;
        }
        """
        outputs = set()
        for options in (CompilerOptions.baseline(),
                        CompilerOptions.wrapped(),
                        CompilerOptions.subheap(), ASAN, MPX):
            result = compile_and_run(source, options)
            assert result.ok, (options.defense, result.trap)
            outputs.add(result.output)
        assert outputs == {str(sum(i * i for i in range(10)))}
