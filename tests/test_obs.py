"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.compiler import CompilerOptions, compile_source
from repro.errors import OutputDivergence, WorkloadTrapped
from repro.eval.harness import run_workload, verify_runs_agree
from repro.fuzz.oracle import fuzz_workload
from repro.obs import (
    CheckEvent, EventBus, PromoteEvent, attach_observer,
    metrics_document, stats_to_dict, to_prometheus, validate_document,
    write_metrics,
)
from repro.obs.metrics import load_metrics, write_bench
from repro.vm import Machine

NESTED_SOURCE = """
struct Inner { int v3; int v4; };
struct S { int v1; struct Inner array[2]; int v5; };
int *g_escape;
int use(int *p) { return p[0]; }
int main(void) {
    struct S *objs = (struct S*)malloc(3 * sizeof(struct S));
    int i;
    int total = 0;
    for (i = 0; i < 3; i++) {
        objs[i].v1 = i;
        objs[i].array[0].v3 = i + 1;
        objs[i].array[1].v4 = i + 2;
        objs[i].v5 = i + 3;
    }
    g_escape = &objs[1].array[0].v3;
    int *q = g_escape;
    total = use(q);
    for (i = 0; i < 3; i++) { total = total + objs[i].v5; }
    printf("total = %d\\n", total);
    free(objs);
    return 0;
}
"""

OVERFLOW_SOURCE = """
struct Inner { int v3; int v4; };
struct S { int v1; struct Inner array[2]; int v5; };
int *g_escape;
int main(void) {
    struct S *s = (struct S*)malloc(sizeof(struct S));
    s->v5 = 99;
    g_escape = &s->array[1].v3;
    int *q = g_escape;
    q[1] = 7;
    printf("v5 = %d\\n", s->v5);
    return 0;
}
"""


def _machine(source, options=None):
    program = compile_source(source, options or CompilerOptions.wrapped())
    return Machine(program)


class TestEventBusDisabledPath:
    def test_bus_with_no_sinks_is_disabled(self):
        bus = EventBus()
        assert bus.enabled is False
        bus.emit(CheckEvent(("f", 0), "load", False, 0, 4, True))
        assert bus.emitted == 0

    def test_subscribe_unsubscribe_toggles_enabled(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        assert bus.enabled is True
        event = CheckEvent(("f", 0), "load", False, 0, 4, True)
        bus.emit(event)
        assert seen == [event] and bus.emitted == 1
        bus.unsubscribe(seen.append)
        assert bus.enabled is False
        bus.emit(event)
        assert seen == [event] and bus.emitted == 1

    def test_machine_without_observer_has_no_obs(self):
        machine = _machine(NESTED_SOURCE)
        result = machine.run()
        assert result.ok
        assert machine.obs is None
        assert machine.ifp.obs is None

    def test_observation_does_not_perturb_the_run(self):
        plain = _machine(NESTED_SOURCE).run()
        observed_machine = _machine(NESTED_SOURCE)
        attach_observer(observed_machine, profile=True, forensics=True)
        observed = observed_machine.run()
        assert plain.exit_code == observed.exit_code
        assert plain.output == observed.output
        assert plain.stats.total_instructions \
            == observed.stats.total_instructions
        assert plain.stats.cycles == observed.stats.cycles
        assert plain.stats.implicit_checks \
            == observed.stats.implicit_checks


class TestHotSiteProfiler:
    @pytest.fixture(scope="class")
    def observed(self):
        machine = _machine(NESTED_SOURCE)
        obs = attach_observer(machine, profile=True, forensics=False)
        result = machine.run()
        assert result.ok
        return machine, obs, result

    def test_promotes_fully_attributed(self, observed):
        machine, obs, result = observed
        profiler = obs.profiler
        assert profiler.total_promotes == result.stats.ifp.promotes_total
        assert profiler.total_promotes > 0

    def test_checks_fully_attributed(self, observed):
        _machine_, obs, result = observed
        assert obs.profiler.total_checks == result.stats.implicit_checks

    def test_sites_are_function_indexed(self, observed):
        _machine_, obs, _result = observed
        for (function, index), site in obs.profiler.sites.items():
            assert site.function == function and site.index == index
            assert function in ("main", "use", "<runtime>") \
                or function.startswith("__")

    def test_per_scheme_breakdown(self, observed):
        _machine_, obs, result = observed
        by_scheme = {}
        for site in obs.profiler.sites.values():
            for scheme, count in site.by_scheme.items():
                by_scheme[scheme] = by_scheme.get(scheme, 0) + count
        assert sum(by_scheme.values()) == result.stats.ifp.promotes_total
        assert set(by_scheme) <= {"LEGACY", "LOCAL_OFFSET", "SUBHEAP",
                                  "GLOBAL_TABLE"}

    def test_scheme_assignments_counted(self, observed):
        _machine_, obs, result = observed
        heap = sum(count for (region, _scheme), count
                   in obs.profiler.scheme_assignments.items()
                   if region == "heap")
        assert heap == result.stats.heap_objects

    def test_top_sites_sorted_and_report_renders(self, observed):
        _machine_, obs, _result = observed
        top = obs.profiler.top_sites(5)
        assert len(top) <= 5
        cycles = [site.cycles for site in top]
        assert cycles == sorted(cycles, reverse=True)
        report = obs.profiler.report(top=5)
        assert "hot sites" in report
        assert "per-function rollup" in report
        assert "scheme assignments" in report

    def test_narrow_events_attributed(self, observed):
        _machine_, obs, result = observed
        narrows = sum(site.narrows
                      for site in obs.profiler.sites.values())
        assert narrows == result.stats.ifp.narrow_attempts


class TestForensics:
    def test_intra_object_overflow_report(self):
        machine = _machine(OVERFLOW_SOURCE)
        obs = attach_observer(machine, profile=False, forensics=True)
        result = machine.run()
        assert result.trap is not None
        report = obs.last_report
        assert report is not None
        assert report.scheme == "LOCAL_OFFSET"
        assert "subobject_index" in report.tag_fields
        lower, upper = report.bounds
        assert upper - lower == 4  # the narrowed int-member subobject
        rendered = report.render()
        assert "trap forensics" in rendered
        assert "LOCAL_OFFSET" in rendered
        assert "subobject" in rendered
        assert report.trace_tail and report.recent_events

    def test_report_roundtrips_to_dict(self):
        machine = _machine(OVERFLOW_SOURCE)
        obs = attach_observer(machine, profile=False, forensics=True)
        machine.run()
        record = obs.last_report.to_dict()
        assert record["trap_type"] in ("PoisonTrap", "BoundsTrap")
        assert json.loads(json.dumps(record)) == record

    def test_fuzz_failures_ship_forensics(self, tmp_path):
        from repro.fuzz import run_fuzz
        stats = run_fuzz(1, seed=0, corpus_dir=str(tmp_path),
                         plant_bug=True, log=lambda m: None,
                         progress_every=0)
        assert not stats.ok
        with_forensics = [record for record in stats.failures
                          if record.forensics_path]
        assert with_forensics
        for record in with_forensics:
            content = open(record.forensics_path).read()
            assert "trap forensics" in content
            assert record.entry.extra["forensics"] \
                == record.entry.name + ".forensics.txt"


class TestMetricsSchema:
    def _document(self):
        machine = _machine(NESTED_SOURCE)
        result = machine.run()
        return metrics_document("nested", "wrapped",
                                stats_to_dict(result.stats))

    def test_roundtrip(self, tmp_path):
        doc = self._document()
        assert validate_document(doc) == []
        path = write_metrics(str(tmp_path / "m.json"), doc)
        loaded = load_metrics(path)
        assert loaded == json.loads(json.dumps(doc))
        assert loaded["metrics"]["total_instructions"] > 0
        assert "ifp" in loaded["metrics"]

    def test_validation_rejects_bad_documents(self):
        assert validate_document([]) != []
        assert validate_document({"schema": "nope"}) != []
        good = metrics_document("x", "cfg", {"a": 1})
        assert validate_document(good) == []
        assert validate_document({**good, "metrics": {"a": "one"}})
        assert validate_document({**good, "metrics": {"a": True}})
        assert validate_document({**good, "surprise": 1})
        assert validate_document({**good, "timestamp": "now"})

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_metrics(str(tmp_path / "bad.json"),
                          {"schema": "wrong"})

    def test_prometheus_export(self):
        doc = metrics_document("run", "wrapped",
                               {"cycles": 7, "ifp": {"promotes": 3}})
        text = to_prometheus(doc)
        assert 'repro_cycles{name="run",config="wrapped"} 7' in text
        assert 'repro_ifp_promotes{name="run",config="wrapped"} 3' in text

    def test_write_bench_naming(self, tmp_path):
        path = write_bench("smoke", "baseline", {"value": 1},
                           directory=str(tmp_path))
        assert path.endswith("BENCH_smoke.json")
        assert load_metrics(path)["name"] == "smoke"


class TestHarnessIntegration:
    def test_trapped_error_carries_stats_and_forensics(self, tmp_path):
        workload = fuzz_workload(OVERFLOW_SOURCE, "overflow")
        with pytest.raises(WorkloadTrapped) as excinfo:
            run_workload(workload, "wrapped", observe=True,
                         forensics_dir=str(tmp_path))
        message = str(excinfo.value)
        assert "instr=" in message
        assert "forensics:" in message
        assert excinfo.value.forensics_path
        assert "trap forensics" in open(
            excinfo.value.forensics_path).read()

    def test_trapped_error_without_observation_still_has_stats(self):
        workload = fuzz_workload(OVERFLOW_SOURCE, "overflow")
        with pytest.raises(WorkloadTrapped) as excinfo:
            run_workload(workload, "wrapped")
        assert "instr=" in str(excinfo.value)
        assert excinfo.value.forensics_path == ""

    def test_divergence_error_carries_per_config_stats(self):
        clean = fuzz_workload("int main(void) "
                              "{ printf(\"ok\\n\"); return 0; }",
                              "clean")
        runs = [run_workload(clean, "baseline"),
                run_workload(clean, "wrapped")]
        runs[1].output = "different"
        with pytest.raises(OutputDivergence) as excinfo:
            verify_runs_agree(runs)
        assert "baseline:" in str(excinfo.value)
        assert "instr=" in str(excinfo.value)

    def test_workload_run_carries_observer(self):
        workload = fuzz_workload(NESTED_SOURCE, "nested")
        run = run_workload(workload, "wrapped", observe=True)
        assert run.observer is not None
        assert run.observer.profiler.total_promotes \
            == run.stats.ifp.promotes_total


class TestCLI:
    def test_validate_command(self, tmp_path, capsys):
        from repro.obs.__main__ import main
        good = str(tmp_path / "good.json")
        write_metrics(good, metrics_document("x", "cfg", {"a": 1}))
        bad = str(tmp_path / "bad.json")
        with open(bad, "w") as handle:
            json.dump({"schema": "wrong"}, handle)
        assert main(["validate", good]) == 0
        assert main(["validate", good, bad]) == 1
        out = capsys.readouterr().out
        assert "ok" in out and "INVALID" in out

    def test_forensics_command(self, tmp_path, capsys):
        from repro.obs.__main__ import main
        out_path = str(tmp_path / "report.txt")
        assert main(["forensics", "--out", out_path]) == 0
        assert "LOCAL_OFFSET" in capsys.readouterr().out
        assert "trap forensics" in open(out_path).read()

    def test_fuzz_metrics_out(self, tmp_path, capsys):
        from repro.fuzz.__main__ import main
        metrics_path = str(tmp_path / "fuzz.json")
        status = main(["--iterations", "2", "--seed", "0", "--quiet",
                       "--corpus", str(tmp_path / "corpus"),
                       "--metrics-out", metrics_path])
        assert status == 0
        doc = load_metrics(metrics_path)
        assert doc["name"] == "fuzz"
        assert doc["metrics"]["programs"] == 2


# ---------------------------------------------------------------------------
# trace correlation: TraceContext on events, buses, and forensics
# ---------------------------------------------------------------------------

class TestTraceCorrelation:
    def test_uncorrelated_events_serialize_without_ctx(self):
        event = PromoteEvent(site=("main", 3), pointer=0x10,
                             scheme="local_offset", outcome="hit",
                             narrowed=False, cycles=5)
        record = event.to_dict()
        assert "ctx" not in record
        assert record["kind"] == "promote"

    def test_explicit_ctx_serializes(self):
        from repro.obs import TraceContext
        ctx = TraceContext(tenant="acme", job_id="job-7")
        event = PromoteEvent(site=None, pointer=1, scheme="s",
                             outcome="hit", narrowed=False, cycles=1,
                             ctx=ctx)
        record = event.to_dict()
        assert record["ctx"] == {"tenant": "acme", "job_id": "job-7",
                                 "shard_id": None, "seed": None}

    def test_bus_ambient_context_stamps_events(self):
        from repro.obs import TraceContext
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.context = TraceContext(tenant="acme", job_id="job-1",
                                   shard_id=2, seed=99)
        bus.emit(CheckEvent(site=("f", 0), op="load", explicit=False,
                            address=8, size=4, passed=True))
        assert seen[0].ctx.tenant == "acme"
        assert seen[0].ctx.shard_id == 2
        # an explicitly stamped ctx wins over the ambient one
        other = TraceContext(tenant="zen")
        bus.emit(CheckEvent(site=None, op="load", explicit=False,
                            address=8, size=4, passed=True, ctx=other))
        assert seen[1].ctx is other

    def test_with_shard_and_labels(self):
        from repro.obs import TraceContext
        ctx = TraceContext(tenant="acme", job_id="job-1")
        refined = ctx.with_shard(3, 1234)
        assert refined.shard_id == 3 and refined.seed == 1234
        assert ctx.shard_id is None  # frozen original untouched
        assert refined.labels() == {"tenant": "acme",
                                    "job_id": "job-1",
                                    "shard_id": "3", "seed": "1234"}
        assert TraceContext.from_dict(refined.to_dict()) == refined

    def test_forensics_report_carries_bus_context(self):
        from repro.obs import TraceContext
        machine = _machine(OVERFLOW_SOURCE)
        obs = attach_observer(machine, profile=False, forensics=True)
        obs.bus.context = TraceContext(tenant="acme", job_id="job-9",
                                       shard_id=0, seed=7)
        result = machine.run()
        assert result.trap is not None
        report = obs.last_report
        assert report.context == {"tenant": "acme", "job_id": "job-9",
                                  "shard_id": 0, "seed": 7}
        assert "tenant=acme" in report.render()
        assert report.to_dict()["context"]["job_id"] == "job-9"

    def test_fuzz_trap_forensics_accepts_trace(self):
        from repro.fuzz.oracle import capture_trap_forensics
        trace = {"tenant": "acme", "job_id": "job-2",
                 "shard_id": 1, "seed": 42}
        report = capture_trap_forensics(OVERFLOW_SOURCE, "wrapped",
                                        trace=trace)
        assert report is not None
        assert report.context == trace


# ---------------------------------------------------------------------------
# temporal trap forensics: lock-and-key anatomy + correlation
# ---------------------------------------------------------------------------

UAF_SOURCE = """
int main(void) {
    int *p = (int*)malloc(16 * sizeof(int));
    p[0] = 1;
    free(p);
    printf("x = %d\\n", p[0]);
    return 0;
}
"""


class TestTemporalForensics:
    def _trap_machine(self):
        from repro.vm.machine import MachineConfig
        program = compile_source(UAF_SOURCE, CompilerOptions.wrapped())
        return Machine(program, MachineConfig(temporal="check"))

    def test_temporal_trap_report_has_lock_anatomy(self):
        machine = self._trap_machine()
        obs = attach_observer(machine, profile=False, forensics=True)
        result = machine.run()
        assert type(result.trap).__name__ == "TemporalViolation"
        report = obs.last_report
        assert report is not None
        assert report.trap_type == "TemporalViolation"
        assert report.tag_fields["kind"] == "freed_lock"
        assert report.tag_fields["lock"] == 0
        assert report.tag_fields["temporal_key"] >= 1
        assert report.pointer is not None
        rendered = report.render()
        assert "temporal registry lock" in rendered
        assert "lock is DEAD" in rendered
        record = report.to_dict()
        assert json.loads(json.dumps(record)) == record

    def test_temporal_trap_carries_bus_context(self):
        from repro.obs import TraceContext
        machine = self._trap_machine()
        obs = attach_observer(machine, profile=False, forensics=True)
        obs.bus.context = TraceContext(tenant="acme", job_id="job-t",
                                       shard_id=1, seed=5)
        result = machine.run()
        assert result.trap is not None
        report = obs.last_report
        assert report.context == {"tenant": "acme", "job_id": "job-t",
                                  "shard_id": 1, "seed": 5}
        assert "tenant=acme" in report.render()
        # every event feeding the report is stamped too, including the
        # TrapEvent itself (emitted at the shared on_trap seam)
        trap_events = [line for line in report.recent_events
                       if "trap_type=TemporalViolation" in line]
        assert trap_events and "'tenant': 'acme'" in trap_events[0]

    def test_fuzz_temporal_forensics_accepts_trace(self):
        from repro.fuzz.oracle import capture_trap_forensics
        trace = {"tenant": "acme", "job_id": "job-3",
                 "shard_id": 0, "seed": 9}
        report = capture_trap_forensics(UAF_SOURCE, "wrapped",
                                        trace=trace, temporal="check")
        assert report is not None
        assert report.trap_type == "TemporalViolation"
        assert report.context == trace


# ---------------------------------------------------------------------------
# metrics schema v2: correlation/engine labels
# ---------------------------------------------------------------------------

class TestMetricsV2:
    def test_labels_produce_v2(self, tmp_path):
        from repro.obs import SCHEMA_V2
        doc = metrics_document("run", "wrapped", {"cycles": 7},
                               labels={"engine": "fastpath",
                                       "tenant": "acme"})
        assert doc["schema"] == SCHEMA_V2
        assert validate_document(doc) == []
        path = write_metrics(str(tmp_path / "v2.json"), doc)
        assert load_metrics(path)["labels"]["engine"] == "fastpath"

    def test_no_labels_stays_v1(self):
        from repro.obs.metrics import SCHEMA
        doc = metrics_document("run", "wrapped", {"cycles": 7})
        assert doc["schema"] == SCHEMA
        assert "labels" not in doc

    def test_v2_rejects_non_string_labels(self):
        doc = metrics_document("run", "wrapped", {"cycles": 7},
                               labels={"engine": "fastpath"})
        bad = {**doc, "labels": {"shard": 3}}
        assert validate_document(bad) != []
        bad = {**doc, "labels": "fastpath"}
        assert validate_document(bad) != []

    def test_v1_rejects_labels(self):
        from repro.obs.metrics import SCHEMA
        doc = metrics_document("run", "wrapped", {"cycles": 7},
                               labels={"engine": "fastpath"})
        assert validate_document({**doc, "schema": SCHEMA}) != []

    def test_prometheus_merges_labels(self):
        doc = metrics_document("run", "wrapped", {"cycles": 7},
                               labels={"engine": "fastpath"})
        text = to_prometheus(doc)
        assert ('repro_cycles{name="run",config="wrapped",'
                'engine="fastpath"} 7') in text


# ---------------------------------------------------------------------------
# armed-engine equivalence: the instrumented fastpath emits the same
# event stream as the armed reference interpreter
# ---------------------------------------------------------------------------

class TestArmedEngineEquivalence:
    def _event_stream(self, source, config, engine):
        from dataclasses import replace as dc_replace
        from repro.eval.configs import build_machine_config, \
            build_options
        program = compile_source(source, build_options(config))
        machine = Machine(program,
                          dc_replace(build_machine_config(config),
                                     engine=engine))
        obs = attach_observer(machine, profile=True, forensics=True,
                              tracer_capacity=0)
        stream = []
        obs.bus.subscribe(lambda event: stream.append(event.to_dict()))
        result = machine.run()
        return stream, result, obs.profiler.metrics()

    @pytest.mark.parametrize("config", ["wrapped", "subheap"])
    def test_event_streams_byte_identical(self, config):
        ref_stream, ref_result, ref_profile = self._event_stream(
            NESTED_SOURCE, config, "reference")
        fast_stream, fast_result, fast_profile = self._event_stream(
            NESTED_SOURCE, config, "fastpath")
        assert json.dumps(ref_stream) == json.dumps(fast_stream)
        assert ref_profile == fast_profile
        assert ref_result.output == fast_result.output
        assert stats_to_dict(ref_result.stats) == \
            stats_to_dict(fast_result.stats)
        assert ref_stream  # armed run must actually observe something

    def test_armed_fastpath_engine_selected(self):
        from dataclasses import replace as dc_replace
        from repro.eval.configs import build_machine_config, \
            build_options
        program = compile_source(NESTED_SOURCE,
                                 build_options("wrapped"))
        machine = Machine(program,
                          dc_replace(build_machine_config("wrapped"),
                                     engine="auto"))
        obs = attach_observer(machine, profile=True, forensics=True)
        machine.run()
        assert machine.engine_used == "fastpath"
        assert obs.engine == "fastpath"
