"""Tests for layout tables (repro.ifp.layout): the paper's Figure 9."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ifp import LAYOUT_ENTRY_BYTES, LayoutEntry, LayoutTable


def figure9_table() -> LayoutTable:
    """struct S { int v1; struct { int v3; int v4; } array[2]; int v5; }"""
    return LayoutTable("S", [
        LayoutEntry(0, 0, 24, 24),
        LayoutEntry(0, 0, 4, 4),
        LayoutEntry(0, 4, 20, 8),
        LayoutEntry(2, 0, 4, 4),
        LayoutEntry(2, 4, 8, 4),
        LayoutEntry(0, 20, 24, 4),
    ], ["S", "S.v1", "S.array", "S.array[].v3", "S.array[].v4", "S.v5"])


class TestEntry:
    def test_array_detection(self):
        entry = LayoutEntry(0, 4, 20, 8)
        assert entry.is_array
        assert entry.element_count == 2

    def test_scalar_entry(self):
        entry = LayoutEntry(0, 0, 4, 4)
        assert not entry.is_array
        assert entry.element_count == 1

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            LayoutEntry(0, 10, 5, 4)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            LayoutEntry(0, 0, 4, 0)


class TestTable:
    def test_figure9_shape(self):
        table = figure9_table()
        assert len(table) == 6
        assert table.object_size == 24
        assert table.index_of("S.array[].v3") == 3
        assert table[2].is_array

    def test_entry0_must_cover_object(self):
        with pytest.raises(ValueError):
            LayoutTable("X", [LayoutEntry(0, 0, 8, 4)])  # array entry 0

    def test_parent_must_precede(self):
        with pytest.raises(ValueError):
            LayoutTable("X", [
                LayoutEntry(0, 0, 8, 8),
                LayoutEntry(2, 0, 4, 4),   # forward parent reference
                LayoutEntry(0, 4, 8, 4),
            ])

    def test_depth_and_chain(self):
        table = figure9_table()
        assert table.depth_of(0) == 0
        assert table.depth_of(1) == 1
        assert table.depth_of(3) == 2
        assert table.chain_of(3) == [2, 3]
        assert table.chain_of(0) == []

    def test_serialize_roundtrip(self):
        table = figure9_table()
        data = table.serialize()
        assert len(data) == 6 * LAYOUT_ENTRY_BYTES
        restored = LayoutTable.deserialize(data, "S")
        assert restored.entries == table.entries

    def test_entry0_parent_field_stores_count(self):
        data = figure9_table().serialize()
        assert int.from_bytes(data[0:2], "little") == 6

    def test_deserialize_truncated(self):
        data = figure9_table().serialize()
        with pytest.raises(ValueError):
            LayoutTable.deserialize(data[:40])

    def test_names_length_checked(self):
        with pytest.raises(ValueError):
            LayoutTable("X", [LayoutEntry(0, 0, 8, 8)], ["a", "b"])


# -- property: random well-formed trees survive serialisation ---------------

@st.composite
def random_tables(draw):
    """Generate structurally-valid layout tables."""
    entry_count = draw(st.integers(1, 12))
    object_size = draw(st.integers(8, 512)) * 8
    entries = [LayoutEntry(0, 0, object_size, object_size)]
    for index in range(1, entry_count):
        parent = draw(st.integers(0, index - 1))
        parent_size = (entries[parent].size if parent else object_size)
        base = draw(st.integers(0, max(parent_size - 8, 0)))
        width = draw(st.integers(1, max(parent_size - base, 1)))
        elements = draw(st.integers(1, 4))
        entries.append(LayoutEntry(parent, base, base + width * elements,
                                   width))
    return LayoutTable("T", entries)


@given(table=random_tables())
@settings(max_examples=80, deadline=None)
def test_serialize_roundtrip_property(table):
    restored = LayoutTable.deserialize(table.serialize())
    assert restored.entries == table.entries
    assert len(restored) == len(table)
