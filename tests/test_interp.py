"""Tests for the interpreter: C semantics, control flow, calls."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import CompilerOptions
from tests.conftest import compile_and_run


def run_expr(expression: str, declarations: str = "") -> int:
    """Evaluate a C expression in main and return the (long) result
    via the process exit-ish printf channel."""
    source = f"""
    {declarations}
    int main(void) {{
        long result = (long)({expression});
        print_int(result);
        return 0;
    }}
    """
    result = compile_and_run(source, CompilerOptions.baseline())
    assert result.ok, result.trap
    return int(result.output)


class TestArithmetic:
    def test_basic(self):
        assert run_expr("2 + 3 * 4") == 14
        assert run_expr("(2 + 3) * 4") == 20
        assert run_expr("10 - 3 - 2") == 5

    def test_signed_division_truncates_toward_zero(self):
        assert run_expr("-7 / 2") == -3
        assert run_expr("7 / -2") == -3
        assert run_expr("-7 % 2") == -1
        assert run_expr("7 % -2") == 1

    def test_division_by_zero_traps(self):
        result = compile_and_run(
            "int main(void) { int z = 0; return 1 / z; }",
            CompilerOptions.baseline())
        assert result.trap is not None

    def test_int_overflow_wraps(self):
        assert run_expr("(int)(0x7fffffff + 1)") == -(1 << 31)

    def test_unsigned_comparison(self):
        assert run_expr("(unsigned int)0xffffffff > 1U") == 1
        assert run_expr("-1 < 1") == 1

    def test_shifts(self):
        assert run_expr("1 << 10") == 1024
        assert run_expr("-8 >> 1") == -4       # arithmetic on signed
        assert run_expr("((unsigned int)0x80000000) >> 4") == 0x08000000

    def test_bitwise(self):
        assert run_expr("(0xF0 & 0x3C) | 0x01") == 0x31
        assert run_expr("0xFF ^ 0x0F") == 0xF0
        assert run_expr("~0") == -1

    def test_char_arithmetic(self):
        assert run_expr("'a' + 1") == 98

    def test_logical_short_circuit(self):
        source = """
        int g_calls = 0;
        int bump(void) { g_calls++; return 1; }
        int main(void) {
            int a = 0 && bump();
            int b = 1 || bump();
            print_int(g_calls * 100 + a * 10 + b);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "1"   # 0 calls, a=0, b=1

    def test_conditional_expr(self):
        assert run_expr("1 ? 10 : 20") == 10
        assert run_expr("0 ? 10 : 20") == 20

    def test_compound_assignment(self):
        source = """
        int main(void) {
            int x = 10;
            x += 5; x -= 2; x *= 3; x /= 2; x %= 10;
            x <<= 2; x >>= 1; x |= 8; x &= 14; x ^= 5;
            print_int(x);
            return 0;
        }
        """
        x = 10
        x += 5; x -= 2; x *= 3; x //= 2; x %= 10
        x <<= 2; x >>= 1; x |= 8; x &= 14; x ^= 5
        result = compile_and_run(source, CompilerOptions.baseline())
        assert int(result.output) == x

    def test_incdec_semantics(self):
        source = """
        int main(void) {
            int i = 5;
            int a = i++;
            int b = ++i;
            int c = i--;
            int d = --i;
            print_int(a * 1000 + b * 100 + c * 10 + d);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == str(5 * 1000 + 7 * 100 + 7 * 10 + 5)

    @given(a=st.integers(-(1 << 31), (1 << 31) - 1),
           b=st.integers(-(1 << 31), (1 << 31) - 1))
    @settings(max_examples=25, deadline=None)
    def test_add_sub_mul_match_c(self, a, b):
        """Random operands: arithmetic matches two's-complement C."""
        def c_int(v):
            v &= 0xFFFFFFFF
            return v - (1 << 32) if v >= (1 << 31) else v
        got = run_expr(f"(int)(({a}) + ({b})) * 1")
        assert got == c_int(a + b)
        got = run_expr(f"(int)(({a}) * ({b}))")
        assert got == c_int(a * b)


class TestControlFlow:
    def test_loops(self):
        source = """
        int main(void) {
            long total = 0;
            int i;
            for (i = 0; i < 10; i++) { total += i; }
            while (total < 100) { total += 7; }
            do { total -= 1; } while (total > 100);
            print_int(total);
            return 0;
        }
        """
        total = sum(range(10))
        while total < 100:
            total += 7
        while True:
            total -= 1
            if not total > 100:
                break
        result = compile_and_run(source, CompilerOptions.baseline())
        assert int(result.output) == total

    def test_break_continue(self):
        source = """
        int main(void) {
            int total = 0;
            int i;
            for (i = 0; i < 100; i++) {
                if (i % 2) { continue; }
                if (i > 10) { break; }
                total += i;
            }
            print_int(total);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert int(result.output) == 0 + 2 + 4 + 6 + 8 + 10

    def test_recursion(self):
        source = """
        long fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main(void) { print_int(fib(15)); return 0; }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert int(result.output) == 610

    def test_mutual_recursion(self):
        source = """
        int is_odd(int n);
        int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
        int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
        int main(void) { print_int(is_even(10) * 10 + is_odd(7)); return 0; }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "11"

    def test_instruction_limit_guards_infinite_loops(self):
        result = compile_and_run("int main(void) { while (1) {} return 0; }",
                                 CompilerOptions.baseline(),
                                 max_instructions=10_000)
        assert result.trap is not None
        assert "limit" in str(result.trap)


class TestFunctions:
    def test_function_pointers(self):
        source = """
        int twice(int x) { return 2 * x; }
        int thrice(int x) { return 3 * x; }
        int apply(int (*fn)(int), int x) { return fn(x); }
        int main(void) {
            int (*f)(int) = twice;
            print_int(apply(f, 10) + apply(thrice, 10));
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "50"

    def test_function_pointer_comparison_and_null(self):
        source = """
        int one(void) { return 1; }
        int main(void) {
            int (*f)(void) = NULL;
            if (f == NULL) { f = one; }
            return f();
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.exit_code == 1

    def test_indirect_call_to_garbage_traps(self):
        source = """
        int main(void) {
            int (*f)(void) = (int (*)(void))0x1234;
            return f();
        }
        """
        # Parser doesn't support casting to function-pointer types;
        # go through a long instead.
        source = """
        long g;
        int main(void) {
            g = 0x123456;
            int (*f)(void);
            long *slot = (long*)&f;
            *slot = g;
            return f();
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.trap is not None

    def test_exit_builtin(self):
        result = compile_and_run(
            "int main(void) { exit(42); return 0; }",
            CompilerOptions.baseline())
        assert result.exit_code == 42

    def test_main_exit_code(self):
        result = compile_and_run("int main(void) { return 7; }",
                                 CompilerOptions.baseline())
        assert result.exit_code == 7


class TestDataAccess:
    def test_struct_copy_assignment(self):
        source = """
        struct P { int x; int y; long z; };
        int main(void) {
            struct P a;
            struct P b;
            a.x = 1; a.y = 2; a.z = 3;
            b = a;
            a.x = 99;
            print_int(b.x * 100 + b.y * 10 + b.z);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "123"

    def test_multidim_array(self):
        source = """
        int main(void) {
            int grid[3][4];
            int r; int c; long total = 0;
            for (r = 0; r < 3; r++) {
                for (c = 0; c < 4; c++) { grid[r][c] = r * 4 + c; }
            }
            for (r = 0; r < 3; r++) {
                for (c = 0; c < 4; c++) { total += grid[r][c]; }
            }
            print_int(total);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert int(result.output) == sum(range(12))

    def test_global_initializers(self):
        source = """
        int g_a = 42;
        int g_table[4] = {1, 2, 3, 4};
        char *g_s = "xyz";
        int main(void) {
            print_int(g_a + g_table[2] + g_s[1]);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert int(result.output) == 42 + 3 + ord("y")

    def test_local_aggregate_initializer(self):
        source = """
        int main(void) {
            int v[5] = {10, 20, 30};
            print_int(v[0] + v[1] + v[2] + v[3] + v[4]);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "60"

    def test_pointer_difference(self):
        source = """
        int main(void) {
            long buf[10];
            long *a = &buf[2];
            long *b = &buf[7];
            print_int(b - a);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "5"

    def test_sizeof(self):
        source = """
        struct S { char c; long l; };
        int main(void) {
            print_int(sizeof(struct S) * 100 + sizeof(int) * 10
                      + sizeof(char*));
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == str(16 * 100 + 4 * 10 + 8)

    def test_narrow_int_store_load(self):
        source = """
        int main(void) {
            char buf[4];
            buf[0] = (char)300;   /* truncates to 44 */
            short s = -2;
            unsigned short u = (unsigned short)s;
            print_int(buf[0] * 100000 + u);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert int(result.output) == 44 * 100000 + 65534
