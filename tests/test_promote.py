"""Tests for the promote operation and subobject narrowing."""

import pytest

from repro.cache import HierarchyConfig
from repro.ifp import (
    Bounds, DEFAULT_CONFIG, IFPConfig, IFPUnit, LayoutEntry, LayoutTable,
    Poison,
)
from repro.ifp.narrow import narrow_bounds
from repro.ifp.promote import PromoteOutcome
from repro.ifp.tag import pack_pointer, PointerTag, Scheme, unpack_tag, with_poison
from repro.mem import Memory


def make_unit(config=DEFAULT_CONFIG):
    memory = Memory()
    memory.map_range(0x10000, 0x20000)
    return IFPUnit(memory, HierarchyConfig().build(), config)


def install_figure9(unit, lt_addr=0x10000):
    table = LayoutTable("S", [
        LayoutEntry(0, 0, 24, 24),
        LayoutEntry(0, 0, 4, 4),
        LayoutEntry(0, 4, 20, 8),
        LayoutEntry(2, 0, 4, 4),
        LayoutEntry(2, 4, 8, 4),
        LayoutEntry(0, 20, 24, 4),
    ])
    unit.port.memory.write_bytes(lt_addr, table.serialize())
    return lt_addr


def register_object(unit, obj=0x11000, size=24, lt_addr=0):
    unit.local_offset.write_metadata(unit.port.memory, obj, size, lt_addr,
                                     unit.mac_key)
    return obj


class TestPromoteGates:
    def test_null_bypass(self):
        unit = make_unit()
        result = unit.promote(0)
        assert result.outcome is PromoteOutcome.BYPASS_NULL
        assert result.bounds is None
        assert unit.stats.promotes_null == 1

    def test_legacy_bypass(self):
        unit = make_unit()
        result = unit.promote(0x12345)
        assert result.outcome is PromoteOutcome.BYPASS_LEGACY
        assert result.bounds is None

    def test_poisoned_bypass_skips_metadata(self):
        unit = make_unit()
        obj = register_object(unit)
        pointer = unit.local_offset.make_pointer(obj, obj, 24)
        poisoned = with_poison(pointer, Poison.INVALID)
        result = unit.promote(poisoned)
        assert result.outcome is PromoteOutcome.BYPASS_POISONED
        assert unit.port.loads == 0  # no metadata access with bad pointer

    def test_recoverable_pointer_still_promotes(self):
        unit = make_unit()
        obj = register_object(unit)
        pointer = unit.local_offset.make_pointer(obj, obj, 24)
        recoverable = with_poison(pointer, Poison.RECOVERABLE)
        result = unit.promote(recoverable)
        assert result.outcome is PromoteOutcome.VALID
        # In-bounds address: the fused check clears the poison.
        assert unpack_tag(result.pointer).poison is Poison.VALID


class TestFusedCheck:
    def test_in_bounds_valid(self):
        unit = make_unit()
        obj = register_object(unit)
        result = unit.promote(unit.local_offset.make_pointer(obj + 10,
                                                             obj, 24))
        assert unpack_tag(result.pointer).poison is Poison.VALID

    def test_one_past_recoverable(self):
        unit = make_unit()
        obj = register_object(unit)
        result = unit.promote(unit.local_offset.make_pointer(obj + 24,
                                                             obj, 24))
        assert unpack_tag(result.pointer).poison is Poison.RECOVERABLE
        assert result.bounds == Bounds(obj, obj + 24)


class TestNarrowing:
    def test_flat_member(self):
        unit = make_unit()
        lt = install_figure9(unit)
        obj = register_object(unit, lt_addr=lt)
        # S.v5 is entry 5: [20, 24)
        pointer = unit.local_offset.make_pointer(obj + 20, obj, 24, 5)
        result = unit.promote(pointer)
        assert result.narrowed
        assert result.bounds == Bounds(obj + 20, obj + 24)

    def test_array_of_struct_recursion(self):
        unit = make_unit()
        lt = install_figure9(unit)
        obj = register_object(unit, lt_addr=lt)
        # S.array[1].v4 is entry 4 at address obj + 4 + 8 + 4 = obj+16.
        pointer = unit.local_offset.make_pointer(obj + 16, obj, 24, 4)
        result = unit.promote(pointer)
        assert result.narrowed
        assert result.bounds == Bounds(obj + 16, obj + 20)

    def test_array_elements_share_entry(self):
        unit = make_unit()
        lt = install_figure9(unit)
        obj = register_object(unit, lt_addr=lt)
        # Entry 2 is S.array: bounds cover the whole array regardless of
        # which element the address is in.
        for offset in (4, 12):
            pointer = unit.local_offset.make_pointer(obj + offset, obj,
                                                     24, 2)
            result = unit.promote(pointer)
            assert result.bounds == Bounds(obj + 4, obj + 20)

    def test_index_zero_skips_narrowing(self):
        unit = make_unit()
        lt = install_figure9(unit)
        obj = register_object(unit, lt_addr=lt)
        result = unit.promote(unit.local_offset.make_pointer(obj, obj, 24))
        assert not result.narrow_attempted
        assert result.bounds == Bounds(obj, obj + 24)

    def test_no_layout_table_coarsens(self):
        unit = make_unit()
        obj = register_object(unit, lt_addr=0)
        pointer = unit.local_offset.make_pointer(obj + 20, obj, 24, 5)
        result = unit.promote(pointer)
        assert result.narrow_attempted and not result.narrowed
        assert result.bounds == Bounds(obj, obj + 24)  # object bounds
        assert unit.stats.narrow_no_layout_table == 1

    def test_out_of_range_index_coarsens(self):
        unit = make_unit()
        lt = install_figure9(unit)
        obj = register_object(unit, lt_addr=lt)
        pointer = unit.local_offset.make_pointer(obj, obj, 24, 40)
        result = unit.promote(pointer)
        assert not result.narrowed
        assert result.bounds == Bounds(obj, obj + 24)
        assert unit.stats.narrow_walk_failures == 1

    def test_narrowing_disabled_by_config(self):
        config = IFPConfig(narrowing_enabled=False)
        unit = make_unit(config)
        lt = install_figure9(unit)
        obj = register_object(unit, lt_addr=lt)
        pointer = unit.local_offset.make_pointer(obj + 20, obj, 24, 5)
        result = unit.promote(pointer)
        assert not result.narrowed
        assert result.bounds == Bounds(obj, obj + 24)

    def test_address_outside_parent_fails_softly(self):
        unit = make_unit()
        lt = install_figure9(unit)
        obj = register_object(unit, lt_addr=lt)
        # Entry 3 lives under the array [4, 20); address beyond it cannot
        # identify an element -> coarsen to the array bounds.
        pointer = unit.local_offset.make_pointer(obj + 22, obj, 24, 3)
        result = unit.promote(pointer)
        assert not result.narrowed
        assert result.bounds == Bounds(obj + 4, obj + 20)

    def test_malformed_parent_link_fails_softly(self):
        unit = make_unit()
        lt = 0x10000
        # Hand-craft a table whose entry 1 claims itself as parent.
        data = bytearray(LayoutTable("B", [
            LayoutEntry(0, 0, 16, 16), LayoutEntry(0, 0, 8, 8),
        ]).serialize())
        data[16:18] = (1).to_bytes(2, "little")  # entry1.parent = 1
        unit.port.memory.write_bytes(lt, bytes(data))
        obj = register_object(unit, size=16, lt_addr=lt)
        pointer = unit.local_offset.make_pointer(obj, obj, 16, 1)
        result = unit.promote(pointer)
        assert not result.narrowed
        assert result.bounds == Bounds(obj, obj + 16)


class TestStatsAccounting:
    def test_counts(self):
        unit = make_unit()
        obj = register_object(unit)
        unit.promote(0)
        unit.promote(0x500)
        unit.promote(unit.local_offset.make_pointer(obj, obj, 24))
        stats = unit.stats
        assert stats.promotes_total == 3
        assert stats.promotes_null == 1
        assert stats.promotes_legacy == 1
        assert stats.promotes_valid == 1
        assert stats.promotes_bypassed == 2
        assert stats.lookups_local_offset == 1

    def test_promote_cycles_accumulate(self):
        unit = make_unit()
        obj = register_object(unit)
        result = unit.promote(unit.local_offset.make_pointer(obj, obj, 24))
        assert result.cycles >= unit.config.promote_base_cycles
        assert unit.stats.promote_cycles >= result.cycles
