"""Differential tests: the closure-compiled fastpath vs the reference
interpreter.

The fastpath's contract is *byte-identical observables*: for every
program, the two engines must agree on guest output, exit code, trap
class and message, and every field of ``RunStats`` (including the IFP
unit's counters and the host-side cache counters, which are structural
— the caches live in the shared IFP unit and fire identically under
both engines).  These tests replay generated fuzz programs, injected
attacks, and real workloads under both engines and compare the full
stats dataclass, making them the in-repo mirror of the CI differential
gate (``benchmarks/bench_host_throughput.py --verify-only``).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.compiler import CompilerOptions, compile_source
from repro.errors import ReproError, WorkloadTimeout
from repro.eval.configs import build_machine_config, build_options
from repro.fuzz.attacks import attacks_for
from repro.fuzz.generator import generate_program, render
from repro.vm import Machine, MachineConfig
from repro.vm.fastpath import FastInterpreter
from repro.workloads import WORKLOADS


def _observables(program, config: MachineConfig, engine: str):
    """Run one compiled program under one engine; returns every
    observable the equivalence contract covers, as plain data."""
    from dataclasses import replace
    machine = Machine(program, replace(config, engine=engine))
    result = machine.run()
    trap = result.trap
    return {
        "exit_code": result.exit_code,
        "output": result.output,
        "trap": (type(trap).__name__, str(trap),
                 getattr(trap, "executed", None),
                 getattr(trap, "pc", None))
        if trap else None,
        "stats": dataclasses.asdict(result.stats),
    }


def _assert_engines_agree(source: str, config_name: str,
                          max_instructions: int = 5_000_000):
    program = compile_source(source, build_options(config_name))
    config = build_machine_config(config_name, max_instructions)
    reference = _observables(program, config, "reference")
    fastpath = _observables(program, config, "fastpath")
    assert fastpath == reference, (
        f"engines diverged under {config_name!r}")
    return reference


# ---------------------------------------------------------------------------
# engine selection
# ---------------------------------------------------------------------------

SMALL = "int main(void) { int x = 3; return x + 4; }"


class TestEngineSelection:
    def test_auto_uses_fastpath_when_uninstrumented(self):
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="auto"))
        assert isinstance(machine.select_interp(), FastInterpreter)

    def test_auto_falls_back_with_observer(self):
        from repro.obs import attach_observer
        program = compile_source(SMALL, CompilerOptions.wrapped())
        machine = Machine(program, MachineConfig(engine="auto"))
        attach_observer(machine, profile=True, forensics=True)
        assert machine.select_interp() is machine.interp

    def test_auto_falls_back_with_tracer(self):
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="auto"))
        machine.tracer = object()
        assert machine.select_interp() is machine.interp

    def test_forced_fastpath_rejects_instruments(self):
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="fastpath"))
        machine.tracer = object()
        with pytest.raises(ReproError, match="fastpath"):
            machine.select_interp()

    def test_unknown_engine_rejected(self):
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="turbo"))
        with pytest.raises(ReproError, match="unknown engine"):
            machine.select_interp()

    def test_reference_forces_reference(self):
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="reference"))
        assert machine.select_interp() is machine.interp


# ---------------------------------------------------------------------------
# trap-for-trap equivalence on hand-written programs
# ---------------------------------------------------------------------------

OVERFLOW = """
int main(void) {
    int *p = (int *)malloc(4 * sizeof(int));
    int i;
    for (i = 0; i <= 4; i++) p[i] = i;   /* one past the end */
    return p[0];
}
"""

DIV_ZERO = """
int main(void) {
    int a = 7;
    int b = 0;
    return a / b;
}
"""

SPIN = """
int main(void) {
    int i = 0;
    while (1) i = i + 1;
    return i;
}
"""

RECURSE = """
int add(int n) { if (n == 0) return 0; return n + add(n - 1); }
int main(void) { return add(40); }
"""


class TestTrapEquivalence:
    @pytest.mark.parametrize("config", ["wrapped", "subheap"])
    def test_heap_overflow_trap_identical(self, config):
        run = _assert_engines_agree(OVERFLOW, config)
        assert run["trap"] is not None
        assert run["trap"][0] in ("PoisonTrap", "BoundsTrap")

    @pytest.mark.parametrize("config", ["baseline", "subheap"])
    def test_division_by_zero_identical(self, config):
        run = _assert_engines_agree(DIV_ZERO, config)
        assert run["trap"][:2] == ("SimTrap", "division by zero")

    def test_step_budget_message_and_counts_identical(self):
        # The budget trap must fire at the exact same instruction with
        # the same message, executed count, and pc under both engines —
        # this pins the fastpath's segment-exact accounting.
        run = _assert_engines_agree(SPIN, "baseline",
                                    max_instructions=10_000)
        assert run["trap"][0] == "StepBudgetExceeded"
        assert run["trap"][2] == 10_001  # executed counts the raiser

    def test_call_heavy_program_identical(self):
        _assert_engines_agree(RECURSE, "wrapped")

    def test_fastpath_wall_clock_watchdog_fires(self):
        program = compile_source(SPIN, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(
            engine="fastpath", max_instructions=2_000_000_000))
        with pytest.raises(WorkloadTimeout):
            machine.run(timeout_seconds=0.05)


# ---------------------------------------------------------------------------
# generated fuzz programs, clean and attacked
# ---------------------------------------------------------------------------

FUZZ_SEEDS = [0, 1, 2, 3, 7, 11, 23, 42]
FUZZ_CONFIGS = ["baseline", "subheap", "wrapped", "wrapped-np"]


class TestFuzzCorpusDifferential:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_clean_programs_identical(self, seed):
        program = generate_program(seed)
        for config in FUZZ_CONFIGS:
            _assert_engines_agree(program.source, config)

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:4])
    def test_attacked_programs_identical(self, seed):
        # Attacked variants exercise the trap paths: the engines must
        # agree on whether each attack traps and with which trap.
        program = generate_program(seed)
        budget = 4
        for site in program.sites:
            for attack in attacks_for(site)[:2]:
                source = render(program.spec, (attack.sid, attack.index))
                for config in ("subheap", "wrapped"):
                    _assert_engines_agree(source, config)
                budget -= 1
                if budget == 0:
                    return


# ---------------------------------------------------------------------------
# real workloads
# ---------------------------------------------------------------------------

WORKLOAD_MATRIX = [
    ("treeadd", "baseline"), ("treeadd", "subheap"),
    ("bisort", "wrapped"), ("em3d", "subheap"),
    ("mst", "subheap-np"), ("anagram", "wrapped"),
    ("ft", "baseline"), ("coremark", "subheap"),
]


class TestWorkloadDifferential:
    @pytest.mark.parametrize("name,config", WORKLOAD_MATRIX,
                             ids=[f"{w}-{c}" for w, c in WORKLOAD_MATRIX])
    def test_workload_identical(self, name, config):
        source = WORKLOADS[name].source(1)
        run = _assert_engines_agree(source, config,
                                    max_instructions=200_000_000)
        assert run["trap"] is None
        # The IFP cache counters travel inside stats.ifp: their equality
        # above proves the promote/walk/MAC caches behave structurally
        # identically under both engines.
        assert "promote_cache_hits" in run["stats"]["ifp"]


# ---------------------------------------------------------------------------
# shared-cache invalidation (the fastpath's enabling caches)
# ---------------------------------------------------------------------------

SELF_MODIFY_METADATA = """
struct pair { int a; int b; };
int main(void) {
    struct pair *p = (struct pair *)malloc(sizeof(struct pair));
    int i;
    int sum = 0;
    for (i = 0; i < 64; i++) {
        p->a = i;
        sum = sum + p->a;
    }
    free(p);
    p = (struct pair *)malloc(sizeof(struct pair));
    p->b = sum;
    return p->b & 0xFF;
}
"""


class TestCacheCoherence:
    def test_alloc_free_realloc_identical(self):
        # free() + realloc rewrites object metadata in place; the
        # promote cache must observe the store snoop and miss, under
        # both engines, or stats/cycles would diverge here.
        for config in ("subheap", "wrapped"):
            _assert_engines_agree(SELF_MODIFY_METADATA, config)

    def test_promote_cache_counters_populate(self):
        program = compile_source(WORKLOADS["treeadd"].source(1),
                                 build_options("subheap"))
        machine = Machine(program, MachineConfig(engine="fastpath"))
        result = machine.run()
        ifp = result.stats.ifp
        assert ifp.promote_cache_hits + ifp.promote_cache_misses > 0
        assert ifp.promote_cache_hits > 0
