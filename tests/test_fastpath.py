"""Differential tests: the closure-compiled fastpath vs the reference
interpreter.

The fastpath's contract is *byte-identical observables*: for every
program, the two engines must agree on guest output, exit code, trap
class and message, and every field of ``RunStats`` (including the IFP
unit's counters and the host-side cache counters, which are structural
— the caches live in the shared IFP unit and fire identically under
both engines).  These tests replay generated fuzz programs, injected
attacks, and real workloads under both engines and compare the full
stats dataclass, making them the in-repo mirror of the CI differential
gate (``benchmarks/bench_host_throughput.py --verify-only``).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.compiler import CompilerOptions, compile_source
from repro.errors import ReproError, WorkloadTimeout
from repro.eval.configs import build_machine_config, build_options
from repro.fuzz.attacks import attacks_for
from repro.fuzz.generator import generate_program, render
from repro.vm import Machine, MachineConfig
from repro.vm.fastpath import FastInterpreter
from repro.workloads import WORKLOADS


def _observables(program, config: MachineConfig, engine: str):
    """Run one compiled program under one engine; returns every
    observable the equivalence contract covers, as plain data."""
    from dataclasses import replace
    machine = Machine(program, replace(config, engine=engine))
    result = machine.run()
    trap = result.trap
    return {
        "exit_code": result.exit_code,
        "output": result.output,
        "trap": (type(trap).__name__, str(trap),
                 getattr(trap, "executed", None),
                 getattr(trap, "pc", None))
        if trap else None,
        "stats": dataclasses.asdict(result.stats),
    }


def _assert_engines_agree(source: str, config_name: str,
                          max_instructions: int = 5_000_000):
    program = compile_source(source, build_options(config_name))
    config = build_machine_config(config_name, max_instructions)
    reference = _observables(program, config, "reference")
    for engine in ("fastpath", "superblock"):
        compiled = _observables(program, config, engine)
        assert compiled == reference, (
            f"engine {engine!r} diverged under {config_name!r}")
    return reference


# ---------------------------------------------------------------------------
# engine selection
# ---------------------------------------------------------------------------

SMALL = "int main(void) { int x = 3; return x + 4; }"


class TestEngineSelection:
    def test_auto_uses_fastpath_when_uninstrumented(self):
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="auto"))
        assert isinstance(machine.select_interp(), FastInterpreter)

    def test_auto_uses_instrumented_fastpath_with_observer(self):
        # The big behavior change of the instrumented translation: an
        # armed observer no longer forfeits the fastpath.
        from repro.obs import attach_observer
        program = compile_source(SMALL, CompilerOptions.wrapped())
        machine = Machine(program, MachineConfig(engine="auto"))
        attach_observer(machine, profile=True, forensics=True)
        assert machine.fastpath_reasons() == []
        assert isinstance(machine.select_interp(), FastInterpreter)

    def test_auto_uses_instrumented_fastpath_with_tracer(self):
        from repro.debug.trace import attach_tracer
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="auto"))
        attach_tracer(machine, capacity=64)
        assert machine.fastpath_reasons() == []
        assert isinstance(machine.select_interp(), FastInterpreter)

    def test_forced_fastpath_runs_instrumented(self):
        from repro.obs import attach_observer
        program = compile_source(SMALL, CompilerOptions.wrapped())
        machine = Machine(program, MachineConfig(engine="fastpath"))
        attach_observer(machine, profile=True, forensics=True)
        result = machine.run()
        assert result.exit_code == 7
        assert machine.engine_used == "fastpath"

    def test_alien_tracer_falls_back_with_reason(self):
        # An armed instrument that doesn't speak the record() protocol
        # can't be compiled in; auto degrades to the reference and
        # fastpath_reasons says why.
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="auto"))
        machine.tracer = object()
        assert machine.fastpath_reasons()
        assert machine.select_interp() is machine.interp

    def test_forced_fastpath_rejects_alien_instruments(self):
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="fastpath"))
        machine.tracer = object()
        with pytest.raises(ReproError, match="record"):
            machine.select_interp()

    def test_engine_used_is_reported(self):
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="reference"))
        machine.run()
        assert machine.engine_used == "reference"

    def test_unknown_engine_rejected(self):
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="turbo"))
        with pytest.raises(ReproError, match="unknown engine"):
            machine.select_interp()

    def test_reference_forces_reference(self):
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="reference"))
        assert machine.select_interp() is machine.interp


# ---------------------------------------------------------------------------
# trap-for-trap equivalence on hand-written programs
# ---------------------------------------------------------------------------

OVERFLOW = """
int main(void) {
    int *p = (int *)malloc(4 * sizeof(int));
    int i;
    for (i = 0; i <= 4; i++) p[i] = i;   /* one past the end */
    return p[0];
}
"""

DIV_ZERO = """
int main(void) {
    int a = 7;
    int b = 0;
    return a / b;
}
"""

SPIN = """
int main(void) {
    int i = 0;
    while (1) i = i + 1;
    return i;
}
"""

RECURSE = """
int add(int n) { if (n == 0) return 0; return n + add(n - 1); }
int main(void) { return add(40); }
"""


class TestTrapEquivalence:
    @pytest.mark.parametrize("config", ["wrapped", "subheap"])
    def test_heap_overflow_trap_identical(self, config):
        run = _assert_engines_agree(OVERFLOW, config)
        assert run["trap"] is not None
        assert run["trap"][0] in ("PoisonTrap", "BoundsTrap")

    @pytest.mark.parametrize("config", ["baseline", "subheap"])
    def test_division_by_zero_identical(self, config):
        run = _assert_engines_agree(DIV_ZERO, config)
        assert run["trap"][:2] == ("SimTrap", "division by zero")

    def test_step_budget_message_and_counts_identical(self):
        # The budget trap must fire at the exact same instruction with
        # the same message, executed count, and pc under both engines —
        # this pins the fastpath's segment-exact accounting.
        run = _assert_engines_agree(SPIN, "baseline",
                                    max_instructions=10_000)
        assert run["trap"][0] == "StepBudgetExceeded"
        assert run["trap"][2] == 10_001  # executed counts the raiser

    def test_call_heavy_program_identical(self):
        _assert_engines_agree(RECURSE, "wrapped")

    def test_fastpath_wall_clock_watchdog_fires(self):
        program = compile_source(SPIN, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(
            engine="fastpath", max_instructions=2_000_000_000))
        with pytest.raises(WorkloadTimeout):
            machine.run(timeout_seconds=0.05)


# ---------------------------------------------------------------------------
# generated fuzz programs, clean and attacked
# ---------------------------------------------------------------------------

FUZZ_SEEDS = [0, 1, 2, 3, 7, 11, 23, 42]
FUZZ_CONFIGS = ["baseline", "subheap", "wrapped", "wrapped-np"]


class TestFuzzCorpusDifferential:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_clean_programs_identical(self, seed):
        program = generate_program(seed)
        for config in FUZZ_CONFIGS:
            _assert_engines_agree(program.source, config)

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:4])
    def test_attacked_programs_identical(self, seed):
        # Attacked variants exercise the trap paths: the engines must
        # agree on whether each attack traps and with which trap.
        program = generate_program(seed)
        budget = 4
        for site in program.sites:
            for attack in attacks_for(site)[:2]:
                source = render(program.spec, (attack.sid, attack.index))
                for config in ("subheap", "wrapped"):
                    _assert_engines_agree(source, config)
                budget -= 1
                if budget == 0:
                    return


# ---------------------------------------------------------------------------
# real workloads
# ---------------------------------------------------------------------------

WORKLOAD_MATRIX = [
    ("treeadd", "baseline"), ("treeadd", "subheap"),
    ("bisort", "wrapped"), ("em3d", "subheap"),
    ("mst", "subheap-np"), ("anagram", "wrapped"),
    ("ft", "baseline"), ("coremark", "subheap"),
]


class TestWorkloadDifferential:
    @pytest.mark.parametrize("name,config", WORKLOAD_MATRIX,
                             ids=[f"{w}-{c}" for w, c in WORKLOAD_MATRIX])
    def test_workload_identical(self, name, config):
        source = WORKLOADS[name].source(1)
        run = _assert_engines_agree(source, config,
                                    max_instructions=200_000_000)
        assert run["trap"] is None
        # The IFP cache counters travel inside stats.ifp: their equality
        # above proves the promote/walk/MAC caches behave structurally
        # identically under both engines.
        assert "promote_cache_hits" in run["stats"]["ifp"]


# ---------------------------------------------------------------------------
# instrumented translation: event streams, forensics, traces, faults
# ---------------------------------------------------------------------------


def _instrumented_observables(program, config: MachineConfig,
                              engine: str, fault_plan=None):
    """Run one program with the full observer stack armed (profiler,
    forensics, event tail, auto-tracer) plus an event-capturing sink;
    returns every instrumented observable as plain data."""
    from dataclasses import replace

    from repro.obs import attach_observer

    machine = Machine(program, replace(config, engine=engine))
    if fault_plan is not None:
        from repro.resil.faults import FaultInjector
        FaultInjector(fault_plan).arm(machine)
    events = []
    obs = attach_observer(machine, profile=True, forensics=True)
    obs.bus.subscribe(lambda event: events.append(event.to_dict()))
    result = machine.run()
    trap = result.trap
    return {
        "engine_used": machine.engine_used,
        "exit_code": result.exit_code,
        "output": result.output,
        "trap": (type(trap).__name__, str(trap),
                 getattr(trap, "pc", None)) if trap else None,
        "stats": dataclasses.asdict(result.stats),
        "events": events,
        "trace": machine.tracer.snapshot(),
        "trace_recorded": machine.tracer.recorded,
        "forensics": [report.to_dict() for report in obs.reports],
        "profile": obs.profiler.to_dict(),
    }


def _assert_instrumented_engines_agree(source: str, config_name: str,
                                       max_instructions: int = 5_000_000,
                                       fault_plan=None):
    program = compile_source(source, build_options(config_name))
    config = build_machine_config(config_name, max_instructions)
    reference = _instrumented_observables(program, config, "reference",
                                          fault_plan)
    fastpath = _instrumented_observables(program, config, "fastpath",
                                         fault_plan)
    assert reference["engine_used"] == "reference"
    assert fastpath["engine_used"] == "fastpath"
    del reference["engine_used"], fastpath["engine_used"]
    assert fastpath == reference, (
        f"instrumented engines diverged under {config_name!r}")
    return reference


class TestInstrumentedDifferential:
    """The instrumented fastpath variant must reproduce the reference's
    event stream, tracer ring, forensics, and RunStats byte-for-byte —
    the equivalence contract extended to observability itself."""

    @pytest.mark.parametrize("config", ["wrapped", "subheap"])
    def test_trapping_program_full_obs_identical(self, config):
        run = _assert_instrumented_engines_agree(OVERFLOW, config)
        assert run["trap"] is not None
        assert run["events"], "observer saw no events"
        assert run["forensics"], "trap produced no forensics report"
        assert run["trace_recorded"] > 0

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_fuzz_corpus_event_streams_identical(self, seed):
        program = generate_program(seed)
        for config in FUZZ_CONFIGS:
            _assert_instrumented_engines_agree(program.source, config)

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:3])
    def test_attacked_programs_obs_identical(self, seed):
        program = generate_program(seed)
        budget = 3
        for site in program.sites:
            for attack in attacks_for(site)[:1]:
                source = render(program.spec, (attack.sid, attack.index))
                _assert_instrumented_engines_agree(source, "wrapped")
                budget -= 1
                if budget == 0:
                    return

    @pytest.mark.parametrize("name,config", WORKLOAD_MATRIX[:4],
                             ids=[f"{w}-{c}"
                                  for w, c in WORKLOAD_MATRIX[:4]])
    def test_workload_event_streams_identical(self, name, config):
        source = WORKLOADS[name].source(1)
        run = _assert_instrumented_engines_agree(
            source, config, max_instructions=200_000_000)
        assert run["trap"] is None

    @pytest.mark.parametrize("fault", ["tag_bit_flip",
                                       "metadata_corrupt",
                                       "mac_corrupt"])
    def test_fault_injection_outcomes_identical(self, fault):
        # Injectors hook the shared IFP unit, so the same seeded plan
        # must perturb both engines identically — including the
        # FaultEvents it emits and any trap it provokes.
        from repro.resil.faults import FaultPlan
        plan = FaultPlan.single(fault, seed=7, period=3, start=2)
        run = _assert_instrumented_engines_agree(
            WORKLOADS["treeadd"].source(1), "wrapped",
            max_instructions=200_000_000, fault_plan=plan)
        assert any(e["kind"] == "fault" for e in run["events"])

    def test_tracer_only_run_identical(self):
        # A tracer without an observer exercises the SIG_TRACE-only
        # variant of the translation cache.
        from dataclasses import replace

        from repro.debug.trace import attach_tracer

        program = compile_source(WORKLOADS["anagram"].source(1),
                                 build_options("wrapped"))
        config = build_machine_config("wrapped", 200_000_000)
        rings = {}
        for engine in ("reference", "fastpath"):
            machine = Machine(program, replace(config, engine=engine))
            tracer = attach_tracer(machine, capacity=512)
            result = machine.run()
            assert result.trap is None
            rings[engine] = (tracer.recorded, tracer.snapshot())
        assert rings["reference"] == rings["fastpath"]

    def test_signature_keys_coexist_in_cache(self):
        # One FastInterpreter must hold disarmed and instrumented
        # translations side by side without cross-talk.
        from dataclasses import replace

        from repro.obs import attach_observer

        program = compile_source(WORKLOADS["treeadd"].source(1),
                                 build_options("wrapped"))
        config = replace(build_machine_config("wrapped", 200_000_000),
                         engine="fastpath")
        machine = Machine(program, config)
        plain = machine.run()
        assert machine.engine_used == "fastpath"
        sigs = {key[1] for key in machine._fast._fused}
        assert sigs == {0}
        machine2 = Machine(program, config)
        obs = attach_observer(machine2, profile=True, forensics=True)
        observed = machine2.run()
        assert machine2.engine_used == "fastpath"
        assert observed.exit_code == plain.exit_code
        assert observed.output == plain.output
        assert obs.bus.emitted > 0
        sigs = {key[1] for key in machine2._fast._fused}
        assert sigs <= {0, 3} and 3 in sigs


# ---------------------------------------------------------------------------
# shared-cache invalidation (the fastpath's enabling caches)
# ---------------------------------------------------------------------------

SELF_MODIFY_METADATA = """
struct pair { int a; int b; };
int main(void) {
    struct pair *p = (struct pair *)malloc(sizeof(struct pair));
    int i;
    int sum = 0;
    for (i = 0; i < 64; i++) {
        p->a = i;
        sum = sum + p->a;
    }
    free(p);
    p = (struct pair *)malloc(sizeof(struct pair));
    p->b = sum;
    return p->b & 0xFF;
}
"""


class TestCacheCoherence:
    def test_alloc_free_realloc_identical(self):
        # free() + realloc rewrites object metadata in place; the
        # promote cache must observe the store snoop and miss, under
        # both engines, or stats/cycles would diverge here.
        for config in ("subheap", "wrapped"):
            _assert_engines_agree(SELF_MODIFY_METADATA, config)

    def test_promote_cache_counters_populate(self):
        program = compile_source(WORKLOADS["treeadd"].source(1),
                                 build_options("subheap"))
        machine = Machine(program, MachineConfig(engine="fastpath"))
        result = machine.run()
        ifp = result.stats.ifp
        assert ifp.promote_cache_hits + ifp.promote_cache_misses > 0
        assert ifp.promote_cache_hits > 0


# ---------------------------------------------------------------------------
# superblock (whole-function translation) tier
# ---------------------------------------------------------------------------

LOOPY = """
int main(void) {
    int i;
    int sum = 0;
    for (i = 0; i < 100; i++) sum = sum + i;
    return sum & 0xFF;
}
"""


class TestSuperblockTier:
    """The whole-function tier's own contract: tier selection, both
    translation shapes, and byte-identity where the fused tier's tests
    don't already force it (temporal modes, deadline path, elision)."""

    def test_forced_superblock_translates_on_first_call(self):
        program = compile_source(LOOPY, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="superblock"))
        result = machine.run()
        assert result.exit_code == (99 * 100 // 2) & 0xFF
        assert machine.engine_used == "superblock"
        assert "main" in machine._fast._super

    def test_auto_graduates_loopy_function_immediately(self):
        program = compile_source(LOOPY, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="auto"))
        machine.run()
        assert machine.engine_used == "fastpath"
        assert "main" in machine._fast._super

    def test_auto_defers_straight_line_functions(self):
        # A function with no backedge only graduates after the call
        # threshold; SMALL's main runs once and must stay fused.
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="auto"))
        machine.run()
        assert "main" not in machine._fast._super

    def test_hot_straight_line_function_graduates(self):
        from repro.vm.fastpath import _SUPER_CALL_THRESHOLD
        calls = _SUPER_CALL_THRESHOLD + 1
        source = """
        int leaf(int x) { return x + 1; }
        int main(void) {
            int i;
            int v = 0;
            for (i = 0; i < %d; i++) v = leaf(v);
            return v;
        }
        """ % calls
        program = compile_source(source, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="auto"))
        result = machine.run()
        assert result.exit_code == calls
        assert "leaf" in machine._fast._super

    def test_small_function_compiles_whole_large_gets_table(self):
        # coremark's switch-heavy functions exceed the arm cap and keep
        # handler-table dispatch with native loop regions; treeadd's
        # functions all fit the whole-function shape.
        for name, expects_table in (("coremark", True),
                                    ("treeadd", False)):
            program = compile_source(WORKLOADS[name].source(1),
                                     build_options("baseline"))
            machine = Machine(program,
                              MachineConfig(engine="superblock"))
            machine.run()
            shapes = {type(fn) is list
                      for fn in machine._fast._super.values()}
            assert machine._fast._super, "nothing graduated"
            if expects_table:
                assert True in shapes, "no table-mode translation"
            else:
                assert shapes == {False}, "expected whole-function only"

    def test_superblock_rejects_alien_instruments(self):
        program = compile_source(SMALL, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(engine="superblock"))
        machine.tracer = object()
        with pytest.raises(ReproError, match="superblock"):
            machine.select_interp()

    def test_superblock_wall_clock_watchdog_fires(self):
        # A deadline-armed run single-steps (the superblock tier never
        # engages) so the watchdog polls between instructions.
        program = compile_source(SPIN, CompilerOptions.baseline())
        machine = Machine(program, MachineConfig(
            engine="superblock", max_instructions=2_000_000_000))
        with pytest.raises(WorkloadTimeout):
            machine.run(timeout_seconds=0.05)

    @pytest.mark.parametrize("temporal", ["check", "quarantine"])
    def test_temporal_modes_identical(self, temporal):
        # Lock-and-key probes sit inline in compiled deref sites; the
        # superblock translation must keep them byte-identical in both
        # temporal modes, including a trapping double free.
        from dataclasses import replace
        DOUBLE_FREE = """
        int main(void) {
            int *p = (int *)malloc(4 * sizeof(int));
            int i;
            for (i = 0; i < 4; i++) p[i] = i;
            free(p);
            free(p);
            return 0;
        }
        """
        for source in (SELF_MODIFY_METADATA, DOUBLE_FREE):
            program = compile_source(source, build_options("subheap"))
            config = replace(build_machine_config("subheap"),
                             temporal=temporal)
            reference = _observables(program, config, "reference")
            for engine in ("fastpath", "superblock"):
                assert _observables(program, config, engine) \
                    == reference, f"{engine} diverged ({temporal})"

    def test_budget_trap_identical_inside_native_loop(self):
        # The budget must fire at the reference's exact instruction even
        # when it lands inside a pinned native-loop region (the spill +
        # single-step fallback path).
        run = _assert_engines_agree(LOOPY, "baseline",
                                    max_instructions=150)
        assert run["trap"][0] == "StepBudgetExceeded"
        assert run["trap"][2] == 151

    def test_elision_counters_engine_identical(self):
        # promote_elisions blends dynamic memo hits with statically
        # proven sites; the static pass must only elide where the
        # reference's memo would have hit, keeping the counter equal.
        run = _assert_engines_agree(WORKLOADS["treeadd"].source(1),
                                    "subheap",
                                    max_instructions=200_000_000)
        assert run["stats"]["ifp"]["promote_elisions"] > 0

    def test_cache_coherence_under_superblock(self):
        from dataclasses import replace
        program = compile_source(SELF_MODIFY_METADATA,
                                 build_options("subheap"))
        config = replace(build_machine_config("subheap"),
                         engine="superblock")
        machine = Machine(program, config)
        result = machine.run()
        assert result.trap is None
        assert machine.engine_used == "superblock"
