"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.compiler import CompilerOptions, compile_source
from repro.vm import Machine, MachineConfig


def compile_and_run(source: str, options: CompilerOptions = None,
                    max_instructions: int = 20_000_000,
                    entry: str = "main"):
    """Compile mini-C and run it; returns the RunResult."""
    options = options or CompilerOptions.wrapped()
    program = compile_source(source, options)
    machine = Machine(program, MachineConfig(
        no_promote=options.no_promote,
        max_instructions=max_instructions))
    return machine.run(entry)


def run_all_configs(source: str, max_instructions: int = 20_000_000):
    """Run under baseline / wrapped / subheap; returns dict of results."""
    return {
        name: compile_and_run(source, options, max_instructions)
        for name, options in [
            ("baseline", CompilerOptions.baseline()),
            ("wrapped", CompilerOptions.wrapped()),
            ("subheap", CompilerOptions.subheap()),
        ]
    }


@pytest.fixture
def machine_factory():
    """Build a bare machine around a trivial program (for runtime tests)."""
    def build(allocator: str = "wrapped"):
        options = (CompilerOptions.subheap() if allocator == "subheap"
                   else CompilerOptions.wrapped() if allocator == "wrapped"
                   else CompilerOptions.baseline())
        program = compile_source("int main(void) { return 0; }", options)
        return Machine(program)
    return build
