"""Tests for the 18 application benchmarks.

Every workload must run to completion under every configuration and
produce the identical answer — the reproduction's equivalent of the
paper's functional sanity on its benchmark set.
"""

import pytest

from repro.compiler import CompilerOptions, compile_source
from repro.vm import Machine, MachineConfig
from repro.workloads import WORKLOADS, all_workloads, get

_CONFIGS = {
    "baseline": CompilerOptions.baseline(),
    "wrapped": CompilerOptions.wrapped(),
    "subheap": CompilerOptions.subheap(),
}


def run(workload, config_name, scale=1):
    program = compile_source(workload.source(scale), _CONFIGS[config_name])
    machine = Machine(program, MachineConfig(max_instructions=150_000_000))
    return machine.run()


class TestRegistry:
    def test_eighteen_workloads(self):
        assert len(all_workloads()) == 18

    def test_suites(self):
        suites = {}
        for workload in all_workloads():
            suites.setdefault(workload.suite, []).append(workload.name)
        assert len(suites["olden"]) == 10
        assert len(suites["ptrdist"]) == 4
        assert len(suites["other"]) == 4

    def test_get(self):
        assert get("treeadd").name == "treeadd"
        with pytest.raises(KeyError):
            get("nonexistent")

    def test_sources_scale(self):
        for workload in all_workloads():
            small = workload.source(1)
            large = workload.source(2)
            assert small != large  # scale must change the program


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestExecution:
    def test_all_configs_agree(self, name):
        workload = get(name)
        outputs = {}
        for config in _CONFIGS:
            result = run(workload, config)
            assert result.ok, f"{name}[{config}] trapped: {result.trap}"
            assert workload.expected_output in result.output
            outputs[config] = result.output
        assert len(set(outputs.values())) == 1, outputs


class TestPaperSignatures:
    """Spot-check the paper-reported per-benchmark behaviours."""

    def test_treeadd_subheap_faster_than_baseline(self):
        baseline = run(get("treeadd"), "baseline")
        subheap = run(get("treeadd"), "subheap")
        assert subheap.stats.total_instructions \
            < baseline.stats.total_instructions

    def test_perimeter_subheap_faster_than_baseline(self):
        baseline = run(get("perimeter"), "baseline")
        subheap = run(get("perimeter"), "subheap")
        assert subheap.stats.total_instructions \
            < baseline.stats.total_instructions

    def test_wrapper_allocated_workloads_have_no_layout_tables(self):
        # treeadd/bisort/perimeter allocate through wrappers.
        for name in ("treeadd", "bisort", "perimeter"):
            stats = run(get(name), "subheap").stats
            assert stats.heap_objects > 0
            assert stats.heap_objects_lt == 0, name

    def test_anagram_heap_objects_all_have_layout_tables(self):
        stats = run(get("anagram"), "subheap").stats
        assert stats.heap_objects_lt == stats.heap_objects > 0

    def test_bisort_promotes_are_null_heavy(self):
        ifp = run(get("bisort"), "subheap").stats.ifp
        assert ifp.promotes_null > 0
        assert ifp.promotes_null >= ifp.promotes_legacy

    def test_voronoi_promotes_are_legacy_heavy(self):
        ifp = run(get("voronoi"), "subheap").stats.ifp
        assert ifp.promotes_legacy > ifp.promotes_null
        # The paper: voronoi has the lowest valid-promote ratio (44%).
        assert ifp.promotes_valid / ifp.promotes_total < 0.6

    def test_health_narrowing_all_succeed(self):
        ifp = run(get("health"), "subheap").stats.ifp
        assert ifp.narrow_attempts > 0
        assert ifp.narrow_success == ifp.narrow_attempts

    def test_coremark_narrowing_all_fail(self):
        ifp = run(get("coremark"), "subheap").stats.ifp
        assert ifp.narrow_attempts > 0
        assert ifp.narrow_success == 0

    def test_coremark_single_allocation(self):
        stats = run(get("coremark"), "subheap").stats
        assert stats.heap_objects == 1

    def test_sjeng_valid_promote_ratio_low(self):
        ifp = run(get("sjeng"), "subheap").stats.ifp
        # Paper: 26% valid.
        assert ifp.promotes_total > 0
        assert ifp.promotes_valid / ifp.promotes_total < 0.5

    def test_sjeng_uses_global_table_global(self):
        stats = run(get("sjeng"), "subheap").stats
        assert stats.global_objects >= 1
        assert stats.ifp.lookups_global_table > 0

    def test_bh_registers_many_locals(self):
        stats = run(get("bh"), "subheap").stats
        assert stats.local_objects > 500
        assert stats.local_objects_lt == stats.local_objects

    def test_em3d_array_allocations_have_no_tables(self):
        stats = run(get("em3d"), "subheap").stats
        assert stats.heap_objects_lt == 0

    def test_instrumented_runs_have_promotes(self):
        for name in ("bisort", "health", "mst", "ft", "ks"):
            stats = run(get(name), "wrapped").stats
            assert stats.promote_instructions > 0, name

    def test_wrapped_allocator_costs_more_memory_than_subheap_on_treeadd(self):
        wrapped = run(get("treeadd"), "wrapped", scale=2)
        subheap = run(get("treeadd"), "subheap", scale=2)
        assert subheap.stats.peak_mapped_bytes \
            < wrapped.stats.peak_mapped_bytes
