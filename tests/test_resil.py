"""Tests for repro.resil: fault injection, graceful degradation, and
the watchdog/retry hardening (plus the InvalidFree allocator guards)."""

import pytest

from repro.compiler import CompilerOptions, compile_source
from repro.errors import (
    InvalidFree, ResourceExhausted, SimTrap, StepBudgetExceeded,
    WorkloadTimeout,
)
from repro.ifp.config import IFPConfig
from repro.obs import attach_observer
from repro.obs.events import DegradeEvent, FaultEvent
from repro.resil import (
    DEFAULT_POLICY, STRICT_POLICY, DegradationPolicy, FaultInjector,
    FaultPlan, FaultSpec, call_with_retry, derive_seed,
)
from repro.vm import Machine, MachineConfig

GT_ONLY = IFPConfig(schemes_enabled=("global_table",))

#: heap churn with live pointers: every object occupies a table row
#: under the global-table-only configuration
CHURN = """
int main(void) {
    char *keep[64];
    int i;
    int sum = 0;
    for (i = 0; i < 64; i++) {
        keep[i] = (char*)malloc(16);
        keep[i][0] = i;
    }
    for (i = 0; i < 64; i++) { sum = sum + keep[i][0]; }
    return sum & 0xFF;
}
"""


def _machine(source, options=None, **config_kwargs):
    options = options or CompilerOptions.wrapped()
    program = compile_source(source, options)
    config_kwargs.setdefault("ifp", options.ifp)
    return Machine(program, MachineConfig(**config_kwargs))


def _drain_global_table(machine, leave):
    table = machine.global_table
    while table.free_rows > leave:
        table._free_rows.pop()


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(global_table_exhaustion="panic").validate()

    def test_names(self):
        assert DEFAULT_POLICY.name == "degrade"
        assert STRICT_POLICY.name == "strict"
        mixed = DegradationPolicy(global_table_exhaustion="strict")
        assert mixed.name == "mixed"


class TestGlobalTableDegradation:
    """Satellite: global-table exhaustion degrades to legacy pointers by
    default and keeps trapping under the strict policy."""

    def test_default_policy_degrades(self):
        machine = _machine(CHURN, CompilerOptions.wrapped(ifp=GT_ONLY))
        _drain_global_table(machine, leave=8)
        result = machine.run()
        assert result.ok, result.trap
        assert result.stats.degraded_allocs > 0
        # Degraded allocations still compute the right answer.
        assert result.exit_code == sum(range(64)) & 0xFF

    def test_strict_policy_traps(self):
        machine = _machine(CHURN, CompilerOptions.wrapped(ifp=GT_ONLY),
                           policy=STRICT_POLICY)
        _drain_global_table(machine, leave=8)
        result = machine.run()
        assert isinstance(result.trap, ResourceExhausted)

    def test_degrade_emits_typed_events(self):
        machine = _machine(CHURN, CompilerOptions.wrapped(ifp=GT_ONLY))
        events = []
        obs = attach_observer(machine, profile=False, forensics=False)
        obs.bus.subscribe(events.append)
        _drain_global_table(machine, leave=8)
        result = machine.run()
        assert result.ok, result.trap
        degrades = [e for e in events if isinstance(e, DegradeEvent)]
        assert degrades
        assert degrades[0].resource == "global_table"
        assert degrades[0].action == "legacy_pointer"
        assert result.stats.degraded_allocs == len(degrades)


class TestInvalidFree:
    """Satellite: explicit double-free / wild-free detection with the
    address and allocator context in the trap."""

    def test_freelist_double_free(self):
        result = _machine("""
        int main(void) {
            char *p = (char*)malloc(24);
            free(p);
            free(p);
            return 0;
        }
        """, CompilerOptions.baseline()).run()
        assert isinstance(result.trap, InvalidFree)
        assert result.trap.kind == "double_free"
        assert result.trap.allocator == "freelist"
        assert result.trap.address != 0
        assert "double free" in str(result.trap)
        assert f"0x{result.trap.address:x}" in str(result.trap)

    def test_freelist_unknown_pointer(self):
        result = _machine("""
        int main(void) {
            char local[16];
            free(local);
            return 0;
        }
        """, CompilerOptions.baseline()).run()
        assert isinstance(result.trap, InvalidFree)
        assert result.trap.kind == "unknown_pointer"

    def test_subheap_double_free(self):
        result = _machine("""
        int main(void) {
            char *p = (char*)malloc(24);
            free(p);
            free(p);
            return 0;
        }
        """, CompilerOptions.subheap()).run()
        assert isinstance(result.trap, InvalidFree)
        assert result.trap.kind == "double_free"
        assert result.trap.allocator == "subheap"

    def test_wrapped_double_free(self):
        result = _machine("""
        int main(void) {
            char *p = (char*)malloc(24);
            free(p);
            free(p);
            return 0;
        }
        """, CompilerOptions.wrapped()).run()
        assert isinstance(result.trap, InvalidFree)
        assert result.trap.kind == "double_free"


class TestWatchdog:
    """Acceptance: a deliberately infinite guest raises WorkloadTimeout
    instead of hanging; the step budget stays a typed trap."""

    INFINITE = """
    int main(void) {
        int x = 1;
        while (x) { x = x + 1; x = x | 1; }
        return 0;
    }
    """

    def test_infinite_guest_times_out(self):
        machine = _machine(self.INFINITE, CompilerOptions.baseline(),
                           wall_clock_timeout=0.2)
        with pytest.raises(WorkloadTimeout) as info:
            machine.run()
        exc = info.value
        assert exc.seconds == pytest.approx(0.2)
        assert exc.executed > 0
        assert exc.stats is not None
        assert exc.stats.ifp is not None  # stats were finalized

    def test_timeout_is_not_a_guest_trap(self):
        # A timeout must never count as a detection (SimTrap).
        assert not issubclass(WorkloadTimeout, SimTrap)

    def test_run_argument_overrides_config(self):
        machine = _machine(self.INFINITE, CompilerOptions.baseline())
        with pytest.raises(WorkloadTimeout):
            machine.run(timeout_seconds=0.2)

    def test_with_context_labels_workload(self):
        exc = WorkloadTimeout("wall-clock timeout after 0.2s",
                              seconds=0.2, executed=1000)
        labelled = exc.with_context("treeadd", "wrapped")
        assert labelled.workload == "treeadd"
        assert labelled.config == "wrapped"
        assert "treeadd" in str(labelled)
        assert "wall-clock timeout" in str(labelled)

    def test_step_budget_is_typed_trap(self):
        machine = _machine(self.INFINITE, CompilerOptions.baseline(),
                           max_instructions=10_000)
        result = machine.run()
        assert isinstance(result.trap, StepBudgetExceeded)
        assert result.trap.limit == 10_000
        assert result.trap.executed >= 10_000
        assert "limit" in str(result.trap)


class TestRetry:
    def test_derive_seed_attempt_zero_is_identity(self):
        for seed in (0, 1, 42, (1 << 63) + 17):
            assert derive_seed(seed, 0) == seed

    def test_derive_seed_deterministic_and_distinct(self):
        seeds = [derive_seed(1234, attempt) for attempt in range(6)]
        assert seeds == [derive_seed(1234, attempt)
                         for attempt in range(6)]
        assert len(set(seeds)) == 6
        assert all(0 <= s < (1 << 64) for s in seeds)

    def test_nearby_seeds_diverge(self):
        assert derive_seed(1, 1) != derive_seed(2, 1)

    def test_retry_succeeds_after_transient_failures(self):
        delays, attempts_seen, retries = [], [], []

        def flaky(attempt):
            attempts_seen.append(attempt)
            if attempt < 2:
                raise WorkloadTimeout("slow")
            return derive_seed(7, attempt)

        value = call_with_retry(
            flaky, attempts=3, base_delay=0.1, sleep=delays.append,
            on_retry=lambda a, exc, d: retries.append((a, d)))
        assert value == derive_seed(7, 2)
        assert attempts_seen == [0, 1, 2]
        assert delays == pytest.approx([0.1, 0.2])  # exponential
        assert retries == [(0, pytest.approx(0.1)),
                           (1, pytest.approx(0.2))]

    def test_non_transient_propagates_immediately(self):
        delays = []

        def broken(attempt):
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            call_with_retry(broken, attempts=3, sleep=delays.append)
        assert delays == []

    def test_exhausted_attempts_reraise(self):
        delays = []

        def hopeless(attempt):
            raise WorkloadTimeout(f"attempt {attempt}")

        with pytest.raises(WorkloadTimeout) as info:
            call_with_retry(hopeless, attempts=3, base_delay=0.5,
                            sleep=delays.append)
        assert "attempt 2" in str(info.value)
        assert len(delays) == 2  # no sleep after the final attempt


class TestFaultInjector:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.single("cosmic_ray", seed=0).validate()
        with pytest.raises(ValueError):
            FaultSpec(fault="mac_corrupt", period=0).validate()
        FaultPlan.single("mac_corrupt", seed=0, period=3).validate()

    def test_tag_flip_stays_in_tag_bits(self):
        injector = FaultInjector(FaultPlan.single("tag_bit_flip", seed=9))
        pointer = (1 << 60) | 0x7F00  # SUBHEAP-tagged pointer
        tag_mask = ((1 << 62) - 1) ^ ((1 << 48) - 1)  # bits 48..61
        for _ in range(64):
            flipped = injector.on_promote(pointer)
            assert (flipped ^ pointer) & ~tag_mask == 0
            assert flipped != pointer  # period 1: every promote flips
        assert len(injector.injections) == 64

    def test_metadata_load_phase_targeting(self):
        injector = FaultInjector(FaultPlan.single("mac_corrupt", seed=3))
        # Non-MAC widths and non-metadata phases pass through untouched.
        assert injector.on_metadata_load(0x1000, 8, 0xAB, "metadata") == 0xAB
        assert injector.on_metadata_load(0x1000, 6, 0xAB, "layout") == 0xAB
        assert injector.on_metadata_load(0x1000, 6, 0xAB, None) == 0xAB
        corrupted = injector.on_metadata_load(0x1000, 6, 0xAB, "metadata")
        assert corrupted != 0xAB
        assert corrupted < (1 << 48)

    def test_start_and_period_gate(self):
        plan = FaultPlan.single("metadata_corrupt", seed=0, start=2,
                                period=3)
        injector = FaultInjector(plan)
        hits = [injector.on_metadata_load(0, 8, 0, "metadata") != 0
                for _ in range(8)]
        # Opportunities 0,1 skipped; then every 3rd: 2, 5, ...
        assert hits == [False, False, True, False, False, True, False,
                        False]

    def test_same_plan_same_injections(self):
        plan = FaultPlan.single("metadata_corrupt", seed=11, period=7)
        logs = []
        for _ in range(2):
            machine = _machine(CHURN)
            injector = FaultInjector(plan)
            injector.arm(machine)
            machine.run()
            logs.append([(i.fault, i.target, i.detail)
                         for i in injector.injections])
        assert logs[0], "plan injected nothing"
        assert logs[0] == logs[1]

    def test_arm_time_global_table_drain(self):
        machine = _machine(CHURN, CompilerOptions.wrapped(ifp=GT_ONLY))
        injector = FaultInjector(FaultPlan.single(
            "global_table_exhaust", seed=0, payload=3))
        injector.arm(machine)
        assert machine.global_table.free_rows == 3

    def test_arm_time_subheap_register_pressure(self):
        machine = _machine(CHURN, CompilerOptions.subheap())
        injector = FaultInjector(FaultPlan.single(
            "subheap_register_pressure", seed=0, payload=1))
        injector.arm(machine)
        registers = machine.ifp.control._subheap
        assert sum(1 for r in registers if r is None) == 1

    def test_alloc_oom_returns_null(self):
        machine = _machine(CHURN)
        injector = FaultInjector(FaultPlan.single("alloc_oom", seed=0))
        injector.arm(machine)
        address, _cycles, _instrs = machine.freelist.malloc(32)
        assert address == 0

    def test_injections_reach_the_observer(self):
        machine = _machine(CHURN, CompilerOptions.wrapped(ifp=GT_ONLY))
        events = []
        obs = attach_observer(machine, profile=False, forensics=False)
        obs.bus.subscribe(events.append)
        injector = FaultInjector(FaultPlan.single(
            "global_table_exhaust", seed=0, payload=4))
        injector.arm(machine)
        faults = [e for e in events if isinstance(e, FaultEvent)]
        assert len(faults) == 1
        assert faults[0].fault == "global_table_exhaust"


class TestFuzzDriverRetry:
    """Acceptance: a flaky (timing-out) fuzz iteration is retried with a
    deterministically derived seed and exponential backoff."""

    def _run(self, monkeypatch, fail_first_n, retries=2):
        from repro.fuzz import driver

        calls = []

        def flaky_check_clean(source, configs, name="", \
                              timeout_seconds=None, engine="auto",
                              temporal="off"):
            calls.append(source)
            if len(calls) <= fail_first_n:
                raise WorkloadTimeout("simulated hang")
            return {}, []

        delays = []
        monkeypatch.setattr(driver, "check_clean", flaky_check_clean)
        monkeypatch.setattr("time.sleep", delays.append)
        stats = driver.run_fuzz(
            1, seed=42, configs=["baseline"], inject=False,
            timeout_seconds=5.0, retries=retries, backoff_base=0.1,
            log=lambda message: None, progress_every=0)
        return stats, calls, delays

    def test_flaky_iteration_retries_with_derived_seed(self, monkeypatch):
        stats, calls, delays = self._run(monkeypatch, fail_first_n=1)
        assert stats.reseed_retries == 1
        assert stats.timeouts == 0
        assert stats.programs == 2  # original + one reseeded attempt
        # The retry regenerated the program from a *different* seed.
        assert calls[0] != calls[1]
        # Backoff is seeded-jittered (+-50% around the exponential
        # base), keyed on seed ^ iteration = 42 ^ 0.
        from repro.par.seeds import jittered_backoff
        assert delays == pytest.approx([jittered_backoff(0.1, 0, 42)])
        assert 0.05 <= delays[0] <= 0.15

    def test_retry_sequence_is_deterministic(self, monkeypatch):
        first = self._run(monkeypatch, fail_first_n=1)[1]
        second = self._run(monkeypatch, fail_first_n=1)[1]
        assert first == second

    def test_exhausted_iteration_is_abandoned(self, monkeypatch):
        stats, calls, delays = self._run(monkeypatch, fail_first_n=99)
        assert stats.timeouts == 1
        assert stats.reseed_retries == 2
        assert len(calls) == 3  # 1 + retries attempts
        from repro.par.seeds import jittered_backoff
        assert delays == pytest.approx(
            [jittered_backoff(0.1, attempt, 42) for attempt in (0, 1)])
        assert stats.ok  # a timeout is not an oracle failure


class TestCampaign:
    def test_smoke_campaign(self):
        from repro.obs.metrics import metrics_document, validate_document
        from repro.resil.matrix import run_campaign

        campaign = run_campaign(
            workloads=("treeadd",), schemes=("local_offset",),
            faults=("metadata_corrupt", "mac_corrupt"), seed=1,
            timeout_seconds=60.0)
        assert len(campaign.cells) == 2
        assert campaign.ok  # zero MAC-protected silent corruption
        assert campaign.mac_protected_silent_corruptions() == []
        for cell in campaign.cells:
            assert cell.outcome in ("detected_by_mac",
                                    "detected_by_bounds", "degraded",
                                    "unaffected"), cell.row()
        doc = metrics_document("resil", {"seed": 1}, campaign.metrics())
        assert validate_document(doc) == []
        assert "treeadd" in campaign.render()

    def test_temporal_lock_corrupt_cells_never_diverge_silently(self):
        """Satellite gate: a corrupted lock generation must surface as
        the typed TemporalViolation (or be harmless) — registry
        corruption only changes check outcomes, never guest data."""
        from repro.resil.matrix import CampaignRunner

        runner = CampaignRunner(timeout_seconds=60.0)
        campaign = runner.run(
            workload_names=("treeadd",),
            schemes=("local_offset", "subheap", "global_table"),
            faults=("temporal_lock_corrupt",), seed=1234)
        assert campaign.ok
        assert campaign.temporal_silent_corruptions() == []
        assert campaign.metrics()["temporal_silent_corruption"] == 0
        outcomes = {cell.outcome for cell in campaign.cells}
        assert outcomes <= {"detected_by_temporal", "unaffected"}, \
            campaign.render()
        assert "detected_by_temporal" in outcomes
        assert any(cell.injections > 0 for cell in campaign.cells)
        assert "temporal lock corruption: zero silent corruption" \
            in campaign.render()

    def test_temporal_fault_is_noop_with_policy_off(self):
        """Arming the fault on a machine without the temporal policy
        leaves it untouched (nothing to corrupt)."""
        from repro.compiler import CompilerOptions, compile_source
        from repro.resil.faults import FaultInjector, FaultPlan
        from repro.vm import Machine

        source = "int main(void) { int *p = (int*)malloc(8); " \
                 "p[0] = 1; free(p); return 0; }"
        program = compile_source(source, CompilerOptions.wrapped())
        machine = Machine(program)
        injector = FaultInjector(FaultPlan.single(
            "temporal_lock_corrupt", seed=3, period=1))
        injector.arm(machine)
        result = machine.run()
        assert result.trap is None
        assert injector.injections == []

    def test_cell_seeds_are_deterministic(self):
        from repro.resil.matrix import CampaignRunner

        runner = CampaignRunner(timeout_seconds=60.0)
        runs = [runner.run(workload_names=("treeadd",),
                           schemes=("local_offset",),
                           faults=("metadata_corrupt",), seed=5)
                for _ in range(2)]
        first, second = (r.cells[0] for r in runs)
        assert first.seed == second.seed == derive_seed(5, 1)
        assert first.outcome == second.outcome
        assert first.injections == second.injections

    def test_exhaustion_cell_degrades_then_traps_under_strict(self):
        from repro.resil.matrix import run_campaign

        kwargs = dict(workloads=("treeadd",), schemes=("global_table",),
                      faults=("global_table_exhaust",), seed=0,
                      timeout_seconds=60.0)
        degrade = run_campaign(**kwargs)
        assert degrade.cells[0].outcome == "degraded"
        strict = run_campaign(strict=True, **kwargs)
        assert strict.cells[0].outcome == "trapped"
        assert "ResourceExhausted" in strict.cells[0].detail
