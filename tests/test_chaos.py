"""Tests for the host-level chaos harness: seeded fault schedules,
the hostio injection seam, checkpoint integrity under injected
corruption, quarantine/resume round-trips, and the chaos-matrix gate.
"""

import json
import os

import pytest

from repro.errors import InjectedCrash, InjectedFault, InjectedIOFault
from repro.hostio import (
    TMP_SUFFIX, atomic_write_json, crc32_of_json, inject_faults,
    sweep_stale_tmp,
)
from repro.par import Checkpoint, plan_indices, run_plan
from repro.resil.chaos import (
    CELL_VERDICTS, HOST_FAULT_CLASSES, POISON_SHARD, ChaosSchedule,
    HostFaultInjector, check_matrix, run_chaos_cell, run_chaos_campaign,
)

SELFTEST = "repro.par.campaigns:run_selftest_shard"


def _plan(seed, total, shards, **params):
    params.setdefault("fail_shards", [])
    return plan_indices("selftest", seed, list(range(total)),
                        params=params, shards=shards)


# ---------------------------------------------------------------------------
# the schedule: pure, seeded, validated
# ---------------------------------------------------------------------------

class TestChaosSchedule:
    def test_fires_is_a_pure_function_of_seed_fault_index(self):
        a = ChaosSchedule(seed=7)
        b = ChaosSchedule(seed=7)
        trace = [(fault, index)
                 for fault in HOST_FAULT_CLASSES
                 for index in range(64) if a.fires(fault, index)]
        assert trace == [(fault, index)
                         for fault in HOST_FAULT_CLASSES
                         for index in range(64)
                         if b.fires(fault, index)]
        assert trace    # a period-3 schedule fires somewhere in 64

    def test_different_seeds_and_faults_sample_independently(self):
        schedule = ChaosSchedule(seed=7)
        other = ChaosSchedule(seed=8)
        fires = {fault: [schedule.fires(fault, i) for i in range(64)]
                 for fault in HOST_FAULT_CLASSES}
        # no two fault classes share a fire sequence under one seed
        sequences = [tuple(v) for v in fires.values()]
        assert len(set(sequences)) == len(sequences)
        assert any(
            fires[f] != [other.fires(f, i) for i in range(64)]
            for f in HOST_FAULT_CLASSES)

    def test_period_one_always_fires(self):
        schedule = ChaosSchedule(seed=0, period=1)
        assert all(schedule.fires("enospc", i) for i in range(16))

    def test_unscheduled_fault_never_fires(self):
        schedule = ChaosSchedule(seed=0, faults=("enospc",), period=1)
        assert not schedule.fires("eio", 0)
        assert not schedule.fires("worker_kill", 0)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown host fault"):
            ChaosSchedule(seed=0, faults=("disk_melt",))
        with pytest.raises(ValueError, match="period"):
            ChaosSchedule(seed=0, period=0)
        with pytest.raises(ValueError, match="max_injections"):
            ChaosSchedule(seed=0, max_injections=-1)

    def test_to_config_is_flat_strings_and_numbers(self):
        config = ChaosSchedule(seed=3).to_config()
        assert all(isinstance(v, (str, int, float))
                   for v in config.values())
        assert config["faults"] == ",".join(HOST_FAULT_CLASSES)


# ---------------------------------------------------------------------------
# the injector: budget, counters, the hostio seam
# ---------------------------------------------------------------------------

class TestHostFaultInjector:
    def test_budget_bounds_firings_per_class(self):
        injector = HostFaultInjector(
            ChaosSchedule(seed=0, faults=("enospc",), period=1,
                          max_injections=2))
        fired = [injector.fire("enospc") is not None for _ in range(8)]
        assert fired == [True, True] + [False] * 6
        assert injector.counts() == {"enospc": 2}
        assert injector.exhausted()

    def test_opportunity_counter_spans_budget_exhaustion(self):
        # indices keep advancing after the budget is spent — the
        # monotonic counter is what makes resumes replayable
        injector = HostFaultInjector(
            ChaosSchedule(seed=0, faults=("eio",), period=1,
                          max_injections=1))
        injector.fire("eio")
        injector.fire("eio")
        assert injector._indices["eio"] == 2
        assert injector.counts() == {"eio": 1}

    def test_counts_are_shape_stable(self):
        injector = HostFaultInjector(ChaosSchedule(seed=0))
        assert set(injector.counts()) == set(HOST_FAULT_CLASSES)
        assert all(v == 0 for v in injector.counts().values())

    def test_injections_record_op_and_index(self):
        injector = HostFaultInjector(
            ChaosSchedule(seed=0, faults=("enospc",), period=1))
        injection = injector.fire("enospc", op="manifest",
                                  detail="/ckpt/manifest.json")
        assert (injection.fault, injection.op, injection.index) \
            == ("enospc", "manifest", 0)
        assert injector.injections == [injection]

    def test_before_write_raises_typed_os_errors(self, tmp_path):
        import errno
        injector = HostFaultInjector(
            ChaosSchedule(seed=0, faults=("enospc", "eio"), period=1,
                          max_injections=1))
        path = str(tmp_path / "doc.json")
        with inject_faults(injector):
            with pytest.raises(InjectedIOFault) as info:
                atomic_write_json(path, {"x": 1}, op="manifest")
        assert isinstance(info.value, OSError)
        assert info.value.errno == errno.ENOSPC
        assert not os.path.exists(path)
        # second write draws the EIO injection
        with inject_faults(injector):
            with pytest.raises(InjectedIOFault) as info:
                atomic_write_json(path, {"x": 1}, op="manifest")
        assert info.value.errno == errno.EIO

    def test_torn_write_leaves_truncated_tmp_and_raises(self, tmp_path):
        injector = HostFaultInjector(
            ChaosSchedule(seed=0, faults=("torn_write",), period=1,
                          max_injections=1))
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"x": 1})
        with inject_faults(injector):
            with pytest.raises(InjectedCrash):
                atomic_write_json(path, {"x": 2})
        # a torn write is a crash, not an absorbable IO error
        assert not isinstance(InjectedCrash("x"), OSError)
        # destination untouched, truncated debris left behind
        with open(path) as handle:
            assert json.load(handle) == {"x": 1}
        tmp = path + TMP_SUFFIX
        assert os.path.exists(tmp)
        with open(tmp) as handle:
            with pytest.raises(ValueError):
                json.load(handle)
        assert sweep_stale_tmp(str(tmp_path)) == 1
        assert not os.path.exists(tmp)

    def test_stale_tmp_debris_is_swept_on_next_open(self, tmp_path):
        injector = HostFaultInjector(
            ChaosSchedule(seed=0, faults=("stale_tmp",), period=1,
                          max_injections=1))
        path = str(tmp_path / "doc.json")
        with inject_faults(injector):
            atomic_write_json(path, {"x": 1})
        debris = [name for name in os.listdir(tmp_path)
                  if name.endswith(TMP_SUFFIX)]
        assert len(debris) == 1
        assert sweep_stale_tmp(str(tmp_path)) == 1
        with open(path) as handle:    # the real write still landed
            assert json.load(handle) == {"x": 1}

    def test_corrupt_result_flips_one_bit_in_shard_results_only(
            self, tmp_path):
        injector = HostFaultInjector(
            ChaosSchedule(seed=0, faults=("corrupt_result",), period=1,
                          max_injections=2))
        other = str(tmp_path / "manifest.json")
        with inject_faults(injector):
            atomic_write_json(other, {"x": 1}, op="manifest")
        with open(other) as handle:   # manifest op: not a target
            assert json.load(handle) == {"x": 1}
        target = str(tmp_path / "shard-0001.json")
        with inject_faults(injector):
            atomic_write_json(target, {"x": 1}, op="shard_result")
        with open(target, "rb") as handle:
            data = handle.read()
        clean = (json.dumps({"x": 1}, indent=2, sort_keys=True)
                 + "\n").encode()
        assert data != clean
        assert len(data) == len(clean)
        assert sum(a != b for a, b in zip(data, clean)) == 1


# ---------------------------------------------------------------------------
# checkpoint integrity under corruption
# ---------------------------------------------------------------------------

class TestCheckpointIntegrity:
    def _checkpoint_with_result(self, tmp_path):
        plan = _plan(3, 4, 2)
        checkpoint = Checkpoint(str(tmp_path / "ckpt"))
        checkpoint.open(plan)
        checkpoint.record_result(0, 1, {"value": 42})
        return plan, checkpoint

    def test_result_files_carry_payload_crc(self, tmp_path):
        _, checkpoint = self._checkpoint_with_result(tmp_path)
        with open(checkpoint.result_path(0)) as handle:
            document = json.load(handle)
        assert document["schema"] == "repro.par.shard_result/v2"
        assert document["crc32"] == crc32_of_json({"value": 42})
        assert checkpoint.load_result(0) == {"value": 42}

    def test_tampered_result_demotes_to_pending_on_open(self, tmp_path):
        plan, checkpoint = self._checkpoint_with_result(tmp_path)
        path = checkpoint.result_path(0)
        with open(path) as handle:
            text = handle.read()
        # flip the payload without breaking the JSON: parses fine,
        # fails the CRC — the silent-rot case only the checksum catches
        with open(path, "w") as handle:
            handle.write(text.replace('"value": 42', '"value": 43'))
        with pytest.raises(ValueError, match="checksum"):
            checkpoint.load_result(0)
        resumed = Checkpoint(checkpoint.directory)
        assert resumed.open(plan) == set()   # demoted, will re-run
        assert resumed.statuses()[0] == "pending"

    def test_legacy_v1_results_still_restore(self, tmp_path):
        plan, checkpoint = self._checkpoint_with_result(tmp_path)
        with open(checkpoint.result_path(0)) as handle:
            document = json.load(handle)
        document["schema"] = "repro.par.shard_result/v1"
        del document["crc32"]
        atomic_write_json(checkpoint.result_path(0), document)
        resumed = Checkpoint(checkpoint.directory)
        assert resumed.open(plan) == {0}


# ---------------------------------------------------------------------------
# quarantine: dead-lettered poison shards survive resume
# ---------------------------------------------------------------------------

class TestQuarantine:
    def test_poison_shard_quarantines_without_failing_the_run(self):
        plan = _plan(2, 8, 4, mode="raise", fail_shards=[1])
        outcome = run_plan(plan, SELFTEST, jobs=1, retries=1,
                           backoff_base=0.0, quarantine=True)
        assert outcome.ok               # quarantine != failure
        assert not outcome.failures
        assert [q.shard_id for q in outcome.quarantined] == [1]
        assert outcome.quarantined[0].reason == "error"
        assert outcome.quarantined[0].attempts == 2
        assert sorted(outcome.results) == [0, 2, 3]

    def test_quarantine_survives_resume_without_rerun(self, tmp_path):
        plan = _plan(2, 8, 4, mode="raise", fail_shards=[1])
        first = run_plan(plan, SELFTEST, jobs=1, retries=1,
                         backoff_base=0.0, quarantine=True,
                         checkpoint=Checkpoint(str(tmp_path / "c")))
        assert [q.shard_id for q in first.quarantined] == [1]
        checkpoint = Checkpoint(str(tmp_path / "c"))
        assert checkpoint.quarantined()[0]["shard_id"] == 1
        assert os.path.exists(checkpoint.quarantine_path(1))
        plan_again = _plan(2, 8, 4, mode="raise", fail_shards=[1])
        second = run_plan(plan_again, SELFTEST, jobs=1, retries=1,
                          backoff_base=0.0, quarantine=True,
                          checkpoint=Checkpoint(str(tmp_path / "c")))
        # the poison shard is a settled verdict: restored, not re-run
        assert second.executed == []
        assert [q.shard_id for q in second.quarantined] == [1]
        assert sorted(second.restored) == [0, 2, 3]

    def test_without_quarantine_failures_still_sink_the_run(self):
        plan = _plan(2, 8, 4, mode="raise", fail_shards=[1])
        outcome = run_plan(plan, SELFTEST, jobs=1, retries=1,
                           backoff_base=0.0)
        assert not outcome.ok
        assert [f.shard_id for f in outcome.failures] == [1]
        assert not outcome.quarantined


# ---------------------------------------------------------------------------
# chaos cells and the campaign gate
# ---------------------------------------------------------------------------

class TestChaosCell:
    def test_poison_cell_converges_with_no_faults(self, tmp_path):
        schedule = ChaosSchedule(seed=1, faults=(), max_injections=0)
        outcome = run_chaos_cell(
            "selftest", 5, work_dir=str(tmp_path), schedule=schedule,
            jobs=1)
        assert outcome.verdict == "converged"
        assert outcome.rounds == 1
        assert outcome.crashes == 0
        # the poison shard quarantines in reference AND chaos runs —
        # matching dead-letter sets are convergence, not divergence
        assert [q["shard_id"] for q in outcome.quarantined] \
            == [POISON_SHARD]

    def test_cell_self_heals_under_io_and_crash_faults(self, tmp_path):
        schedule = ChaosSchedule(
            seed=9, faults=("enospc", "eio", "torn_write",
                            "stale_tmp", "corrupt_result"),
            period=2, max_injections=1)
        outcome = run_chaos_cell(
            "selftest", 11, work_dir=str(tmp_path), schedule=schedule,
            jobs=1)
        assert outcome.verdict in ("converged", "quarantined")
        assert outcome.verdict != "diverged"
        assert sum(outcome.injections.values()) > 0
        assert outcome.rounds >= 1

    def test_worker_kill_crashes_then_resumes(self, tmp_path):
        schedule = ChaosSchedule(seed=0, faults=("worker_kill",),
                                 period=1, max_injections=2)
        outcome = run_chaos_cell(
            "selftest", 4, work_dir=str(tmp_path), schedule=schedule,
            jobs=1)
        # inline worker kills abort the run typed; the resume loop
        # drains the budget and a clean round completes
        assert outcome.crashes == 2
        assert outcome.rounds == 3
        assert outcome.injections["worker_kill"] == 2
        assert outcome.verdict in ("converged", "quarantined")

    def test_cell_metrics_are_numbers_only(self, tmp_path):
        schedule = ChaosSchedule(seed=1, faults=(), max_injections=0)
        outcome = run_chaos_cell(
            "selftest", 5, work_dir=str(tmp_path), schedule=schedule,
            jobs=1)
        def leaves(node):
            if isinstance(node, dict):
                for value in node.values():
                    yield from leaves(value)
            else:
                yield node
        assert all(isinstance(leaf, (int, float)) and
                   not isinstance(leaf, bool)
                   for leaf in leaves(outcome.metrics()))


class TestChaosMatrix:
    def _matrix(self, tmp_path):
        return run_chaos_campaign(
            seed=0, kinds=(), faults=("enospc", "torn_write",
                                      "worker_kill"),
            period=2, max_injections=1, jobs=1,
            work_dir=str(tmp_path / "work"))

    def test_campaign_document_passes_gate_and_validates(
            self, tmp_path):
        from repro.obs import validate_document
        doc = self._matrix(tmp_path)
        assert validate_document(doc) == []
        assert check_matrix(doc) == []
        cells = doc["metrics"]["cells"]
        assert set(cells) == {"selftest-poison"}
        assert doc["metrics"]["totals"]["diverged"] == 0

    def test_gate_flags_divergence_and_bad_totals(self, tmp_path):
        doc = self._matrix(tmp_path)
        row = doc["metrics"]["cells"]["selftest-poison"]
        for verdict in CELL_VERDICTS:
            row[verdict] = 0
        row["diverged"] = 1
        row["diff_lines"] = 3
        violations = check_matrix(doc)
        assert any("DIVERGED" in v for v in violations)
        assert any("totals" in v for v in violations)

    def test_gate_flags_missing_and_multiple_verdicts(self, tmp_path):
        doc = self._matrix(tmp_path)
        row = doc["metrics"]["cells"]["selftest-poison"]
        saved = {v: row[v] for v in CELL_VERDICTS}
        for verdict in CELL_VERDICTS:
            row[verdict] = 0
        assert any("no verdict" in v for v in check_matrix(doc))
        for verdict in CELL_VERDICTS:
            row[verdict] = 1
        assert any("multiple verdicts" in v for v in check_matrix(doc))
        row.update(saved)

    def test_cli_gate_and_artifact(self, tmp_path, capsys):
        from repro.resil.chaos import main
        out = str(tmp_path / "chaos-matrix.json")
        code = main(["--kinds", "", "--quiet", "--check",
                     "--faults", "enospc,torn_write",
                     "--work-dir", str(tmp_path / "work"),
                     "--out", out])
        assert code == 0
        printed = capsys.readouterr().out
        assert "gate passed" in printed
        with open(out) as handle:
            doc = json.load(handle)
        assert doc["name"] == "chaos"
        assert check_matrix(doc) == []

    def test_error_taxonomy(self):
        # the crash/absorb split the whole harness leans on
        assert issubclass(InjectedIOFault, OSError)
        assert issubclass(InjectedIOFault, InjectedFault)
        assert issubclass(InjectedCrash, InjectedFault)
        assert not issubclass(InjectedCrash, OSError)
