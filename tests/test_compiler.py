"""Tests for layout-table generation, escape analysis, and codegen."""

import pytest

from repro.compiler import CompilerOptions, Op, compile_source
from repro.compiler.layout_gen import (
    LayoutTableRegistry, build_layout_table, member_delta, subtree_entries,
)
from repro.compiler.safety import analyze_escapes
from repro.errors import CompileError
from repro.lang import analyze, parse
from repro.lang.ctypes import ArrayType, INT, StructType


def figure9_struct():
    nested = StructType("NestedTy").define([("v3", INT), ("v4", INT)])
    return StructType("S").define([
        ("v1", INT), ("array", ArrayType(nested, 2)), ("v5", INT)]), nested


class TestLayoutGen:
    def test_figure9_flattening(self):
        s, _nested = figure9_struct()
        table = build_layout_table(s, "S", 64)
        assert len(table) == 6
        # Exactly the paper's Figure 9b.
        rows = [(e.parent, e.base, e.bound, e.size) for e in table.entries]
        assert rows == [(0, 0, 24, 24), (0, 0, 4, 4), (0, 4, 20, 8),
                        (2, 0, 4, 4), (2, 4, 8, 4), (0, 20, 24, 4)]

    def test_member_deltas(self):
        s, nested = figure9_struct()
        assert member_delta(s, "v1") == 1
        assert member_delta(s, "array") == 2
        assert member_delta(s, "v5") == 5
        assert member_delta(nested, "v3") == 1
        assert member_delta(nested, "v4") == 2

    def test_subtree_entries(self):
        s, nested = figure9_struct()
        assert subtree_entries(INT) == 1
        assert subtree_entries(nested) == 3
        assert subtree_entries(s) == 6

    def test_scalar_types_get_no_table(self):
        assert build_layout_table(INT, "int", 64) is None
        assert build_layout_table(ArrayType(INT, 8), "arr", 64) is None

    def test_top_level_struct_array(self):
        s, _ = figure9_struct()
        table = build_layout_table(ArrayType(s, 4), "S_x4", 64)
        # entry 0 = whole array object, entry 1 = the array, then S's tree
        assert table.entries[0].size == 96
        assert table.entries[1].is_array
        assert table.entries[1].size == 24
        assert len(table) == 7

    def test_entry_budget_respected(self):
        s, _ = figure9_struct()
        assert build_layout_table(s, "S", 4) is None

    def test_registry_interns(self):
        s, _ = figure9_struct()
        registry = LayoutTableRegistry(64)
        first = registry.symbol_for(s)
        second = registry.symbol_for(s)
        assert first == second and first in registry.tables
        assert registry.symbol_for(INT) == ""


class TestEscapeAnalysis:
    def _escapes(self, source):
        program = analyze(parse(source))
        return analyze_escapes(program)

    def test_address_of_local(self):
        info = self._escapes(
            "void use(int *p); "
            "int f(void) { int x; use(&x); return x; }")
        assert info.local_escapes("f", "x")

    def test_direct_access_does_not_escape(self):
        info = self._escapes(
            "int f(void) { int buf[4]; int i; int s = 0;"
            " for (i = 0; i < 4; i++) { buf[i] = i; s += buf[i]; }"
            " return s; }")
        assert not info.local_escapes("f", "buf")

    def test_array_decay_escapes(self):
        info = self._escapes(
            "long g(char *p) { return strlen(p); }"
            "int f(void) { char buf[8]; return (int)g(buf); }")
        assert info.local_escapes("f", "buf")

    def test_global_escape(self):
        info = self._escapes(
            "int g_table[100]; int *g_p;"
            "int f(void) { g_p = &g_table[3]; return 0; }")
        assert "g_table" in info.globals_escaping
        assert "g_p" not in info.globals_escaping  # assigned, not escaped

    def test_member_path_roots(self):
        info = self._escapes(
            "struct S { int a[4]; int b; };"
            "int f(void) { struct S s; int *p = &s.a[1]; return *p; }")
        assert info.local_escapes("f", "s")


def _ops(source, options, function="main"):
    program = compile_source(source, options)
    return [ins.op for ins in program.functions[function].instrs]


class TestCodegen:
    SRC_LIST = """
    struct Node { int v; struct Node *next; };
    int main(void) {
        struct Node *n = (struct Node*)malloc(sizeof(struct Node));
        n->v = 1;
        n->next = NULL;
        struct Node *m = n->next;
        return n->v;
    }
    """

    def test_baseline_has_no_ifp_ops(self):
        ops = _ops(self.SRC_LIST, CompilerOptions.baseline())
        assert all(op < Op.PROMOTE for op in ops)

    def test_instrumented_promotes_pointer_loads(self):
        ops = _ops(self.SRC_LIST, CompilerOptions.wrapped())
        assert Op.PROMOTE in ops
        assert Op.IFPADD in ops

    def test_pointer_store_demotes(self):
        source = ("struct Node { int v; struct Node *next; };"
                  "int main(void) {"
                  "  struct Node *n = (struct Node*)malloc(16);"
                  "  n->next = n;"       # stores a bounds-carrying pointer
                  "  return 0; }")
        ops = _ops(source, CompilerOptions.wrapped())
        assert Op.IFPEXTRACT in ops

    def test_registered_local_sequence(self):
        source = ("void use(int *p);"
                  "int main(void) { int x = 1; use(&x); return x; }")
        program = compile_source(source, CompilerOptions.wrapped())
        ops = [i.op for i in program.functions["main"].instrs]
        assert Op.IFPMAC in ops and Op.IFPMD in ops and Op.IFPBND in ops

    def test_baseline_keeps_locals_in_registers(self):
        source = "int main(void) { int x = 1; int y = x + 2; return y; }"
        program = compile_source(source, CompilerOptions.baseline())
        assert program.functions["main"].frame_size == 0

    def test_static_array_index_gets_ifpbnd(self):
        source = ("int main(void) { int buf[10]; int i; int s = 0;"
                  " for (i = 0; i < 10; i++) { buf[i] = i; }"
                  " for (i = 0; i < 10; i++) { s += buf[i]; }"
                  " return s; }")
        ops = _ops(source, CompilerOptions.wrapped())
        assert Op.IFPBND in ops
        assert Op.PROMOTE not in ops  # everything statically known

    def test_subobject_pointer_gets_ifpidx(self):
        source = ("struct S { int a; int b[4]; };"
                  "int *g;"
                  "int main(void) { struct S s; g = s.b; return 0; }")
        ops = _ops(source, CompilerOptions.wrapped())
        assert Op.IFPIDX in ops

    def test_malloc_rewritten(self):
        program = compile_source(self.SRC_LIST, CompilerOptions.wrapped())
        names = [i.name for i in program.functions["main"].instrs
                 if i.op == Op.CALL]
        assert "__ifp_malloc" in names
        baseline = compile_source(self.SRC_LIST, CompilerOptions.baseline())
        base_names = [i.name for i in baseline.functions["main"].instrs
                      if i.op == Op.CALL]
        assert "malloc" in base_names

    def test_layout_table_emitted_for_typed_malloc(self):
        program = compile_source(self.SRC_LIST, CompilerOptions.wrapped())
        assert any(s.startswith("__IFP_LT_Node")
                   for s in program.layout_tables)

    def test_wrapper_alloc_gets_no_layout_table(self):
        source = """
        struct T { int a; int b; };
        void *wrap(unsigned long n) { return malloc(n); }
        int main(void) {
            struct T *t = (struct T*)wrap(sizeof(struct T));
            t->a = 1;
            return t->a;
        }
        """
        program = compile_source(source, CompilerOptions.wrapped())
        assert not any("__IFP_LT_T" in s for s in program.layout_tables)

    def test_getptr_for_escaping_global(self):
        source = ("int g_buf[200]; int *p;"
                  "int main(void) { p = &g_buf[5]; return *p; }")
        program = compile_source(source, CompilerOptions.wrapped())
        names = [i.name for i in program.functions["main"].instrs
                 if i.op == Op.CALL]
        assert "__ifp_getptr_g_buf" in names

    def test_dump_is_readable(self):
        program = compile_source(self.SRC_LIST, CompilerOptions.wrapped())
        text = program.functions["main"].dump()
        assert "promote" in text and "call" in text

    def test_break_outside_loop_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int main(void) { break; return 0; }",
                           CompilerOptions.baseline())

    def test_no_promote_option_still_emits_promotes(self):
        # The no-promote build has the same instruction stream; only the
        # machine treats promote as a NOP.
        ops = _ops(self.SRC_LIST, CompilerOptions.wrapped(no_promote=True))
        assert Op.PROMOTE in ops


class TestExplicitChecks:
    def test_emits_ifpchk(self):
        source = ("int main(void) {"
                  " int *p = (int*)malloc(40);"
                  " p[3] = 1;"
                  " free(p);"
                  " return 0; }")
        explicit = CompilerOptions.wrapped(explicit_checks=True)
        ops = _ops(source, explicit)
        assert Op.IFPCHK in ops
        implicit_ops = _ops(source, CompilerOptions.wrapped())
        assert Op.IFPCHK not in implicit_ops
        assert len(ops) > len(implicit_ops)

    def test_explicit_checks_still_detect(self):
        from tests.conftest import compile_and_run
        source = ("int main(void) {"
                  " int *p = (int*)malloc(40);"
                  " p[10] = 1;"
                  " free(p);"
                  " return 0; }")
        result = compile_and_run(
            source, CompilerOptions.wrapped(explicit_checks=True))
        assert result.detected_violation
