"""Tests for the lock-and-key temporal safety subsystem (repro.temporal)."""

import json
import pickle
from dataclasses import replace

import pytest

from repro.compiler import CompilerOptions, compile_source
from repro.errors import ReproError, TemporalViolation
from repro.ifp.config import DEFAULT_CONFIG
from repro.ifp.tag import temporal_key_of, with_temporal_key
from repro.temporal import TemporalRegistry, check_free, temporal_violation
from repro.temporal.registry import GENERATION, KEY, LIVE, SIZE
from repro.vm import Machine, MachineConfig


def _run(source, options=None, temporal="check", engine="auto"):
    program = compile_source(source, options or CompilerOptions.wrapped())
    machine = Machine(program, MachineConfig(temporal=temporal,
                                             engine=engine))
    return machine, machine.run()


# ---------------------------------------------------------------------------
# registry unit behavior
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_mint_fresh_base_starts_at_generation_one(self):
        registry = TemporalRegistry(key_bits=2)
        key = registry.mint(0x1000, 64)
        assert key == 1
        entry = registry.probe(0x1000)
        assert entry[KEY] == 1 and entry[LIVE]
        assert entry[SIZE] == 64 and entry[GENERATION] == 1

    def test_release_kills_lock_and_bumps_generation(self):
        registry = TemporalRegistry(key_bits=2)
        registry.mint(0x1000, 64)
        entry = registry.release(0x1000)
        assert entry is not None
        assert not entry[LIVE] and entry[GENERATION] == 2
        assert registry.release(0x9999) is None  # untracked

    def test_reused_base_mints_a_fresh_key(self):
        registry = TemporalRegistry(key_bits=2)
        first = registry.mint(0x1000, 64)
        registry.release(0x1000)
        second = registry.mint(0x1000, 32)
        assert second != first
        assert registry.probe(0x1000)[SIZE] == 32

    def test_keys_cycle_through_k_bit_space_never_zero(self):
        registry = TemporalRegistry(key_bits=2)
        keys = []
        for _ in range(7):
            keys.append(registry.mint(0x2000, 8))
            registry.release(0x2000)
        assert keys == [1, 2, 3, 1, 2, 3, 1]  # 2^k - 1 = 3 keys, no 0
        assert 0 not in keys

    def test_version_bumps_on_every_architectural_change(self):
        registry = TemporalRegistry()
        v0 = registry.version
        registry.mint(0x3000, 16)
        v1 = registry.version
        registry.release(0x3000)
        v2 = registry.version
        registry.mint(0x3000, 16)
        registry.corrupt(0x3000)
        v3 = registry.version
        assert v0 < v1 < v2 < v3

    def test_corrupt_rekeys_live_entry(self):
        registry = TemporalRegistry(key_bits=2)
        key = registry.mint(0x4000, 8)
        assert registry.corrupt(0x4000) is True
        entry = registry.probe(0x4000)
        assert entry[LIVE] and entry[KEY] != key
        assert registry.corrupt(0xBAD0) is False  # untracked

    def test_any_live_base_finds_only_live_locks(self):
        registry = TemporalRegistry()
        assert registry.any_live_base() is None
        registry.mint(0x5000, 8)
        registry.mint(0x6000, 8)
        registry.release(0x5000)
        assert registry.any_live_base() == 0x6000
        registry.release(0x6000)
        assert registry.any_live_base() is None

    def test_sharding_spreads_consecutive_allocations(self):
        registry = TemporalRegistry(shard_count=16)
        for i in range(16):
            registry.mint(0x1000 + 16 * i, 16)
        populated = sum(1 for shard in registry._shards if shard)
        assert populated == 16  # one base per shard at 16-byte stride

    def test_stats_and_validation(self):
        registry = TemporalRegistry(key_bits=2, shard_count=8)
        registry.mint(0x1000, 8)
        registry.mint(0x2000, 8)
        registry.release(0x1000)
        stats = registry.stats()
        assert stats["mints"] == 2 and stats["releases"] == 1
        assert stats["live"] == 1 and stats["tracked_bases"] == 2
        with pytest.raises(ValueError):
            TemporalRegistry(key_bits=0)
        with pytest.raises(ValueError):
            TemporalRegistry(shard_count=12)  # not a power of two


# ---------------------------------------------------------------------------
# tag-bit key accessors
# ---------------------------------------------------------------------------

#: the config an armed machine runs with (DEFAULT_CONFIG reserves no
#: key bits; Machine swaps in k=2 when the temporal policy is on)
ARMED_CONFIG = replace(DEFAULT_CONFIG, temporal_key_bits=2)


class TestTagKeys:
    @pytest.mark.parametrize("selector", [1, 2, 3])
    def test_key_roundtrips_through_packed_pointer(self, selector):
        pointer = (selector << 60) | 0x2000_0000
        assert temporal_key_of(pointer, ARMED_CONFIG) == 0
        for key in (1, 2, 3):
            stamped = with_temporal_key(pointer, key, ARMED_CONFIG)
            assert temporal_key_of(stamped, ARMED_CONFIG) == key
            # the address bits survive the stamping
            assert stamped & 0xFFFF_FFFF_FFFF == 0x2000_0000

    def test_legacy_pointer_carries_no_key(self):
        assert temporal_key_of(0x2000_0000, ARMED_CONFIG) == 0
        with pytest.raises(ValueError):
            with_temporal_key(0x2000_0000, 1, ARMED_CONFIG)

    def test_disarmed_config_has_no_key_bits(self):
        pointer = (1 << 60) | 0x2000_0000
        assert temporal_key_of(pointer, DEFAULT_CONFIG) == 0
        with pytest.raises(ValueError):
            with_temporal_key(pointer, 1, DEFAULT_CONFIG)

    def test_key_wider_than_field_rejected(self):
        pointer = (1 << 60) | 0x2000_0000
        with pytest.raises(ValueError):
            with_temporal_key(pointer, 1 << ARMED_CONFIG.temporal_key_bits,
                              ARMED_CONFIG)


# ---------------------------------------------------------------------------
# free-path lock checks
# ---------------------------------------------------------------------------

class TestCheckFree:
    def test_untracked_base_defers_to_structural_checks(self):
        registry = TemporalRegistry()
        assert check_free(registry, 0x99, 0x99, 1, "freelist") is None

    def test_key_zero_is_the_untracked_sentinel(self):
        registry = TemporalRegistry()
        registry.mint(0x1000, 8)
        assert check_free(registry, 0x1000, 0x1000, 0, "freelist") is None

    def test_matching_key_passes(self):
        registry = TemporalRegistry()
        key = registry.mint(0x1000, 8)
        entry = check_free(registry, 0x1000, 0x1000, key, "freelist")
        assert entry is registry.probe(0x1000)

    def test_double_free_raises_typed_violation(self):
        registry = TemporalRegistry()
        key = registry.mint(0x1000, 8)
        registry.release(0x1000)
        with pytest.raises(TemporalViolation) as excinfo:
            check_free(registry, 0x1000, 0x1000, key, "freelist")
        assert excinfo.value.kind == "double_free"
        assert excinfo.value.origin == "free"

    def test_stale_key_free_raises_typed_violation(self):
        registry = TemporalRegistry()
        stale = registry.mint(0x1000, 8)
        registry.release(0x1000)
        registry.mint(0x1000, 8)  # base reused by a new allocation
        with pytest.raises(TemporalViolation) as excinfo:
            check_free(registry, 0x1000, 0x1000, stale, "buddy")
        assert excinfo.value.kind == "stale_free"

    def test_deref_violation_anatomy(self):
        registry = TemporalRegistry()
        stale = registry.mint(0x1000, 8)
        registry.release(0x1000)
        trap = temporal_violation("load", 0xDEAD, 0x1000, stale,
                                  registry.probe(0x1000))
        assert trap.kind == "freed_lock" and trap.lock == 0
        registry.mint(0x1000, 8)
        trap = temporal_violation("store", 0xDEAD, 0x1000, stale,
                                  registry.probe(0x1000))
        assert trap.kind == "stale_key" and trap.lock != stale


# ---------------------------------------------------------------------------
# TemporalViolation serialization (pickle + to_dict round trips)
# ---------------------------------------------------------------------------

class TestViolationSerialization:
    def _trap(self):
        return TemporalViolation(
            "temporal violation at load: pointer key 1 vs lock",
            pointer=0x1110000020000240, address=0x20000240,
            key=1, lock=2, kind="stale_key", origin="load",
            pc=("main", 12))

    def test_pickle_roundtrip_via_reduce(self):
        trap = self._trap()
        clone = pickle.loads(pickle.dumps(trap))
        assert type(clone) is TemporalViolation
        assert str(clone) == str(trap)
        assert clone.pointer == trap.pointer
        assert clone.address == trap.address
        assert (clone.key, clone.lock) == (1, 2)
        assert (clone.kind, clone.origin) == ("stale_key", "load")
        assert clone.pc == ("main", 12)

    def test_to_dict_roundtrip(self):
        trap = self._trap()
        record = json.loads(json.dumps(trap.to_dict()))
        assert record["type"] == "TemporalViolation"
        rebuilt = ReproError.from_dict(record)
        assert type(rebuilt) is TemporalViolation
        assert rebuilt.kind == "stale_key" and rebuilt.key == 1


# ---------------------------------------------------------------------------
# allocator reuse paths (guest-level, end to end)
# ---------------------------------------------------------------------------

REUSE_SOURCE = """
int g_sink = 0;
int main(void) {
    int *a = (int*)malloc(10 * sizeof(int));
    a[0] = 1;
    free(a);
    int *b = (int*)malloc(10 * sizeof(int));
    b[0] = 2;
    g_sink = a[0];
    printf("sink %d\\n", g_sink);
    free(b);
    return 0;
}
"""

REALLOC_SOURCE = """
int g_sink = 0;
int main(void) {
    int *a = (int*)malloc(10 * sizeof(int));
    a[0] = 5;
    int *old = a;
    a = (int *)realloc(a, 20 * sizeof(int));
    g_sink = old[0];
    printf("sink %d\\n", g_sink);
    free(a);
    return 0;
}
"""

CLEAN_REUSE_SOURCE = """
int g_sink = 0;
int main(void) {
    int i;
    for (i = 0; i < 4; i++) {
        int *p = (int*)malloc(10 * sizeof(int));
        p[0] = i;
        g_sink += p[0];
        free(p);
    }
    printf("sink %d\\n", g_sink);
    return 0;
}
"""


class TestAllocatorReuse:
    @pytest.mark.parametrize("options", [
        CompilerOptions.wrapped(), CompilerOptions.subheap()])
    def test_stale_pointer_into_reused_chunk_traps(self, options):
        machine, result = _run(REUSE_SOURCE, options, temporal="check")
        assert isinstance(result.trap, TemporalViolation)
        assert result.trap.kind == "stale_key"
        assert result.trap.origin == "load"
        # the reused base was re-minted with a fresh key
        assert result.trap.lock != result.trap.key

    def test_quarantine_turns_reuse_into_freed_lock(self):
        machine, result = _run(REUSE_SOURCE, CompilerOptions.wrapped(),
                               temporal="quarantine")
        assert isinstance(result.trap, TemporalViolation)
        # no reuse under quarantine: the lock is dead, not re-keyed
        assert result.trap.kind == "freed_lock"
        assert machine.freelist.quarantine
        assert machine.freelist.quarantined_bytes > 0

    def test_stale_pre_realloc_pointer_traps(self):
        _machine, result = _run(REALLOC_SOURCE, temporal="check")
        assert isinstance(result.trap, TemporalViolation)
        assert result.trap.kind in ("stale_key", "freed_lock")

    def test_wellbehaved_reuse_is_transparent(self):
        for temporal in ("off", "check", "quarantine"):
            _machine, result = _run(CLEAN_REUSE_SOURCE,
                                    temporal=temporal)
            assert result.trap is None, temporal
            assert result.output == "sink 6\n"

    def test_reuse_mints_fresh_keys_in_registry(self):
        machine, result = _run(CLEAN_REUSE_SOURCE, temporal="check")
        assert result.trap is None
        stats = machine.temporal.stats()
        assert stats["mints"] == 4 and stats["releases"] == 4
        assert stats["live"] == 0

    def test_off_policy_builds_no_registry(self):
        machine, result = _run(CLEAN_REUSE_SOURCE, temporal="off")
        assert machine.temporal is None
        assert result.trap is None

    def test_unknown_policy_rejected(self):
        program = compile_source(CLEAN_REUSE_SOURCE,
                                 CompilerOptions.wrapped())
        with pytest.raises(ReproError):
            Machine(program, MachineConfig(temporal="paranoid"))


# ---------------------------------------------------------------------------
# engine equivalence on the temporal Juliet families
# ---------------------------------------------------------------------------

class TestEngineEquivalence:
    def _observables(self, result):
        trap = result.trap
        return (result.exit_code, result.output,
                (type(trap).__name__, str(trap)) if trap else None)

    @pytest.mark.parametrize("temporal", ["check", "quarantine"])
    def test_reference_and_fastpath_agree(self, temporal):
        from repro.juliet.cases import generate_temporal_cases
        cases = generate_temporal_cases()[:10]
        for case in cases:
            pair = []
            for engine in ("reference", "fastpath"):
                _machine, result = _run(case.source,
                                        temporal=temporal,
                                        engine=engine)
                pair.append(self._observables(result))
            assert pair[0] == pair[1], case.name

    def test_fastpath_temporal_stats_match_reference(self):
        for engine in ("reference", "fastpath"):
            _machine, result = _run(REUSE_SOURCE, temporal="check",
                                    engine=engine)
            assert result.stats.temporal_checks > 0, engine
            assert result.stats.temporal_failures == 1, engine
