"""Tests for the evaluation harness (Tables, Figures, sweep machinery)."""

import pytest

from repro.eval import (
    CONFIG_NAMES, Sweep, build_options, figure10_series, figure11_series,
    figure12_series, format_figure, format_table4, geomean, run_workload,
    table4_rows,
)
from repro.eval.related import (
    TABLE1_ROWS, TABLE2_ROWS, TABLE3_ROWS, format_table1, format_table2,
    format_table3,
)
from repro.workloads import get


@pytest.fixture(scope="module")
def small_sweep():
    """A 3-benchmark sweep shared by the harness tests."""
    sweep = Sweep(scale=1, workloads=[get("treeadd"), get("health"),
                                      get("voronoi")])
    sweep.all_runs()
    return sweep


class TestConfigs:
    def test_all_config_names_build(self):
        for name in CONFIG_NAMES:
            options = build_options(name)
            assert options.instrument == (name != "baseline")

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            build_options("mystery")

    def test_no_promote_flag(self):
        assert build_options("subheap-np").no_promote
        assert not build_options("subheap").no_promote


class TestHarness:
    def test_run_workload(self):
        run = run_workload(get("yacr2"), "wrapped")
        assert run.instructions > 0 and run.cycles >= run.instructions

    def test_sweep_memoises(self, small_sweep):
        first = small_sweep.run(get("treeadd"), "baseline")
        second = small_sweep.run(get("treeadd"), "baseline")
        assert first is second

    def test_outputs_agree(self, small_sweep):
        small_sweep.verify_outputs_agree()


class TestTable4:
    def test_rows(self, small_sweep):
        rows = table4_rows(small_sweep)
        by_name = {r.benchmark: r for r in rows}
        assert by_name["treeadd"].heap_objects > 0
        assert by_name["treeadd"].heap_lt_pct == 0      # wrapper alloc
        assert by_name["treeadd"].subheap_ratio < 1.0   # pool speedup
        assert by_name["health"].heap_lt_pct > 0
        assert 0 < by_name["voronoi"].valid_promote_pct < 100

    def test_format(self, small_sweep):
        text = format_table4(table4_rows(small_sweep))
        assert "treeadd" in text and "subheap" in text


class TestFigures:
    def test_figure10(self, small_sweep):
        series = figure10_series(small_sweep)
        assert set(series) == {"subheap", "wrapped", "subheap-np",
                               "wrapped-np"}
        wrapped = dict(series["wrapped"])
        assert wrapped["health"] > 0    # instrumented costs cycles
        # no-promote must never be slower than the full build
        for name, overhead in series["wrapped-np"]:
            assert overhead <= wrapped[name] + 1e-9

    def test_figure11(self, small_sweep):
        series = figure11_series(small_sweep)
        promote = dict(series["wrapped/promote"])
        assert promote["health"] > 0
        arith = dict(series["wrapped/ifp-arith"])
        assert arith["treeadd"] > 0

    def test_figure12_exclusions(self, small_sweep):
        series = figure12_series(small_sweep, excluded=("voronoi",))
        names = {n for n, _v in series["subheap"]}
        assert "voronoi" not in names

    def test_format_figure(self, small_sweep):
        text = format_figure(figure10_series(small_sweep), "Fig 10")
        assert "geo-mean" in text and "%" in text

    def test_geomean(self):
        assert geomean([]) == 0.0
        assert geomean([0.21, 0.21]) == pytest.approx(0.21)
        assert geomean([-0.5, 1.0]) == pytest.approx(0.0, abs=1e-9)


class TestStaticTables:
    def test_table1_shape(self):
        assert len(TABLE1_ROWS) == 21
        ifp = TABLE1_ROWS[-1]
        assert ifp.defense == "In-Fat Pointer"
        assert ifp.granularity == "Subobject"
        assert ifp.tagged_pointer
        assert ifp.lost_compatibility == "" and ifp.required_feature == ""

    def test_only_ifp_is_tagged_subobject_compatible(self):
        """The paper's headline claim, checkable from Table 1 itself:
        In-Fat Pointer is the first *hardware* tagged-pointer scheme with
        subobject granularity and no compatibility loss (EffectiveSan is
        the software-sanitizer exception the paper discusses)."""
        winners = [r for r in TABLE1_ROWS
                   if r.granularity == "Subobject"
                   and not r.lost_compatibility and not r.required_feature
                   and r.tagged_pointer]
        assert {r.defense for r in winners} == {"In-Fat Pointer",
                                                "EffectiveSan"}
        hardware = [r.defense for r in winners if r.hardware]
        assert hardware == ["In-Fat Pointer"]

    def test_table2_matches_implementation(self):
        from repro.ifp import DEFAULT_CONFIG
        rows = {r.scheme: r for r in TABLE2_ROWS}
        local = rows["Local Offset Scheme"]
        assert local.limits_object_size \
            and DEFAULT_CONFIG.local_max_object == 1008
        table = rows["Global Table Scheme"]
        assert table.limits_object_count \
            and DEFAULT_CONFIG.global_table_rows == 4096
        subheap = rows["Subheap Scheme"]
        assert subheap.constrains_base_address  # power-of-two blocks

    def test_table3_matches_isa(self):
        from repro.compiler.ir import MNEMONICS
        implemented = set(MNEMONICS.values())
        for row in TABLE3_ROWS:
            assert row.mnemonic in implemented, row.mnemonic

    def test_formatters(self):
        assert "In-Fat Pointer" in format_table1()
        assert "Subheap" in format_table2()
        assert "promote" in format_table3()
