"""End-to-end spatial memory-safety detection tests.

These are the behavioural heart of the reproduction: every class of
violation the paper's design detects must trap, and the matching
in-bounds variants must run clean under every configuration.
"""

import pytest

from repro.compiler import CompilerOptions
from tests.conftest import compile_and_run, run_all_configs

WRAPPED = CompilerOptions.wrapped()
SUBHEAP = CompilerOptions.subheap()


def assert_detected(source, options=WRAPPED):
    result = compile_and_run(source, options)
    assert result.detected_violation, \
        f"violation not detected ({options.allocator})"
    return result


def assert_clean(source, options=WRAPPED):
    result = compile_and_run(source, options)
    assert result.ok, f"false positive: {result.trap}"
    return result


class TestHeapOverflow:
    BAD = """
    int main(void) {
        char *p = (char*)malloc(16);
        int i;
        for (i = 0; i <= 16; i++) { p[i] = 'x'; }
        free(p);
        return 0;
    }
    """
    GOOD = BAD.replace("i <= 16", "i < 16")

    def test_detected_wrapped(self):
        assert_detected(self.BAD, WRAPPED)

    def test_detected_subheap(self):
        assert_detected(self.BAD, SUBHEAP)

    def test_good_clean_everywhere(self):
        for config, result in run_all_configs(self.GOOD).items():
            assert result.ok, config

    def test_baseline_is_silent(self):
        result = compile_and_run(self.BAD, CompilerOptions.baseline())
        assert result.ok  # no protection without instrumentation

    def test_no_promote_build_misses_heap_reload_overflow(self):
        # With promote as a NOP, a reloaded pointer has no bounds: the
        # no-promote configuration is a performance probe, not a defense.
        source = """
        char *g;
        int main(void) {
            g = (char*)malloc(16);
            char *p = g;
            p[20] = 1;
            return 0;
        }
        """
        result = compile_and_run(source, WRAPPED.with_no_promote())
        assert result.ok


class TestHeapUnderwrite:
    BAD = """
    int main(void) {
        int *p = (int*)malloc(40);
        int i;
        for (i = 9; i >= -1; i--) { p[i] = i; }
        free(p);
        return 0;
    }
    """

    def test_detected_both_allocators(self):
        assert_detected(self.BAD, WRAPPED)
        assert_detected(self.BAD, SUBHEAP)


class TestHeapOverread:
    BAD = """
    int g_sink;
    int main(void) {
        int *p = (int*)malloc(40);
        g_sink = p[10];
        free(p);
        return 0;
    }
    """

    def test_detected(self):
        assert_detected(self.BAD, WRAPPED)
        assert_detected(self.BAD, SUBHEAP)


class TestStackOverflow:
    def test_direct_index_overflow(self):
        assert_detected("""
        int main(void) {
            int buf[8];
            int i;
            for (i = 0; i < 9; i++) { buf[i] = i; }
            return buf[0];
        }
        """)

    def test_via_escaped_pointer(self):
        assert_detected("""
        void fill(int *p, int n) {
            int i;
            for (i = 0; i <= n; i++) { p[i] = i; }
        }
        int main(void) {
            int buf[8];
            fill(buf, 8);
            return buf[0];
        }
        """)

    def test_exact_fill_is_clean(self):
        assert_clean("""
        void fill(int *p, int n) {
            int i;
            for (i = 0; i < n; i++) { p[i] = i; }
        }
        int main(void) {
            int buf[8];
            fill(buf, 8);
            return buf[7];
        }
        """)


class TestGlobalOverflow:
    def test_escaped_global_overflow(self):
        assert_detected("""
        int g_buf[8];
        int *g_p;
        int main(void) {
            g_p = g_buf;
            int *p = g_p;
            p[8] = 1;
            return 0;
        }
        """)

    def test_direct_global_index_overflow(self):
        assert_detected("""
        int g_buf[8];
        int main(void) {
            int i;
            for (i = 0; i < 12; i++) { g_buf[i] = i; }
            return 0;
        }
        """)

    def test_large_global_uses_global_table(self):
        source = """
        long g_big[500];
        long *g_p;
        int main(void) {
            g_p = g_big;
            long *p = g_p;
            p[500] = 1;
            return 0;
        }
        """
        result = assert_detected(source)
        assert result.stats.ifp.lookups_global_table >= 1


class TestIntraObject:
    """The paper's Listing 1: subobject-granularity detection."""

    LISTING1 = """
    struct S {
        char vulnerable[12];
        char sensitive[12];
    };
    void touch(char *p, int i) { p[i] = 'X'; }
    int main(void) {
        struct S s;
        s.sensitive[0] = 'K';
        touch(s.vulnerable, %d);
        return s.sensitive[0];
    }
    """

    def test_intra_object_overflow_detected(self):
        assert_detected(self.LISTING1 % 12)

    def test_last_byte_is_clean(self):
        assert_clean(self.LISTING1 % 11)

    def test_heap_intra_object_via_promote(self):
        source = """
        struct S { char vulnerable[12]; char sensitive[12]; };
        char *g;
        int main(void) {
            struct S *s = (struct S*)malloc(sizeof(struct S));
            g = s->vulnerable;
            char *q = g;        /* reload: promote narrows via layout table */
            q[13] = 'X';
            return 0;
        }
        """
        for options in (WRAPPED, SUBHEAP):
            result = assert_detected(source, options)
            assert result.stats.ifp.narrow_success >= 1

    def test_heap_intra_object_good_variant(self):
        source = """
        struct S { char vulnerable[12]; char sensitive[12]; };
        char *g;
        int main(void) {
            struct S *s = (struct S*)malloc(sizeof(struct S));
            g = s->vulnerable;
            char *q = g;
            q[11] = 'X';
            return 0;
        }
        """
        assert_clean(source, WRAPPED)
        assert_clean(source, SUBHEAP)

    def test_nested_array_of_struct_narrowing(self):
        # The paper's Figure 9 shape, via a stored member pointer.
        source = """
        struct Nested { int v3; int v4; };
        struct S { int v1; struct Nested array[2]; int v5; };
        int *g;
        int main(void) {
            struct S *s = (struct S*)malloc(sizeof(struct S));
            g = &s->array[1].v3;
            int *q = g;
            q[%d] = 7;
            return 0;
        }
        """
        assert_clean(source % 0, WRAPPED)       # writes v3 itself
        assert_detected(source % 1, WRAPPED)    # would write v4

    def test_wrapper_alloc_coarsens_to_object(self):
        # Without a layout table the guarantee degrades to object bounds
        # (detected), but intra-object stays invisible (paper Section 3).
        source = """
        struct S { char a[12]; char b[12]; };
        void *wrap(unsigned long n) { return malloc(n); }
        char *g;
        int main(void) {
            struct S *s = (struct S*)wrap(sizeof(struct S));
            g = s->a;
            char *q = g;
            q[%d] = 'X';
            return 0;
        }
        """
        intra = compile_and_run(source % 13, WRAPPED)
        assert intra.ok  # coarsened: inside the object, not detected
        beyond = compile_and_run(source % 24, WRAPPED)
        assert beyond.detected_violation


class TestPoisonSemantics:
    def test_oob_pointer_created_but_not_dereferenced_is_fine(self):
        assert_clean("""
        int main(void) {
            int buf[4];
            int *end = &buf[4];   /* one-past: legal to form */
            int *p = end - 1;
            *p = 5;               /* back in bounds */
            return buf[3];
        }
        """)

    def test_recoverable_pointer_returning_in_bounds(self):
        assert_clean("""
        int main(void) {
            char *p = (char*)malloc(8);
            char *q = p + 8;      /* one past */
            q = q - 1;            /* recovered */
            *q = 1;
            free(p);
            return 0;
        }
        """)

    def test_use_after_free_with_metadata_invalidation(self):
        # The paper: temporal errors are caught only when they invalidate
        # object metadata — the wrapped allocator clears it on free.
        source = """
        int *g;
        int main(void) {
            g = (int*)malloc(16);
            free(g);
            int *p = g;     /* promote: metadata gone -> poisoned */
            *p = 1;
            return 0;
        }
        """
        assert_detected(source, WRAPPED)


class TestDetectionStats:
    def test_check_failure_counted(self):
        result = assert_detected(TestHeapOverflow.BAD)
        assert result.stats.implicit_checks > 0

    def test_trap_carries_pointer_info(self):
        from repro.errors import PoisonTrap, BoundsTrap
        result = assert_detected(TestHeapOverflow.BAD)
        assert isinstance(result.trap, (PoisonTrap, BoundsTrap))
