"""Tests for pointer-tag encode/decode (repro.ifp.tag) and poison bits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ifp import DEFAULT_CONFIG, Poison, PointerTag, Scheme
from repro.ifp.tag import (
    address_of, is_legacy, pack_pointer, poison_of, scheme_of, strip_tag,
    unpack_tag, with_poison, with_tag,
)


class TestPoison:
    def test_states(self):
        assert Poison.VALID.dereferenceable
        assert not Poison.RECOVERABLE.dereferenceable
        assert not Poison.INVALID.dereferenceable
        assert Poison.INVALID.irrecoverable
        assert Poison.INVALID_ALT.irrecoverable
        assert not Poison.RECOVERABLE.irrecoverable

    def test_from_bits_masks(self):
        assert Poison.from_bits(0b101) == Poison.RECOVERABLE


class TestTagLayout:
    def test_legacy_is_all_zero(self):
        tag = unpack_tag(0x0000_1234_5678_9ABC)
        assert tag.scheme is Scheme.LEGACY
        assert tag.poison is Poison.VALID
        assert tag.payload == 0

    def test_pack_unpack_fields(self):
        tag = PointerTag(Poison.RECOVERABLE, Scheme.SUBHEAP, 0xABC)
        pointer = pack_pointer(0x7FFF_FFFF_0000, tag)
        decoded = unpack_tag(pointer)
        assert decoded == tag
        assert address_of(pointer) == 0x7FFF_FFFF_0000

    def test_local_offset_payload_views(self):
        payload = (0x2A << 6) | 0x15   # offset 42, subobject 21
        tag = PointerTag(Poison.VALID, Scheme.LOCAL_OFFSET, payload)
        assert tag.local_granule_offset(DEFAULT_CONFIG) == 42
        assert tag.local_subobject_index(DEFAULT_CONFIG) == 21
        assert tag.subobject_index(DEFAULT_CONFIG) == 21

    def test_subheap_payload_views(self):
        payload = (0xB << 8) | 0x7F
        tag = PointerTag(Poison.VALID, Scheme.SUBHEAP, payload)
        assert tag.subheap_register_index(DEFAULT_CONFIG) == 0xB
        assert tag.subheap_subobject_index(DEFAULT_CONFIG) == 0x7F

    def test_global_table_payload(self):
        tag = PointerTag(Poison.VALID, Scheme.GLOBAL_TABLE, 0xFFF)
        assert tag.global_table_index(DEFAULT_CONFIG) == 0xFFF
        assert tag.subobject_index(DEFAULT_CONFIG) == 0

    def test_with_subobject_index(self):
        tag = PointerTag(Poison.VALID, Scheme.LOCAL_OFFSET, 0x2A << 6)
        updated = tag.with_subobject_index(5, DEFAULT_CONFIG)
        assert updated.local_subobject_index(DEFAULT_CONFIG) == 5
        assert updated.local_granule_offset(DEFAULT_CONFIG) == 0x2A

    def test_subobject_index_overflow_rejected(self):
        tag = PointerTag(Poison.VALID, Scheme.LOCAL_OFFSET, 0)
        with pytest.raises(ValueError):
            tag.with_subobject_index(64, DEFAULT_CONFIG)

    def test_global_table_has_no_subobject_field(self):
        tag = PointerTag(Poison.VALID, Scheme.GLOBAL_TABLE, 0)
        with pytest.raises(ValueError):
            tag.with_subobject_index(1, DEFAULT_CONFIG)


class TestHelpers:
    def test_with_poison_preserves_rest(self):
        tag = PointerTag(Poison.VALID, Scheme.LOCAL_OFFSET, 0x123)
        pointer = pack_pointer(0xCAFE, tag)
        poisoned = with_poison(pointer, Poison.INVALID)
        assert poison_of(poisoned) is Poison.INVALID
        assert scheme_of(poisoned) is Scheme.LOCAL_OFFSET
        assert address_of(poisoned) == 0xCAFE
        assert unpack_tag(poisoned).payload == 0x123

    def test_strip_tag(self):
        tag = PointerTag(Poison.INVALID, Scheme.GLOBAL_TABLE, 0x456)
        pointer = pack_pointer(0x1000, tag)
        assert strip_tag(pointer) == 0x1000
        assert is_legacy(strip_tag(pointer))

    def test_with_tag(self):
        tag = PointerTag(Poison.VALID, Scheme.SUBHEAP, 7)
        assert unpack_tag(with_tag(0x99, tag)).scheme is Scheme.SUBHEAP

    @given(address=st.integers(0, (1 << 48) - 1),
           poison=st.sampled_from(list(Poison)),
           scheme=st.sampled_from(list(Scheme)),
           payload=st.integers(0, 0xFFF))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, address, poison, scheme, payload):
        tag = PointerTag(poison, scheme, payload)
        pointer = pack_pointer(address, tag)
        assert pointer < (1 << 64)
        decoded = unpack_tag(pointer)
        # INVALID and INVALID_ALT are distinct encodings of one state.
        assert decoded.poison == poison
        assert decoded.scheme == scheme
        assert decoded.payload == payload
        assert address_of(pointer) == address

    def test_encode_width(self):
        tag = PointerTag(Poison.INVALID_ALT, Scheme.GLOBAL_TABLE, 0xFFF)
        assert tag.encode() == 0xFFFF
