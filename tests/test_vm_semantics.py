"""Tests for VM-level semantics: tagged-pointer arithmetic, calling
convention, implicit bounds clearing, stack behaviour, statistics."""

import pytest

from repro.compiler import CompilerOptions
from repro.ifp.poison import Poison
from repro.ifp.tag import poison_of, scheme_of, Scheme
from tests.conftest import compile_and_run

WRAPPED = CompilerOptions.wrapped()


class TestTaggedArithmetic:
    def test_local_offset_tag_survives_arithmetic(self):
        """Pointer arithmetic re-encodes the granule offset so metadata
        is still reachable from the moved pointer (the paper's ifpadd)."""
        source = """
        char *g;
        int main(void) {
            char *p = (char*)malloc(64);
            g = p + 48;          /* store moved pointer */
            char *q = g;         /* reload: promote via re-encoded tag */
            q[0] = 1;
            q[15] = 1;
            return 0;
        }
        """
        result = compile_and_run(source, WRAPPED)
        assert result.ok
        assert result.stats.ifp.promotes_valid >= 1

    def test_moved_pointer_overflow_still_detected(self):
        source = """
        char *g;
        int main(void) {
            char *p = (char*)malloc(64);
            g = p + 48;
            char *q = g;
            q[16] = 1;           /* 48 + 16 = 64: one past the end */
            return 0;
        }
        """
        assert compile_and_run(source, WRAPPED).detected_violation

    def test_subheap_tag_is_position_independent(self):
        source = """
        char *g;
        int main(void) {
            char *p = (char*)malloc(64);
            g = p + 32;
            char *q = g;
            q[31] = 1;
            q[32] = 1;   /* 64: out */
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.subheap())
        assert result.detected_violation

    def test_loop_pointer_walk_costs_no_promotes(self):
        """Array traversal via a register pointer: bounds stay in the
        IFPR, no promote per iteration (the paper's loop efficiency)."""
        source = """
        int main(void) {
            int *p = (int*)malloc(400);
            int *cursor = p;
            int i;
            for (i = 0; i < 100; i++) {
                *cursor = i;
                cursor = cursor + 1;
            }
            free(p);
            return 0;
        }
        """
        result = compile_and_run(source, WRAPPED)
        assert result.ok
        assert result.stats.ifp.promotes_total == 0


class TestCallingConvention:
    def test_bounds_flow_through_arguments(self):
        """Callee dereferences a pointer argument without promoting —
        the paper's bounds-passing convention."""
        source = """
        int read9(int *p) { return p[9]; }
        int main(void) {
            int *p = (int*)malloc(40);
            p[9] = 7;
            int v = read9(p);
            free(p);
            return v;
        }
        """
        result = compile_and_run(source, WRAPPED)
        assert result.ok and result.exit_code == 7
        assert result.stats.ifp.promotes_total == 0
        assert result.stats.implicit_checks > 0

    def test_callee_check_uses_passed_bounds(self):
        source = """
        int read10(int *p) { return p[10]; }
        int main(void) {
            int *p = (int*)malloc(40);
            int v = read10(p);
            free(p);
            return v;
        }
        """
        assert compile_and_run(source, WRAPPED).detected_violation

    def test_bounds_flow_through_returns(self):
        source = """
        int *make(void) { return (int*)malloc(40); }
        int main(void) {
            int *p = make();
            p[9] = 1;    /* checked via returned bounds, no promote */
            p[10] = 1;   /* out of bounds */
            return 0;
        }
        """
        result = compile_and_run(source, WRAPPED)
        assert result.detected_violation
        assert result.stats.ifp.promotes_total == 0

    def test_legacy_callee_result_cleared(self):
        """A pointer produced by uninstrumented code has no bounds; the
        implicit clearing means instrumented callers never pick up stale
        bounds (modelled by legacy builtins returning cleared IFPRs)."""
        source = """
        int main(void) {
            char *s = strchr("hello", 'e');
            return s[0] == 'e' ? 0 : 1;
        }
        """
        result = compile_and_run(source, WRAPPED)
        assert result.ok and result.exit_code == 0
        # The promote on the libc result bypassed as legacy.
        assert result.stats.ifp.promotes_legacy >= 1


class TestStack:
    def test_deep_recursion_overflows_gracefully(self):
        source = """
        long burn(long n) {
            int pad[200];
            pad[0] = (int)n;
            if (n == 0) { return 0; }
            return pad[0] + burn(n - 1);
        }
        int main(void) { return (int)burn(1000000); }
        """
        result = compile_and_run(source, CompilerOptions.baseline(),
                                 max_instructions=500_000_000)
        assert result.trap is not None
        assert "stack overflow" in str(result.trap)

    def test_frames_are_reused(self):
        source = """
        int leaf(int x) { int buf[16]; buf[0] = x; return buf[0]; }
        int main(void) {
            int i; int total = 0;
            for (i = 0; i < 100; i++) { total += leaf(i); }
            print_int(total);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert int(result.output) == sum(range(100))
        # Stack usage stays one frame deep: under two pages mapped there.
        assert result.stats.peak_mapped_bytes < 1 << 22


class TestStatistics:
    def test_category_accounting_sums(self):
        source = """
        int g;
        int main(void) {
            int *p = (int*)malloc(40);
            p[3] = 5;
            g = p[3];
            free(p);
            return 0;
        }
        """
        result = compile_and_run(source, WRAPPED)
        stats = result.stats
        assert stats.total_instructions == (
            stats.base_instructions + stats.promote_instructions
            + stats.ifp_arith_instructions + stats.bounds_ls_instructions)
        assert stats.builtin_instructions <= stats.base_instructions

    def test_cycles_at_least_instructions(self):
        result = compile_and_run("int main(void) { return 0; }",
                                 CompilerOptions.baseline())
        assert result.stats.cycles >= result.stats.base_instructions

    def test_summary_renders(self):
        result = compile_and_run("int main(void) { return 0; }", WRAPPED)
        text = result.stats.summary()
        assert "instructions" in text and "promotes" in text

    def test_loads_stores_counted(self):
        source = """
        int main(void) {
            int buf[4];
            buf[1] = 2;
            return buf[1];
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.stats.stores >= 1 and result.stats.loads >= 1


class TestOutputDeterminism:
    def test_identical_runs_identical_stats(self):
        source = """
        int main(void) {
            int i; long t = 0;
            for (i = 0; i < 50; i++) { t += i * i; }
            print_int(t);
            return 0;
        }
        """
        a = compile_and_run(source, WRAPPED)
        b = compile_and_run(source, WRAPPED)
        assert a.output == b.output
        assert a.stats.total_instructions == b.stats.total_instructions
        assert a.stats.cycles == b.stats.cycles
