"""Whole-program differential tests.

Each program is a realistic mini-C kernel with a known answer, executed
under every defense configuration: baseline, both IFP builds, and the
ASan/MPX baselines.  All six must agree with the expected output — a
broad cross-check of the compiler, the VM, every allocator, and every
instrumentation mode at once.
"""

import pytest

from repro.compiler import CompilerOptions
from tests.conftest import compile_and_run

ALL_CONFIGS = {
    "baseline": CompilerOptions.baseline(),
    "ifp-wrapped": CompilerOptions.wrapped(),
    "ifp-subheap": CompilerOptions.subheap(),
    "ifp-nopromote": CompilerOptions.wrapped(no_promote=True),
    "asan": CompilerOptions.asan(),
    "mpx": CompilerOptions.mpx(),
}

QUICKSORT = """
void quicksort(int *a, int lo, int hi) {
    if (lo >= hi) { return; }
    int pivot = a[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (a[i] < pivot) { i++; }
        while (a[j] > pivot) { j--; }
        if (i <= j) {
            int t = a[i]; a[i] = a[j]; a[j] = t;
            i++; j--;
        }
    }
    quicksort(a, lo, j);
    quicksort(a, i, hi);
}
int main(void) {
    int n = 40;
    int *a = (int*)malloc(n * sizeof(int));
    int i;
    int seed = 7;
    for (i = 0; i < n; i++) {
        seed = (seed * 1103515245 + 12345) & 0x7fffffff;
        a[i] = seed % 1000;
    }
    quicksort(a, 0, n - 1);
    long check = 0;
    int sorted = 1;
    for (i = 0; i < n; i++) {
        check += a[i] * (i + 1);
        if (i > 0 && a[i] < a[i - 1]) { sorted = 0; }
    }
    printf("%d %d\\n", sorted, (int)(check & 0xffffff));
    free(a);
    return 0;
}
"""

HASH_MAP = """
struct entry {
    long key;
    long value;
    struct entry *next;
};
struct map {
    struct entry *buckets[16];
    int count;
};
void map_put(struct map *m, long key, long value) {
    int b = (int)(key & 15);
    struct entry *e = m->buckets[b];
    while (e != NULL) {
        if (e->key == key) { e->value = value; return; }
        e = e->next;
    }
    e = (struct entry*)malloc(sizeof(struct entry));
    e->key = key;
    e->value = value;
    e->next = m->buckets[b];
    m->buckets[b] = e;
    m->count++;
}
long map_get(struct map *m, long key) {
    struct entry *e = m->buckets[(int)(key & 15)];
    while (e != NULL) {
        if (e->key == key) { return e->value; }
        e = e->next;
    }
    return -1;
}
int main(void) {
    struct map m;
    int i;
    for (i = 0; i < 16; i++) { m.buckets[i] = NULL; }
    m.count = 0;
    for (i = 0; i < 60; i++) { map_put(&m, i * 7, i * i); }
    for (i = 0; i < 30; i++) { map_put(&m, i * 7, i); }  /* overwrite */
    long total = 0;
    for (i = 0; i < 60; i++) { total += map_get(&m, i * 7); }
    total += map_get(&m, 9999);
    printf("%d %d\\n", m.count, (int)total);
    return 0;
}
"""

BST_WITH_DELETE = """
struct node {
    int key;
    struct node *left;
    struct node *right;
};
struct node *insert(struct node *root, int key) {
    if (root == NULL) {
        struct node *n = (struct node*)malloc(sizeof(struct node));
        n->key = key;
        n->left = NULL;
        n->right = NULL;
        return n;
    }
    if (key < root->key) { root->left = insert(root->left, key); }
    else if (key > root->key) { root->right = insert(root->right, key); }
    return root;
}
struct node *delete_min(struct node *root, struct node **out) {
    if (root->left == NULL) {
        *out = root;
        return root->right;
    }
    root->left = delete_min(root->left, out);
    return root;
}
struct node *remove_key(struct node *root, int key) {
    if (root == NULL) { return NULL; }
    if (key < root->key) { root->left = remove_key(root->left, key); }
    else if (key > root->key) { root->right = remove_key(root->right, key); }
    else {
        if (root->left == NULL) { struct node *r = root->right; free(root); return r; }
        if (root->right == NULL) { struct node *l = root->left; free(root); return l; }
        struct node *succ;
        root->right = delete_min(root->right, &succ);
        succ->left = root->left;
        succ->right = root->right;
        free(root);
        return succ;
    }
    return root;
}
long sum_inorder(struct node *root, long depth) {
    if (root == NULL) { return 0; }
    return root->key + depth
        + sum_inorder(root->left, depth + 1)
        + sum_inorder(root->right, depth + 1);
}
int main(void) {
    struct node *root = NULL;
    int i;
    for (i = 0; i < 50; i++) { root = insert(root, (i * 37) % 101); }
    for (i = 0; i < 20; i++) { root = remove_key(root, (i * 37) % 101); }
    printf("%d\\n", (int)sum_inorder(root, 0));
    return 0;
}
"""

STRING_WORK = """
int count_words(char *text) {
    int count = 0;
    int in_word = 0;
    int i = 0;
    while (text[i] != 0) {
        if (text[i] == ' ') { in_word = 0; }
        else if (!in_word) { in_word = 1; count++; }
        i++;
    }
    return count;
}
int main(void) {
    char buf[128];
    strcpy(buf, "the quick brown fox");
    strcat(buf, " jumps over the lazy dog");
    int words = count_words(buf);
    long len = strlen(buf);
    char upper[128];
    int i;
    for (i = 0; buf[i] != 0; i++) { upper[i] = (char)toupper(buf[i]); }
    upper[i] = 0;
    printf("%d %d %c%c\\n", words, (int)len, upper[0], upper[4]);
    return 0;
}
"""

MATRIX_CHAIN = """
int main(void) {
    long a[4][4];
    long b[4][4];
    long c[4][4];
    int i; int j; int k;
    for (i = 0; i < 4; i++) {
        for (j = 0; j < 4; j++) {
            a[i][j] = i + j;
            b[i][j] = (i + 1) * (j + 2);
        }
    }
    for (i = 0; i < 4; i++) {
        for (j = 0; j < 4; j++) {
            long sum = 0;
            for (k = 0; k < 4; k++) { sum += a[i][k] * b[k][j]; }
            c[i][j] = sum;
        }
    }
    long trace = 0;
    for (i = 0; i < 4; i++) { trace += c[i][i]; }
    printf("%d\\n", (int)trace);
    return 0;
}
"""

DYNAMIC_VECTOR = """
struct vec {
    int *data;
    int size;
    int capacity;
};
void push(struct vec *v, int value) {
    if (v->size == v->capacity) {
        v->capacity = v->capacity ? v->capacity * 2 : 4;
        v->data = (int*)realloc(v->data, v->capacity * sizeof(int));
    }
    v->data[v->size] = value;
    v->size++;
}
int main(void) {
    struct vec v;
    v.data = NULL;
    v.size = 0;
    v.capacity = 0;
    int i;
    for (i = 0; i < 50; i++) { push(&v, i * 3); }
    long total = 0;
    for (i = 0; i < v.size; i++) { total += v.data[i]; }
    printf("%d %d %d\\n", v.size, v.capacity, (int)total);
    free(v.data);
    return 0;
}
"""

STATE_MACHINE = """
int classify(char c) {
    switch (c) {
        case ' ':
        case '\\t': return 0;
        case '0': case '1': case '2': case '3': case '4':
        case '5': case '6': case '7': case '8': case '9': return 1;
        default: return 2;
    }
}
int main(void) {
    char *input = "ab 12 cd34  5 xyz 678";
    int tokens[3] = {0, 0, 0};
    int prev = 0;
    int i;
    for (i = 0; input[i] != 0; i++) {
        int kind = classify(input[i]);
        if (kind != 0 && (prev == 0 || prev != kind)) { tokens[kind]++; }
        prev = kind;
    }
    printf("%d %d\\n", tokens[1], tokens[2]);
    return 0;
}
"""

SIEVE = """
int main(void) {
    int limit = 200;
    char *is_composite = (char*)calloc(limit + 1, 1);
    int count = 0;
    long sum = 0;
    int i;
    for (i = 2; i <= limit; i++) {
        if (!is_composite[i]) {
            count++;
            sum += i;
            int j;
            for (j = i * 2; j <= limit; j += i) { is_composite[j] = 1; }
        }
    }
    printf("%d %d\\n", count, (int)sum);
    free(is_composite);
    return 0;
}
"""

PROGRAMS = {
    "quicksort": (QUICKSORT, "1 "),
    "hash_map": (HASH_MAP, "60 "),
    "bst_with_delete": (BST_WITH_DELETE, None),
    "string_work": (STRING_WORK, "9 43 TQ"),
    "matrix_chain": (MATRIX_CHAIN, None),
    "dynamic_vector": (DYNAMIC_VECTOR, "50 64 3675"),
    "state_machine": (STATE_MACHINE, None),
    "sieve": (SIEVE, "46 4227"),
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_all_defenses_agree(name):
    source, expected_prefix = PROGRAMS[name]
    outputs = {}
    for config_name, options in ALL_CONFIGS.items():
        result = compile_and_run(source, options,
                                 max_instructions=50_000_000)
        assert result.ok, (name, config_name, result.trap)
        outputs[config_name] = result.output
    assert len(set(outputs.values())) == 1, (name, outputs)
    if expected_prefix:
        assert outputs["baseline"].startswith(expected_prefix), \
            (name, outputs["baseline"])


def test_sieve_expected_value():
    """Independent check of one program against Python ground truth."""
    limit = 200
    sieve = [True] * (limit + 1)
    primes = []
    for i in range(2, limit + 1):
        if sieve[i]:
            primes.append(i)
            for j in range(2 * i, limit + 1, i):
                sieve[j] = False
    result = compile_and_run(SIEVE, CompilerOptions.baseline())
    count, total = map(int, result.output.split())
    assert count == len(primes) and total == sum(primes)


def test_quicksort_sortedness_all_defenses():
    for config_name, options in ALL_CONFIGS.items():
        result = compile_and_run(QUICKSORT, options,
                                 max_instructions=50_000_000)
        assert result.output.startswith("1 "), config_name
