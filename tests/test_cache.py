"""Tests for the cache model and hierarchy cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import Cache, CacheHierarchy, HierarchyConfig


class TestGeometry:
    def test_default_geometry(self):
        cache = Cache()
        assert cache.num_sets == 32 * 1024 // (8 * 64)

    def test_invalid_line_size(self):
        with pytest.raises(ValueError):
            Cache(line_bytes=48)

    def test_size_not_multiple(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=1000, ways=8, line_bytes=64)


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = Cache(size_bytes=1024, ways=2, line_bytes=64)
        assert cache.access(0x100) == 1      # cold miss
        assert cache.access(0x100) == 0      # hit
        assert cache.access(0x13F) == 0      # same line
        assert cache.stats.read_misses == 1
        assert cache.stats.read_hits == 2

    def test_write_accounting(self):
        cache = Cache(size_bytes=1024, ways=2, line_bytes=64)
        cache.access(0, write=True)
        cache.access(0, write=True)
        assert cache.stats.write_misses == 1
        assert cache.stats.write_hits == 1

    def test_lru_eviction(self):
        # Direct-mapped-ish: 2 ways, 1 set when size == 2 lines.
        cache = Cache(size_bytes=128, ways=2, line_bytes=64)
        assert cache.num_sets == 1
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(0 * 64)        # touch line 0: now line 1 is LRU
        cache.access(2 * 64)        # evicts line 1
        assert cache.access(0 * 64) == 0   # still resident
        assert cache.access(1 * 64) == 1   # was evicted

    def test_multi_line_access(self):
        cache = Cache(size_bytes=1024, ways=2, line_bytes=64)
        misses = cache.access(60, size=16)   # crosses a line boundary
        assert misses == 2

    def test_flush(self):
        cache = Cache(size_bytes=1024, ways=2, line_bytes=64)
        cache.access(0)
        cache.flush()
        assert cache.access(0) == 1
        assert cache.stats.read_misses == 2  # stats preserved by flush

    def test_reset_clears_stats(self):
        cache = Cache(size_bytes=1024, ways=2, line_bytes=64)
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0

    def test_miss_rate(self):
        cache = Cache(size_bytes=1024, ways=2, line_bytes=64)
        assert cache.stats.miss_rate == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    @given(addresses=st.lists(st.integers(0, 1 << 20), min_size=1,
                              max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_capacity_invariant(self, addresses):
        """Resident lines never exceed the configured capacity."""
        cache = Cache(size_bytes=2048, ways=4, line_bytes=64)
        capacity = cache.num_sets * cache.ways
        for address in addresses:
            cache.access(address)
            assert cache.resident_lines() <= capacity

    @given(addresses=st.lists(st.integers(0, 1 << 16), min_size=1,
                              max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_repeat_is_hit(self, addresses):
        """Accessing the same address twice in a row always hits."""
        cache = Cache(size_bytes=2048, ways=4, line_bytes=64)
        for address in addresses:
            cache.access(address)
            assert cache.access(address) == 0


class TestHierarchy:
    def test_hit_cost(self):
        hierarchy = HierarchyConfig(hit_cycles=1, miss_penalty=40).build()
        first = hierarchy.access_cycles(0x100, 8, False)
        second = hierarchy.access_cycles(0x100, 8, False)
        assert first == 1 + 40
        assert second == 1

    def test_miss_counting(self):
        hierarchy = HierarchyConfig().build()
        hierarchy.access_cycles(0, 8, False)
        hierarchy.access_cycles(1 << 16, 8, True)
        assert hierarchy.l1d_misses == 2
        assert hierarchy.l1d_accesses == 2

    def test_reset(self):
        hierarchy = HierarchyConfig().build()
        hierarchy.access_cycles(0, 8, False)
        hierarchy.reset()
        assert hierarchy.l1d_accesses == 0
        assert hierarchy.access_cycles(0, 8, False) > 1  # cold again
