"""Tests for repro.serve: spec validation, weighted-fair scheduling
with backpressure, the campaign service's execution/cancel/drain
lifecycle, the HTTP API (dispatched directly and over a real socket),
and the restart-recovery guarantee — a killed service resumes its
campaigns to results byte-identical (timing aside) to an uninterrupted
run."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import (
    InvalidJobSpec, JobNotCancellable, QueueFull, ServiceUnavailable,
    UnknownJob,
)
from repro.obs.metrics import metrics_document, validate_document
from repro.par import canonical_metrics, run_plan
from repro.par.plan import plan_indices
from repro.serve import (
    BackgroundServer, CampaignService, JobRecord, TenantQuota,
    WeightedFairScheduler, build_plan, dispatch, validate_spec,
)

SELFTEST = "repro.par.campaigns:run_selftest_shard"


def _spec(tenant="alice", kind="selftest", workers=1, **params):
    return {"tenant": tenant, "kind": kind, "workers": workers,
            "params": params}


def _service(tmp_path, name="store", **kwargs):
    kwargs.setdefault("workers_total", 1)
    kwargs.setdefault("max_concurrent_jobs", 1)
    return CampaignService(str(tmp_path / name), **kwargs)


def _reference_values(total=8, seed=3, shards=4, **params):
    params.setdefault("fail_shards", [])
    params.setdefault("sleep_seconds", 0.0)
    params.setdefault("mode", "ok")
    params.setdefault("succeed_attempt", 1)
    params.setdefault("marker", "")
    plan = plan_indices("selftest", seed, list(range(total)),
                        params=params, shards=shards)
    outcome = run_plan(plan, SELFTEST, jobs=1)
    return [outcome.results[s.shard_id]["value"] for s in plan.shards]


# ---------------------------------------------------------------------------
# spec validation
# ---------------------------------------------------------------------------

class TestValidateSpec:
    def test_defaults_resolve_at_submit_time(self):
        tenant, kind, workers, params = validate_spec(_spec())
        assert (tenant, kind, workers) == ("alice", "selftest", 1)
        assert params["total"] == 8
        assert params["shards"] == 4
        assert params["mode"] == "ok"

    def test_fuzz_defaults_and_comma_configs(self):
        _, _, _, params = validate_spec(
            _spec(kind="fuzz", configs="baseline,wrapped"))
        assert params["iterations"] == 20
        assert params["configs"] == ["baseline", "wrapped"]
        assert params["engine"] == "auto"
        assert params["temporal"] == "off"

    @pytest.mark.parametrize("kind", ["fuzz", "juliet"])
    def test_temporal_param_validates(self, kind):
        _, _, _, params = validate_spec(
            _spec(kind=kind, temporal="check"))
        assert params["temporal"] == "check"
        with pytest.raises(InvalidJobSpec) as info:
            validate_spec(_spec(kind=kind, temporal="paranoid"))
        assert info.value.field == "params.temporal"

    def test_temporal_spec_builds_an_armed_plan(self):
        _, kind, workers, params = validate_spec(
            _spec(kind="fuzz", iterations=4, temporal="check"))
        armed = build_plan(kind, params, workers)
        assert armed.params["temporal"] == "check"
        # the default policy stays absent from plan params, so
        # pre-temporal checkpoint fingerprints keep verifying
        _, kind, workers, params = validate_spec(
            _spec(kind="fuzz", iterations=4))
        assert "temporal" not in build_plan(kind, params, workers).params

    @pytest.mark.parametrize("body,field", [
        ({"kind": "selftest"}, "tenant"),
        (_spec(tenant="no spaces!"), "tenant"),
        (_spec(tenant="x" * 65), "tenant"),
        ({"tenant": "a", "kind": "nope"}, "kind"),
        (_spec(workers=0), "workers"),
        (_spec(workers=99), "workers"),
        (_spec(total=0), "params.total"),
        (_spec(total="many"), "params.total"),
        (_spec(mode="explode"), "params.mode"),
        (_spec(bogus=1), "params"),
        ({**_spec(), "extra": True}, "body"),
        ("not an object", "body"),
        ({"tenant": "a", "kind": "fuzz",
          "params": {"configs": ["baseline", "nope"]}},
         "params.configs"),
    ])
    def test_invalid_specs_name_the_field(self, body, field):
        with pytest.raises(InvalidJobSpec) as info:
            validate_spec(body)
        assert info.value.field == field
        assert info.value.http_status == 400

    def test_disabled_kind_rejected(self):
        with pytest.raises(InvalidJobSpec) as info:
            validate_spec(_spec(kind="fuzz"),
                          allowed_kinds=("selftest",))
        assert info.value.field == "kind"

    def test_plan_is_pure_function_of_resolved_spec(self):
        _, kind, workers, params = validate_spec(
            _spec(kind="fuzz", iterations=5, seed=9))
        first = build_plan(kind, params, workers)
        second = build_plan(
            kind, json.loads(json.dumps(params)), workers)
        assert first.fingerprint() == second.fingerprint()


# ---------------------------------------------------------------------------
# weighted-fair scheduling + backpressure
# ---------------------------------------------------------------------------

def _record(job_id, tenant):
    return JobRecord(job_id=job_id, tenant=tenant, kind="selftest",
                     workers=1, params={})


class TestScheduler:
    def test_weight_2_dispatches_twice_as_often(self):
        scheduler = WeightedFairScheduler(
            default_quota=TenantQuota(max_queued=64, max_running=64),
            quotas={"heavy": TenantQuota(weight=2, max_queued=64,
                                         max_running=64)})
        for index in range(12):
            scheduler.submit(_record(f"h{index}", "heavy"))
            scheduler.submit(_record(f"l{index}", "light"))
        order = [scheduler.next_job().tenant for _ in range(9)]
        assert order.count("heavy") == 6
        assert order.count("light") == 3

    def test_dispatch_order_is_deterministic(self):
        def run_once():
            scheduler = WeightedFairScheduler(
                default_quota=TenantQuota(max_queued=64,
                                          max_running=64))
            for index in range(4):
                for tenant in ("a", "b", "c"):
                    scheduler.submit(_record(f"{tenant}{index}",
                                             tenant))
            return [scheduler.next_job().job_id for _ in range(12)]
        assert run_once() == run_once()

    def test_queue_full_backpressure(self):
        scheduler = WeightedFairScheduler(
            default_quota=TenantQuota(max_queued=2, retry_after=3.5))
        scheduler.submit(_record("j1", "t"))
        scheduler.submit(_record("j2", "t"))
        with pytest.raises(QueueFull) as info:
            scheduler.submit(_record("j3", "t"))
        assert info.value.http_status == 429
        assert info.value.retry_after == 3.5
        assert info.value.depth == 2
        assert scheduler.tenant("t").rejected == 1
        # force bypasses the bound (crash-recovery re-admission only)
        scheduler.submit(_record("j3", "t"), force=True)
        assert scheduler.depth() == 3

    def test_max_running_gates_eligibility(self):
        scheduler = WeightedFairScheduler(
            default_quota=TenantQuota(max_queued=8, max_running=1))
        scheduler.submit(_record("j1", "t"))
        scheduler.submit(_record("j2", "t"))
        assert scheduler.next_job().job_id == "j1"
        assert scheduler.next_job() is None   # at the cap
        scheduler.release("t", "done")
        assert scheduler.next_job().job_id == "j2"
        assert scheduler.tenant("t").completed == 1

    def test_new_tenant_starts_at_current_pass_floor(self):
        scheduler = WeightedFairScheduler(
            default_quota=TenantQuota(max_queued=64, max_running=64))
        for index in range(6):
            scheduler.submit(_record(f"a{index}", "a"))
        for _ in range(4):
            scheduler.next_job()
        # a latecomer must not get retroactive credit for idle time:
        # it starts at the minimum pass, so dispatch alternates rather
        # than draining the newcomer's whole queue first
        for index in range(6):
            scheduler.submit(_record(f"z{index}", "late"))
        order = [scheduler.next_job().tenant for _ in range(4)]
        assert order.count("late") == 2

    def test_cancel_queued(self):
        scheduler = WeightedFairScheduler()
        scheduler.submit(_record("j1", "t"))
        assert scheduler.cancel_queued("j1")
        assert not scheduler.cancel_queued("j1")
        assert scheduler.depth() == 0


# ---------------------------------------------------------------------------
# the service core: lifecycle, cancel, determinism
# ---------------------------------------------------------------------------

class TestCampaignService:
    def test_selftest_job_runs_to_deterministic_values(self, tmp_path):
        service = _service(tmp_path)
        try:
            record = service.submit(_spec(total=8, seed=3, shards=4))
            assert record.status in ("queued", "running")
            assert record.fingerprint
            done = service.wait(record.job_id)
            assert done.status == "done"
            assert done.result["values"] == _reference_values()
            assert done.progress["shards_done"] == 4
        finally:
            service.drain()

    def test_failed_shards_quarantine_instead_of_failing(self, tmp_path):
        # poison shards dead-letter after exhausting retries; the job
        # still completes and reports them, and the tenant's breaker
        # trips so follow-up submissions bounce with a 429
        service = _service(tmp_path)
        try:
            record = service.submit(
                _spec(mode="raise", fail_shards=[0, 1, 2, 3]))
            done = service.wait(record.job_id)
            assert done.status == "done"
            quarantined = done.result["quarantined"]
            assert len(quarantined) == 4
            assert {q["reason"] for q in quarantined} == {"error"}
            assert done.progress.get("quarantined") == 4
            assert service.breakers.state("alice") == "open"
        finally:
            service.drain()

    def test_cancel_queued_job(self, tmp_path):
        service = _service(tmp_path)
        try:
            blocker = service.submit(_spec(sleep_seconds=0.2, total=4,
                                           shards=4))
            queued = service.submit(_spec(tenant="bob"))
            cancelled = service.cancel(queued.job_id)
            assert cancelled.status == "cancelled"
            assert service.wait(blocker.job_id).status == "done"
        finally:
            service.drain()

    def test_cancel_running_job_drains_it(self, tmp_path):
        service = _service(tmp_path)
        try:
            record = service.submit(_spec(sleep_seconds=0.1, total=8,
                                          shards=8))
            deadline = time.monotonic() + 10.0
            while service.get(record.job_id).status != "running" \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            service.cancel(record.job_id)
            done = service.wait(record.job_id)
            assert done.status == "cancelled"
        finally:
            service.drain()

    def test_cancel_terminal_job_conflicts(self, tmp_path):
        service = _service(tmp_path)
        try:
            record = service.submit(_spec(total=2, shards=2))
            service.wait(record.job_id)
            with pytest.raises(JobNotCancellable) as info:
                service.cancel(record.job_id)
            assert info.value.http_status == 409
        finally:
            service.drain()

    def test_unknown_job(self, tmp_path):
        service = _service(tmp_path)
        try:
            with pytest.raises(UnknownJob):
                service.get("job-999999")
        finally:
            service.drain()

    def test_draining_service_rejects_submissions(self, tmp_path):
        service = _service(tmp_path)
        service.drain()
        with pytest.raises(ServiceUnavailable) as info:
            service.submit(_spec())
        assert info.value.http_status == 503
        assert info.value.retry_after == 5.0

    def test_metrics_document_validates(self, tmp_path):
        service = _service(tmp_path)
        try:
            record = service.submit(_spec(total=4, shards=2))
            service.wait(record.job_id)
            document = service.metrics()
            assert validate_document(document) == []
            assert document["metrics"]["jobs"]["done"] == 1
            assert document["metrics"]["shards_done"] == 2
            assert "alice" in document["metrics"]["tenants"]
            health = service.healthz()
            assert health["status"] == "ok"
            assert health["jobs"]["done"] == 1
        finally:
            service.drain()


class TestServeFuzzEquivalence:
    def test_serve_fuzz_matches_batch_document(self, tmp_path):
        """The core acceptance criterion: a fuzz campaign submitted
        through the service produces a metrics document canonical-equal
        to the sequential batch run's, and a byte-identical corpus."""
        from repro.fuzz.driver import run_fuzz

        configs = ["baseline", "wrapped"]
        stats = run_fuzz(6, seed=5, configs=configs,
                         corpus_dir=str(tmp_path / "seq"),
                         log=lambda message: None, progress_every=0)
        batch = metrics_document(
            "fuzz", {"seed": 5, "iterations": 6,
                     "configs": ",".join(configs)}, stats.metrics())

        service = _service(tmp_path)
        try:
            record = service.submit(_spec(
                kind="fuzz", iterations=6, seed=5, configs=configs,
                corpus_dir=str(tmp_path / "srv")))
            done = service.wait(record.job_id, timeout=120.0)
            assert done.status == "done"
            served = done.result["metrics_document"]
            assert validate_document(served) == []
            assert canonical_metrics(served) == canonical_metrics(batch)
        finally:
            service.drain()

        # a run with no findings never creates its corpus directory —
        # equivalence then means the served run created none either
        seq_dir, srv_dir = tmp_path / "seq", tmp_path / "srv"
        assert seq_dir.is_dir() == srv_dir.is_dir()
        if seq_dir.is_dir():
            assert sorted(p.name for p in seq_dir.iterdir()) \
                == sorted(p.name for p in srv_dir.iterdir())
            for path in seq_dir.iterdir():
                assert (srv_dir / path.name).read_bytes() \
                    == path.read_bytes(), path.name


# ---------------------------------------------------------------------------
# restart recovery: drained and SIGKILLed services resume byte-identical
# ---------------------------------------------------------------------------

class TestRestartRecovery:
    def test_drained_job_parks_and_resumes_identically(self, tmp_path):
        first = _service(tmp_path)
        record = first.submit(_spec(sleep_seconds=0.15, total=8,
                                    shards=8, seed=3))
        deadline = time.monotonic() + 15.0
        while record.progress.get("shards_done", 0) < 1 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        assert record.progress["shards_done"] >= 1
        first.drain()
        parked = first.get(record.job_id)
        assert parked.status == "queued"

        second = _service(tmp_path)
        try:
            done = second.wait(record.job_id, timeout=60.0)
            assert done.status == "done"
            assert done.progress["shards_restored"] >= 1
            assert done.result["values"] == _reference_values(
                total=8, seed=3, shards=8, sleep_seconds=0.15)
        finally:
            second.drain()

    def test_resume_after_sigkill_matches_clean_run(self, tmp_path):
        """SIGKILL a service process mid-campaign; a fresh service on
        the same store resumes the job from its checkpoint to the same
        values an uninterrupted run produces."""
        store = tmp_path / "store"
        script = (
            "import sys, time; sys.path.insert(0, {src!r})\n"
            "from repro.serve import CampaignService\n"
            "service = CampaignService({store!r}, workers_total=1,\n"
            "                          max_concurrent_jobs=1)\n"
            "service.submit({{'tenant': 'alice', 'kind': 'selftest',\n"
            "                 'workers': 1,\n"
            "                 'params': {{'total': 8, 'shards': 8,\n"
            "                             'seed': 3,\n"
            "                             'sleep_seconds': 0.2}}}})\n"
            "time.sleep(60)\n"
        ).format(src=os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src"), store=str(store))
        child = subprocess.Popen([sys.executable, "-c", script])
        deadline = time.monotonic() + 30.0
        try:
            while time.monotonic() < deadline:
                checkpoints = store / "checkpoints"
                if checkpoints.is_dir() and any(
                        checkpoints.glob("*/shard-*.json")):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("no shard checkpointed before the deadline")
            child.send_signal(signal.SIGKILL)
        finally:
            child.wait(timeout=30)

        service = CampaignService(str(store), workers_total=1,
                                  max_concurrent_jobs=1)
        try:
            jobs = service.list_jobs()
            assert len(jobs) == 1
            done = service.wait(jobs[0].job_id, timeout=60.0)
            assert done.status == "done"
            assert done.progress["shards_restored"] >= 1
            assert done.result["values"] == _reference_values(
                total=8, seed=3, shards=8, sleep_seconds=0.2)
        finally:
            service.drain()


# ---------------------------------------------------------------------------
# HTTP API: direct dispatch and a real socket
# ---------------------------------------------------------------------------

def _json_body(response):
    return json.loads(response[2].decode("utf-8"))


class TestApiDispatch:
    def test_submit_get_list_delete_round_trip(self, tmp_path):
        service = _service(tmp_path)
        try:
            status, _, _ = dispatch(
                service, "POST", "/jobs",
                json.dumps(_spec(total=2, shards=2)).encode())
            assert status == 201
            response = dispatch(service, "GET", "/jobs")
            assert response[0] == 200
            jobs = _json_body(response)["jobs"]
            assert len(jobs) == 1
            job_id = jobs[0]["job_id"]
            service.wait(job_id)
            response = dispatch(service, "GET", f"/jobs/{job_id}")
            assert response[0] == 200
            assert _json_body(response)["status"] == "done"
            # terminal DELETE is a typed 409
            response = dispatch(service, "DELETE", f"/jobs/{job_id}")
            assert response[0] == 409
            assert _json_body(response)["error"]["type"] \
                == "JobNotCancellable"
        finally:
            service.drain()

    def test_tenant_filter(self, tmp_path):
        service = _service(tmp_path, workers_total=1)
        try:
            dispatch(service, "POST", "/jobs",
                     json.dumps(_spec(tenant="alice")).encode())
            dispatch(service, "POST", "/jobs",
                     json.dumps(_spec(tenant="bob")).encode())
            response = dispatch(service, "GET", "/jobs?tenant=bob")
            assert [job["tenant"] for job
                    in _json_body(response)["jobs"]] == ["bob"]
        finally:
            service.drain()

    def test_error_statuses(self, tmp_path):
        service = _service(tmp_path)
        try:
            assert dispatch(service, "GET", "/jobs/job-000099")[0] == 404
            assert dispatch(service, "PUT", "/jobs")[0] == 405
            assert dispatch(service, "GET", "/nope")[0] == 404
            status, _, body = dispatch(service, "POST", "/jobs",
                                       b"{not json")
            assert status == 400
            assert json.loads(body)["error"]["type"] == "InvalidJobSpec"
            assert dispatch(service, "POST", "/jobs", b"")[0] == 400
            status, _, body = dispatch(
                service, "POST", "/jobs",
                json.dumps(_spec(kind="nope")).encode())
            assert status == 400
            assert "kind" in json.loads(body)["error"]["message"]
        finally:
            service.drain()

    def test_queue_full_returns_429_with_retry_after(self, tmp_path):
        service = _service(
            tmp_path,
            default_quota=TenantQuota(max_queued=1, max_running=1,
                                      retry_after=2.0))
        try:
            # occupy the single worker, then fill the 1-deep queue
            dispatch(service, "POST", "/jobs", json.dumps(
                _spec(sleep_seconds=0.3, total=4, shards=4)).encode())
            dispatch(service, "POST", "/jobs",
                     json.dumps(_spec()).encode())
            status, headers, body = dispatch(
                service, "POST", "/jobs", json.dumps(_spec()).encode())
            assert status == 429
            assert ("Retry-After", "2") in headers
            assert json.loads(body)["error"]["type"] == "QueueFull"
        finally:
            service.drain()

    def test_metrics_and_healthz(self, tmp_path):
        service = _service(tmp_path)
        try:
            status, headers, body = dispatch(service, "GET", "/metrics")
            assert status == 200
            assert dict(headers)["Content-Type"].startswith(
                "text/plain")
            assert "repro_workers_total" in body.decode()
            status, _, body = dispatch(service, "GET",
                                       "/metrics?format=json")
            assert status == 200
            assert validate_document(json.loads(body)) == []
            status, _, body = dispatch(service, "GET", "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
        finally:
            service.drain()


class TestHttpServer:
    def test_real_socket_round_trip(self, tmp_path):
        service = _service(tmp_path)
        server = BackgroundServer(service)
        port = server.start()
        base = f"http://127.0.0.1:{port}"
        try:
            request = urllib.request.Request(
                f"{base}/jobs", method="POST",
                data=json.dumps(_spec(total=4, shards=2,
                                      seed=3)).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=10) as reply:
                assert reply.status == 201
                job_id = json.loads(reply.read())["job_id"]

            deadline = time.monotonic() + 30.0
            record = None
            while time.monotonic() < deadline:
                with urllib.request.urlopen(f"{base}/jobs/{job_id}",
                                            timeout=10) as reply:
                    record = json.loads(reply.read())
                if record["status"] in ("done", "failed", "cancelled"):
                    break
                time.sleep(0.05)
            assert record["status"] == "done"
            assert record["result"]["values"] == _reference_values(
                total=4, seed=3, shards=2)

            with urllib.request.urlopen(f"{base}/healthz",
                                        timeout=10) as reply:
                assert json.loads(reply.read())["status"] == "ok"

            bad = urllib.request.Request(
                f"{base}/jobs", method="POST",
                data=json.dumps(_spec(kind="nope")).encode())
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(bad, timeout=10)
            assert info.value.code == 400
            assert json.loads(info.value.read())["error"]["type"] \
                == "InvalidJobSpec"
        finally:
            server.stop()
            service.drain()


# ---------------------------------------------------------------------------
# correlated job event streams: GET /jobs/<id>/events + /metrics v2
# ---------------------------------------------------------------------------

class TestJobEventStream:
    def test_events_carry_correlation_ids(self, tmp_path):
        service = _service(tmp_path)
        try:
            record = service.submit(_spec(total=8, seed=3, shards=4))
            done = service.wait(record.job_id)
            assert done.status == "done"
            events = service.job_events(record.job_id)
            assert events
            kinds = {event["kind"] for event in events}
            assert "job" in kinds and "shard_done" in kinds
            for event in events:
                assert event["ctx"]["tenant"] == "alice"
                assert event["ctx"]["job_id"] == record.job_id
            shard_events = [e for e in events
                            if e["kind"] == "shard_done"]
            assert {e["ctx"]["shard_id"]
                    for e in shard_events} == {0, 1, 2, 3}
            assert all(e["ctx"]["seed"] is not None
                       for e in shard_events)
            # seq is strictly monotonic: a valid resume cursor
            seqs = [event["seq"] for event in events]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
            # the job result carries the same correlation ids
            assert done.result["correlation"]["tenant"] == "alice"
            assert done.result["correlation"]["job_id"] \
                == record.job_id
        finally:
            service.drain()

    def test_job_events_cursor_and_unknown_job(self, tmp_path):
        service = _service(tmp_path)
        try:
            record = service.submit(_spec(total=4, shards=2))
            service.wait(record.job_id)
            events = service.job_events(record.job_id)
            mid = events[len(events) // 2]["seq"]
            tail = service.job_events(record.job_id, after=mid)
            assert tail == [e for e in events if e["seq"] > mid]
            assert service.job_events(record.job_id,
                                      after=events[-1]["seq"]) == []
            with pytest.raises(UnknownJob):
                service.job_events("job-nope")
        finally:
            service.drain()

    def test_api_streams_ndjson(self, tmp_path):
        service = _service(tmp_path)
        try:
            record = service.submit(_spec(total=4, shards=2))
            service.wait(record.job_id)
            status, headers, body = dispatch(
                service, "GET", f"/jobs/{record.job_id}/events")
            assert status == 200
            assert dict(headers)["Content-Type"] \
                == "application/x-ndjson"
            events = [json.loads(line)
                      for line in body.decode().splitlines()]
            assert events == service.job_events(record.job_id)
            # ?after=N resumes past already-seen events
            mid = events[len(events) // 2]["seq"]
            status, _, body = dispatch(
                service, "GET",
                f"/jobs/{record.job_id}/events?after={mid}")
            assert status == 200
            tail = [json.loads(line)
                    for line in body.decode().splitlines()]
            assert all(event["seq"] > mid for event in tail)
            # malformed cursor is a typed 400, unknown job a 404
            status, _, body = dispatch(
                service, "GET",
                f"/jobs/{record.job_id}/events?after=xyz")
            assert status == 400
            status, _, _ = dispatch(service, "GET",
                                    "/jobs/nope/events")
            assert status == 404
            status, _, _ = dispatch(
                service, "DELETE", f"/jobs/{record.job_id}/events")
            assert status == 405
        finally:
            service.drain()

    def test_event_ring_spills_past_its_bound(self, tmp_path):
        service = _service(tmp_path, events_tail=5)
        try:
            record = service.submit(_spec(total=8, seed=3, shards=4))
            service.wait(record.job_id)
            # the in-memory ring stays bounded...
            with service._lock:
                assert len(service._job_events[record.job_id]) == 5
            # ...but the on-disk spill fills the gap: the cursor walks
            # the full history with no seq holes, starting at 1
            events = service.job_events(record.job_id)
            assert len(events) > 5
            seqs = [event["seq"] for event in events]
            assert seqs == list(range(1, len(events) + 1))
            # cursoring inside the spilled region works too
            tail = service.job_events(record.job_id, after=seqs[2])
            assert [event["seq"] for event in tail] == seqs[3:]
        finally:
            service.drain()

    def test_metrics_v2_with_per_shard_rollup(self, tmp_path):
        from repro.obs import SCHEMA_V2
        service = _service(tmp_path)
        try:
            record = service.submit(_spec(total=4, shards=2))
            service.wait(record.job_id)
            document = service.metrics()
            assert document["schema"] == SCHEMA_V2
            assert validate_document(document) == []
            assert document["labels"] == {"component": "repro.serve"}
            per_shard = document["metrics"]["per_shard"]
            shards = per_shard[record.job_id]
            assert set(shards) == {"0", "1"}
            for stats in shards.values():
                assert stats["done"] == 1
        finally:
            service.drain()


# ---------------------------------------------------------------------------
# circuit breakers: poison tenants back off, the service degrades typed
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def _trip(self, service, tenant="alice"):
        """Run one poison campaign to completion; its quarantine trips
        the tenant's breaker."""
        record = service.submit(
            _spec(tenant=tenant, mode="raise",
                  fail_shards=[0, 1, 2, 3]))
        done = service.wait(record.job_id)
        assert done.status == "done"
        assert service.breakers.state(tenant) == "open"
        return record

    def test_open_breaker_rejects_with_429_and_retry_after(
            self, tmp_path):
        from repro.errors import CircuitOpen
        service = _service(tmp_path)
        try:
            self._trip(service)
            with pytest.raises(CircuitOpen) as info:
                service.submit(_spec())
            assert info.value.http_status == 429
            assert info.value.retry_after > 0
            status, headers, body = dispatch(
                service, "POST", "/jobs",
                json.dumps(_spec()).encode())
            assert status == 429
            assert "Retry-After" in dict(headers)
            assert json.loads(body)["error"]["type"] == "CircuitOpen"
        finally:
            service.drain()

    def test_healthz_degrades_with_breaker_detail(self, tmp_path):
        service = _service(tmp_path)
        try:
            health = service.healthz()
            assert health["status"] == "ok"
            assert health["breakers"] == []
            self._trip(service)
            health = service.healthz()
            assert health["status"] == "degraded"
            [detail] = health["breakers"]
            assert detail["tenant"] == "alice"
            assert detail["state"] == "open"
            assert "quarantined" in detail["reason"]
        finally:
            service.drain()

    def test_breaker_isolates_tenants(self, tmp_path):
        service = _service(tmp_path)
        try:
            self._trip(service)
            record = service.submit(_spec(tenant="bob"))
            assert service.wait(record.job_id).status == "done"
            assert service.breakers.state("bob") == "closed"
        finally:
            service.drain()

    def test_half_open_probe_recovers_the_tenant(self, tmp_path):
        service = _service(tmp_path, breaker_cooldown=0.05)
        try:
            self._trip(service)
            time.sleep(0.2)     # cooldown elapses -> half_open probe
            record = service.submit(_spec())
            done = service.wait(record.job_id)
            assert done.status == "done"
            assert service.breakers.state("alice") == "closed"
            assert service.healthz()["status"] == "ok"
        finally:
            service.drain()

    def test_quarantined_shards_ride_in_the_result(self, tmp_path):
        service = _service(tmp_path)
        try:
            record = service.submit(
                _spec(mode="raise", fail_shards=[2]))
            done = service.wait(record.job_id)
            assert done.status == "done"
            assert [q["shard_id"]
                    for q in done.result["quarantined"]] == [2]
            # the healthy shards still merged
            assert len(done.result["values"]) == 4
        finally:
            service.drain()


# ---------------------------------------------------------------------------
# event spill + degraded saves: full-disk turns history lossy, never
# the job
# ---------------------------------------------------------------------------

class _OpFault:
    """Raise ENOSPC on every atomic write carrying one op tag."""

    def __init__(self, op):
        self.op = op
        self.hits = 0

    def before_write(self, op, path):
        import errno
        from repro.errors import InjectedIOFault
        if op == self.op:
            self.hits += 1
            raise InjectedIOFault(f"chaos: ENOSPC writing {path}",
                                  fault="enospc", op=op, path=path,
                                  errno_code=errno.ENOSPC)

    def torn_write(self, op, path):
        return False

    def after_write(self, op, path):
        pass


class TestSpillAndDegradedStore:
    def test_event_history_survives_restart_via_spill(self, tmp_path):
        first = _service(tmp_path)
        record = first.submit(_spec(total=8, seed=3, shards=4))
        first.wait(record.job_id)
        before = first.job_events(record.job_id)
        assert before
        first.drain()

        second = _service(tmp_path)
        try:
            after = second.job_events(record.job_id)
            assert after == before          # ring gone, spill answers
            mid = before[len(before) // 2]["seq"]
            assert second.job_events(record.job_id, after=mid) \
                == [e for e in before if e["seq"] > mid]
            # per-job numbering resumes past the spill, no seq reuse
            assert second._job_seq[record.job_id] == before[-1]["seq"]
        finally:
            second.drain()

    def test_enospc_on_job_records_degrades_not_fails(self, tmp_path):
        from repro.hostio import inject_faults
        service = _service(tmp_path)
        injector = _OpFault("job_record")
        try:
            with inject_faults(injector):
                record = service.submit(_spec(total=4, shards=2))
                done = service.wait(record.job_id)
            assert done.status == "done"    # in-memory record intact
            assert done.result["values"]
            assert injector.hits > 0        # every save was refused
            assert service.healthz()["status"] == "ok"
        finally:
            service.drain()
