"""Tests for the differential fuzzing subsystem (repro.fuzz)."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import OutputDivergence, WorkloadTrapped
from repro.eval.harness import Sweep, run_workload, verify_runs_agree
from repro.fuzz import (
    AccessSite, EXPECT_MAY, EXPECT_NO_TRAP, EXPECT_TRAP, attacks_for,
    check_attack, check_clean, ddmin_lines, expectation, generate_program,
    iteration_seed, minimize_source, render, run_fuzz, run_program,
)
from repro.fuzz.corpus import CorpusEntry, load_entry, save_failure
from repro.fuzz.driver import replay_entry
from repro.workloads import Workload

CONFIGS = ["baseline", "subheap", "wrapped"]


def _tiny_workload(name: str = "tiny", body: str = "return 0;") -> Workload:
    return Workload(name=name, suite="fuzz", description="",
                    paper_notes="",
                    source_fn=lambda scale: "int main(void) { %s }\n" % body)


# ---------------------------------------------------------------------------
# Generator determinism
# ---------------------------------------------------------------------------

class TestGeneratorDeterminism:
    def test_same_seed_same_source(self):
        for iteration in range(5):
            a = generate_program(42, iteration)
            b = generate_program(42, iteration)
            assert a.source == b.source
            assert [s.to_dict() for s in a.sites] \
                == [s.to_dict() for s in b.sites]

    def test_different_iterations_differ(self):
        sources = {generate_program(42, it).source for it in range(10)}
        assert len(sources) > 1

    def test_iteration_seed_is_stable(self):
        assert iteration_seed(0, 0) == iteration_seed(0, 0)
        assert iteration_seed(0, 1) != iteration_seed(0, 2)
        assert iteration_seed(1, 0) != iteration_seed(2, 0)

    def test_attack_render_differs_only_at_site(self):
        program = generate_program(7, 3)
        site = program.sites[0]
        attack = attacks_for(site)[0]
        mutated = render(program.spec, (attack.sid, attack.index))
        assert mutated != program.source

    def test_generated_programs_compile_and_run_clean(self):
        for iteration in range(5):
            program = generate_program(11, iteration)
            for config in CONFIGS:
                result = run_program(program.source, config)
                assert result.trap is None, (
                    f"iteration {iteration} config {config}: "
                    f"{result.trap}")


# ---------------------------------------------------------------------------
# Expectation matrix (paper Table 4 semantics)
# ---------------------------------------------------------------------------

def _site(**kwargs) -> AccessSite:
    base = dict(sid=0, obj="a0", region="heap", flow="direct",
                kind="write", length=8, safe_index=3, via_wrapper=False,
                scheme="subheap", member_offset_elems=0, object_elems=8,
                nested=False)
    base.update(kwargs)
    return AccessSite(**base)


class TestExpectationMatrix:
    def test_baseline_never_expects_trap(self):
        site = _site()
        for attack in attacks_for(site):
            assert expectation(site, attack, "baseline") \
                == EXPECT_NO_TRAP

    def test_overflow_expected_on_instrumented(self):
        site = _site()
        over = [a for a in attacks_for(site) if a.kind == "over"][0]
        assert expectation(site, over, "subheap") == EXPECT_TRAP
        assert expectation(site, over, "wrapped") == EXPECT_TRAP

    def test_no_promote_config_is_may(self):
        site = _site()
        over = [a for a in attacks_for(site) if a.kind == "over"][0]
        assert expectation(site, over, "subheap-np") == EXPECT_MAY

    def test_wrapper_object_intra_is_expected_evasion(self):
        # Alloc-wrapper objects have no layout table: intra-object
        # overflow coarsens to object bounds (paper Section 3 / Table 4).
        site = _site(via_wrapper=True, region="heap_wrapped",
                     member_offset_elems=2, object_elems=11, length=5,
                     flow="reload")
        intra = [a for a in attacks_for(site)
                 if a.kind.startswith("intra")]
        assert intra, "wrapper struct site should offer intra attacks"
        for attack in intra:
            assert expectation(site, attack, "wrapped") == EXPECT_NO_TRAP

    def test_global_table_intra_is_expected_evasion(self):
        site = _site(region="global", scheme="global_table",
                     member_offset_elems=0, object_elems=360, length=260,
                     flow="reload")
        intra = [a for a in attacks_for(site)
                 if a.kind.startswith("intra")]
        for attack in intra:
            assert expectation(site, attack, "subheap") == EXPECT_NO_TRAP

    def test_whole_object_overflow_always_expected(self):
        site = _site(via_wrapper=True, region="heap_wrapped",
                     flow="reload")
        over = [a for a in attacks_for(site) if a.kind == "over"][0]
        assert expectation(site, over, "wrapped") == EXPECT_TRAP


# ---------------------------------------------------------------------------
# Oracle
# ---------------------------------------------------------------------------

class TestOracle:
    def test_clean_program_has_no_divergence(self):
        program = generate_program(0, 0)
        _, divergences = check_clean(program.source, CONFIGS)
        assert divergences == []

    def test_oracle_catches_planted_divergence(self):
        # An attacked render fed to the *clean* oracle must surface as a
        # false positive on the instrumented configurations.
        program = generate_program(0, 1)
        site = next(s for s in program.sites
                    if not s.via_wrapper and s.scheme != "global_table")
        attack = [a for a in attacks_for(site) if a.kind == "over"][0]
        bad = render(program.spec, (attack.sid, attack.index))
        _, divergences = check_clean(bad, CONFIGS)
        assert divergences
        assert any(d.kind == "false_positive" for d in divergences)

    def test_attack_verdict_detected(self):
        program = generate_program(0, 2)
        site = next(s for s in program.sites
                    if not s.via_wrapper and s.scheme != "global_table")
        attack = [a for a in attacks_for(site) if a.kind == "over"][0]
        _, verdict = check_attack(program.spec, attack, CONFIGS)
        assert verdict.ok, [str(d) for d in verdict.divergences]
        assert verdict.detectable and verdict.detected

    def test_output_divergence_detected(self):
        runs = [run_workload(_tiny_workload("zero"), "baseline"),
                run_workload(_tiny_workload("three", "return 3;"),
                             "subheap")]
        with pytest.raises(OutputDivergence):
            verify_runs_agree(runs)


# ---------------------------------------------------------------------------
# Minimizer
# ---------------------------------------------------------------------------

class TestMinimizer:
    def test_ddmin_shrinks_to_needle(self):
        lines = [f"line{i}" for i in range(30)]
        lines[17] = "NEEDLE"
        result = ddmin_lines(lines, lambda ls: "NEEDLE" in ls)
        assert result == ["NEEDLE"]

    def test_ddmin_requires_failing_input(self):
        with pytest.raises(ValueError):
            ddmin_lines(["a", "b"], lambda ls: False)

    def test_minimize_shrinks_failing_program(self):
        # A known failing program: OOB loop over a global array traps
        # under the wrapped configuration.  The minimizer must keep the
        # failure while discarding the unrelated allocation noise.
        source = "\n".join([
            "int g_sink = 0;",
            "int ga[16];",
            "int unused_one = 1;",
            "int unused_two = 2;",
            "int main(void) {",
            "    int *p = (int *)malloc(10 * sizeof(int));",
            "    p[0] = 5;",
            "    g_sink += p[0];",
            "    free(p);",
            "    int i;",
            "    for (i = 0; i <= 16; i++) {",
            "        g_sink += ga[i];",
            "    }",
            "    return g_sink;",
            "}",
        ]) + "\n"

        def still_traps(candidate: str) -> bool:
            return run_program(candidate, "wrapped").trap is not None

        assert still_traps(source)
        minimized = minimize_source(source, still_traps)
        assert still_traps(minimized)
        assert len(minimized.splitlines()) < len(source.splitlines())
        assert "malloc" not in minimized

    def test_minimizer_survives_compile_errors(self):
        # Candidates that no longer parse must count as "not failing",
        # not crash the minimizer.
        source = "int ga[4];\nint main(void) {\n    int i = 9;\n" \
                 "    ga[i] = 1;\n    return 0;\n}\n"

        def predicate(candidate: str) -> bool:
            return run_program(candidate, "subheap").trap is not None

        minimized = minimize_source(source, predicate)
        assert predicate(minimized)


# ---------------------------------------------------------------------------
# Corpus persistence
# ---------------------------------------------------------------------------

class TestCorpus:
    def test_round_trip(self, tmp_path):
        entry = CorpusEntry(
            name="missed_attack-s1-i2-deadbeef", kind="missed_attack",
            detail="d", seed=1, iteration=2,
            iteration_seed=iteration_seed(1, 2),
            configs=["baseline", "wrapped"], source_sha256="deadbeef",
            repro="python -m repro.fuzz --seed 1 --start 2 "
                  "--iterations 1",
            config="wrapped", attack={"sid": 0, "kind": "over",
                                      "index": 9, "description": "x"})
        path = save_failure(str(tmp_path), entry, "original\n", "min\n")
        loaded = load_entry(path)
        assert loaded.to_dict() == entry.to_dict()
        base = os.path.join(str(tmp_path), entry.name)
        assert open(base + ".c").read() == "min\n"
        assert open(base + ".orig.c").read() == "original\n"

    def test_plant_bug_persists_and_replays(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        stats = run_fuzz(1, seed=5, plant_bug=True, corpus_dir=corpus,
                         log=lambda m: None, progress_every=0)
        assert not stats.ok
        assert stats.failures
        record = stats.failures[0]
        assert record.minimized_lines <= record.original_lines
        data = json.load(open(record.json_path))
        assert data["seed"] == 5
        assert "python -m repro.fuzz" in data["repro"]
        assert replay_entry(record.json_path, log=lambda m: None)


# ---------------------------------------------------------------------------
# Driver smoke (tier-1)
# ---------------------------------------------------------------------------

class TestDriverSmoke:
    def test_fuzz_smoke(self, tmp_path):
        stats = run_fuzz(25, seed=0, corpus_dir=str(tmp_path),
                         log=lambda m: None, progress_every=0)
        assert stats.ok, stats.summary()
        assert stats.programs == 25
        assert stats.attacks_injected > 0
        assert stats.attacks_detected == stats.attacks_detectable
        assert stats.evasions_confirmed == stats.expected_evasions
        assert not os.listdir(str(tmp_path))

    def test_stats_summary_renders(self, tmp_path):
        stats = run_fuzz(2, seed=1, corpus_dir=str(tmp_path),
                         log=lambda m: None, progress_every=0)
        text = stats.summary()
        assert "programs generated : 2" in text
        assert "divergences" in text


# ---------------------------------------------------------------------------
# temporal attack classes (lock-and-key policy armed)
# ---------------------------------------------------------------------------

class TestTemporalFuzz:
    def test_temporal_attacks_are_opt_in(self):
        """A default campaign draws no temporal attacks, so historical
        corpus digests and iteration streams stay byte-identical."""
        from repro.fuzz.attacks import TEMPORAL_KINDS, attacks_for
        from repro.fuzz.generator import generate_program
        program = generate_program(11, 0)
        for site in program.sites:
            kinds = {a.kind for a in attacks_for(site)}
            assert not kinds & set(TEMPORAL_KINDS)
            if site.temporal_ok:
                armed = {a.kind for a in
                         attacks_for(site, include_temporal=True)}
                assert set(TEMPORAL_KINDS) <= armed

    def test_armed_campaign_detects_temporal_attacks(self, tmp_path):
        stats = run_fuzz(10, seed=11, corpus_dir=str(tmp_path),
                         temporal="check", log=lambda m: None,
                         progress_every=0)
        assert stats.ok, stats.summary()
        assert stats.temporal == "check"
        temporal_traps = sum(
            count for (_config, trap), count
            in stats.trap_histogram.items()
            if trap == "TemporalViolation")
        assert temporal_traps > 0
        assert "temporal=check" in stats.summary()

    def test_temporal_stats_round_trip_with_back_compat(self):
        from repro.fuzz.driver import FuzzStats
        stats = FuzzStats(seed=1, configs=["baseline"],
                          temporal="check")
        again = FuzzStats.from_dict(stats.to_dict())
        assert again.temporal == "check"
        # records written before the policy existed lack the key
        old = stats.to_dict()
        del old["temporal"]
        assert FuzzStats.from_dict(old).temporal == "off"


# ---------------------------------------------------------------------------
# Harness satellites: typed errors + generalized agreement check
# ---------------------------------------------------------------------------

class TestHarnessSatellites:
    def test_run_workload_raises_typed_trap(self):
        bad = Workload(name="oob", suite="fuzz", description="",
                       paper_notes="",
                       source_fn=lambda scale: "int main(void) {\n"
                       "    int *p = (int *)malloc(4 * sizeof(int));\n"
                       "    int i = 6;\n    p[i] = 1;\n    return 0;\n}\n")
        with pytest.raises(WorkloadTrapped) as info:
            run_workload(bad, "wrapped")
        assert info.value.workload == "oob"
        assert info.value.config == "wrapped"
        assert info.value.trap is not None

    def test_sweep_verify_accepts_custom_configs(self):
        sweep = Sweep()
        workload = _tiny_workload("sweep-tiny")
        for config in ("baseline", "subheap-np"):
            sweep.run(workload, config)
        # Must not raise despite the standard triple not being present.
        sweep.verify_outputs_agree(["baseline", "subheap-np"])
        sweep.verify_outputs_agree()  # inferred from configs actually run
