"""Tests for the mini-C frontend: lexer, parser, types, sema."""

import pytest

from repro.errors import LexError, ParseError, TypeError_
from repro.lang import analyze, parse, tokenize
from repro.lang.ctypes import (
    ArrayType, CHAR, INT, LONG, PointerType, StructType, UINT, ULONG,
    common_int_type, decay,
)


class TestLexer:
    def test_keywords_and_idents(self):
        tokens = tokenize("int foo while whiley")
        assert [t.kind for t in tokens[:-1]] == [
            "keyword", "ident", "keyword", "ident"]

    def test_numbers(self):
        tokens = tokenize("42 0x2A 10UL 'a' '\\n'")
        assert [t.value for t in tokens[:-1]] == [42, 42, 10, 97, 10]

    def test_strings(self):
        tokens = tokenize(r'"hi\n" "a\"b"')
        assert tokens[0].text == "hi\n"
        assert tokens[1].text == 'a"b'

    def test_maximal_munch(self):
        tokens = tokenize("a<<=b >>= ->")
        assert [t.text for t in tokens[:-1]] == ["a", "<<=", "b", ">>=",
                                                 "->"]

    def test_comments(self):
        tokens = tokenize("a // line\n /* block\n */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("int a @ b;")

    def test_line_tracking(self):
        tokens = tokenize("a\nbb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3 and tokens[2].col == 3

    def test_adjacent_string_concatenation(self):
        unit = parse('char *s = "ab" "cd";')
        assert unit.globals[0].init.text == "abcd"


class TestTypes:
    def test_sizes(self):
        assert CHAR.size == 1 and INT.size == 4 and LONG.size == 8
        assert PointerType(INT).size == 8

    def test_struct_layout_alignment(self):
        s = StructType("S").define([
            ("c", CHAR), ("i", INT), ("p", PointerType(CHAR))])
        assert [f.offset for f in s.fields] == [0, 4, 8]
        assert s.size == 16 and s.align == 8

    def test_struct_tail_padding(self):
        s = StructType("S").define([("p", PointerType(CHAR)), ("c", CHAR)])
        assert s.size == 16

    def test_array_type(self):
        a = ArrayType(INT, 5)
        assert a.size == 20 and a.align == 4
        assert decay(a) == PointerType(INT)

    def test_common_int_type(self):
        assert common_int_type(CHAR, CHAR) == INT     # promotion
        assert common_int_type(INT, UINT) == UINT
        assert common_int_type(LONG, UINT) == LONG
        assert common_int_type(INT, ULONG) == ULONG

    def test_int_wrap(self):
        assert INT.wrap(1 << 31) == -(1 << 31)
        assert UINT.wrap(-1) == (1 << 32) - 1

    def test_struct_redefinition_rejected(self):
        s = StructType("S").define([("x", INT)])
        with pytest.raises(ValueError):
            s.define([("y", INT)])


class TestParser:
    def test_struct_and_function(self):
        unit = parse("""
            struct P { int x; int y; };
            int dist(struct P *p) { return p->x + p->y; }
        """)
        assert unit.structs[0].name == "P"
        assert unit.functions[0].name == "dist"

    def test_nested_struct_arrays(self):
        unit = parse("""
            struct Inner { int a; };
            struct Outer { struct Inner grid[3][2]; int tail; };
        """)
        outer = unit.structs[1]
        assert outer.size == 3 * 2 * 4 + 4

    def test_typedef(self):
        unit = parse("""
            typedef unsigned long size_t;
            size_t add(size_t a, size_t b) { return a + b; }
        """)
        assert unit.functions[0].ret == ULONG

    def test_function_pointer_declarator(self):
        unit = parse("int (*handler)(int, int);")
        declared = unit.globals[0].var_type
        assert declared.is_pointer and declared.pointee.is_function
        assert len(declared.pointee.params) == 2

    def test_function_pointer_parameter(self):
        unit = parse("int apply(int (*fn)(int), int x) { return fn(x); }")
        param = unit.functions[0].params[0]
        assert param.type.is_pointer

    def test_array_dimension_constant_folding(self):
        unit = parse("int buf[4 * 8 + sizeof(int)];")
        assert unit.globals[0].var_type.count == 36

    def test_precedence(self):
        unit = parse("int x = 2 + 3 * 4;")
        init = unit.globals[0].init
        assert init.op == "+"
        assert init.right.op == "*"

    def test_do_while(self):
        unit = parse("int f(void) { int i = 0; do { i++; } while (i < 3);"
                     " return i; }")
        assert unit.functions[0].body is not None

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int f(void) { return 1 }")

    def test_dangling_else_binds_inner(self):
        unit = parse("int f(int a, int b) {"
                     " if (a) if (b) return 1; else return 2;"
                     " return 3; }")
        outer_if = unit.functions[0].body.body[0]
        assert outer_if.otherwise is None
        assert outer_if.then.otherwise is not None


class TestSema:
    def test_member_offsets_annotated(self):
        program = analyze(parse("""
            struct S { int a; long b; };
            long get(struct S *s) { return s->b; }
        """))
        ret = program.functions["get"].body.body[0]
        assert ret.value.offset == 8

    def test_pointer_arith_types(self):
        program = analyze(parse("""
            long diff(int *a, int *b) { return a - b; }
            int *fwd(int *a, int n) { return a + n; }
        """))
        assert program.functions["diff"].body.body[0].value.ctype == LONG

    def test_string_interning(self):
        program = analyze(parse("""
            char *a = "x";
            char *b = "x";
            char *c = "y";
        """))
        assert len(program.strings) == 2

    def test_undeclared_identifier(self):
        with pytest.raises(TypeError_):
            analyze(parse("int f(void) { return nope; }"))

    def test_unknown_member(self):
        with pytest.raises(TypeError_):
            analyze(parse("struct S { int a; };"
                          "int f(struct S *s) { return s->b; }"))

    def test_call_arity_checked(self):
        with pytest.raises(TypeError_):
            analyze(parse("int g(int a) { return a; }"
                          "int f(void) { return g(1, 2); }"))

    def test_varargs_allows_extra(self):
        analyze(parse('int f(void) { printf("%d %d", 1, 2); return 0; }'))

    def test_assign_to_rvalue_rejected(self):
        with pytest.raises(TypeError_):
            analyze(parse("int f(int a) { (a + 1) = 2; return a; }"))

    def test_void_deref_rejected(self):
        with pytest.raises(TypeError_):
            analyze(parse("int f(void *p) { return *p; }"))

    def test_builtin_signatures_available(self):
        program = analyze(parse(
            "int f(void) { void *p = malloc(8); free(p); return 0; }"))
        assert "f" in program.functions

    def test_return_type_mismatch(self):
        # An aggregate cannot be produced from an integer.
        with pytest.raises(TypeError_):
            analyze(parse("struct S { int a; };"
                          "struct S f(struct S *p) { return 5; }"))
        # Integer-to-pointer returns are C-permissive (NULL idiom).
        analyze(parse("struct S { int a; };"
                      "struct S *g(void) { return NULL; }"))

    def test_redefinition_rejected(self):
        with pytest.raises(TypeError_):
            analyze(parse("int f(void) { return 0; }"
                          "int f(void) { return 1; }"))

    def test_break_outside_loop_is_parseable(self):
        # sema leaves loop nesting to codegen; ensure no crash here
        analyze(parse("int f(void) { while (1) { break; } return 0; }"))
