"""Tests for the 48-bit metadata MAC."""

from hypothesis import given, settings, strategies as st

from repro.ifp.mac import MAC_BITS, MAC_MASK, compute_mac, metadata_mac


class TestMac:
    def test_width(self):
        assert MAC_BITS == 48
        for i in range(50):
            assert compute_mac(i, (i, i * 3)) <= MAC_MASK

    def test_deterministic(self):
        assert compute_mac(1, (2, 3)) == compute_mac(1, (2, 3))

    def test_key_sensitivity(self):
        assert compute_mac(1, (2, 3)) != compute_mac(2, (2, 3))

    def test_word_order_sensitivity(self):
        assert compute_mac(1, (2, 3)) != compute_mac(1, (3, 2))

    def test_length_sensitivity(self):
        assert compute_mac(1, (0,)) != compute_mac(1, (0, 0))

    def test_metadata_mac_binds_all_fields(self):
        base = metadata_mac(7, 0x1000, 64, 0x2000)
        assert metadata_mac(7, 0x1008, 64, 0x2000) != base
        assert metadata_mac(7, 0x1000, 65, 0x2000) != base
        assert metadata_mac(7, 0x1000, 64, 0x2008) != base

    @given(key=st.integers(0, (1 << 64) - 1),
           words=st.lists(st.integers(0, (1 << 64) - 1), min_size=1,
                          max_size=4),
           bit=st.integers(0, 63))
    @settings(max_examples=200, deadline=None)
    def test_single_bit_flip_changes_mac(self, key, words, bit):
        """Any single-bit change to any word must change the MAC —
        the property that makes metadata tampering detectable."""
        original = compute_mac(key, words)
        for index in range(len(words)):
            flipped = list(words)
            flipped[index] ^= 1 << bit
            assert compute_mac(key, flipped) != original

    @given(key=st.integers(0, (1 << 64) - 1),
           words=st.lists(st.integers(0, (1 << 64) - 1), min_size=1,
                          max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_output_range(self, key, words):
        assert 0 <= compute_mac(key, words) <= MAC_MASK
