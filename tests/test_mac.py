"""Tests for the 48-bit metadata MAC."""

from hypothesis import assume, given, settings, strategies as st

from repro.ifp import IFPUnit, LayoutEntry, LayoutTable, PromoteOutcome
from repro.ifp.mac import MAC_BITS, MAC_MASK, compute_mac, metadata_mac
from repro.ifp.schemes.local_offset import METADATA_BYTES
from repro.mem import Memory


class TestMac:
    def test_width(self):
        assert MAC_BITS == 48
        for i in range(50):
            assert compute_mac(i, (i, i * 3)) <= MAC_MASK

    def test_deterministic(self):
        assert compute_mac(1, (2, 3)) == compute_mac(1, (2, 3))

    def test_key_sensitivity(self):
        assert compute_mac(1, (2, 3)) != compute_mac(2, (2, 3))

    def test_word_order_sensitivity(self):
        assert compute_mac(1, (2, 3)) != compute_mac(1, (3, 2))

    def test_length_sensitivity(self):
        assert compute_mac(1, (0,)) != compute_mac(1, (0, 0))

    def test_metadata_mac_binds_all_fields(self):
        base = metadata_mac(7, 0x1000, 64, 0x2000)
        assert metadata_mac(7, 0x1008, 64, 0x2000) != base
        assert metadata_mac(7, 0x1000, 65, 0x2000) != base
        assert metadata_mac(7, 0x1000, 64, 0x2008) != base

    @given(key=st.integers(0, (1 << 64) - 1),
           words=st.lists(st.integers(0, (1 << 64) - 1), min_size=1,
                          max_size=4),
           bit=st.integers(0, 63))
    @settings(max_examples=200, deadline=None)
    def test_single_bit_flip_changes_mac(self, key, words, bit):
        """Any single-bit change to any word must change the MAC —
        the property that makes metadata tampering detectable."""
        original = compute_mac(key, words)
        for index in range(len(words)):
            flipped = list(words)
            flipped[index] ^= 1 << bit
            assert compute_mac(key, flipped) != original

    @given(key=st.integers(0, (1 << 64) - 1),
           words=st.lists(st.integers(0, (1 << 64) - 1), min_size=1,
                          max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_output_range(self, key, words):
        assert 0 <= compute_mac(key, words) <= MAC_MASK


_HEAP = 0x40000
_TABLE = 0x50000
_OBJECT_SIZE = 48


def _record_fixture():
    """A local-offset object with its appended 128-bit metadata record,
    plus an IFP unit ready to promote a pointer into it."""
    memory = Memory()
    memory.map_range(_HEAP, 4096)
    unit = IFPUnit(memory)
    scheme = unit.local_offset
    md_addr = scheme.write_metadata(memory, _HEAP, _OBJECT_SIZE,
                                    layout_ptr=0, mac_key=unit.mac_key)
    tagged = scheme.make_pointer(_HEAP, _HEAP, _OBJECT_SIZE)
    return memory, unit, md_addr, tagged


class TestMetadataRecordTampering:
    """End-to-end MAC coverage of the 128-bit local-offset record
    (layout pointer 8B | size 2B | MAC 6B) through the promote engine."""

    def test_clean_record_promotes(self):
        _memory, unit, _md_addr, tagged = _record_fixture()
        result = unit.promote(tagged)
        assert result.outcome is PromoteOutcome.VALID
        assert (result.bounds.lower, result.bounds.upper) == (
            _HEAP, _HEAP + _OBJECT_SIZE)

    def test_every_record_bit_flip_detected(self):
        """Flip each of the record's 128 bits in turn: every flip must
        invalidate the promote.  The 48-bit MAC model predicts a miss
        probability of 2^-48 per single-bit tamper (a PRF output
        collision); at that rate the expected misses over 128 trials are
        ~4e-13, so the observed catch rate must be exactly 128/128."""
        memory, unit, md_addr, tagged = _record_fixture()
        mac_caught = 0
        for bit in range(METADATA_BYTES * 8):
            byte_addr = md_addr + bit // 8
            original = memory.load_int(byte_addr, 1)
            memory.store_int(byte_addr, original ^ (1 << (bit % 8)), 1)
            failures_before = unit.stats.mac_failures
            result = unit.promote(tagged)
            assert result.outcome is PromoteOutcome.METADATA_INVALID, (
                f"bit {bit} of the record tampered undetected")
            assert result.bounds is None
            mac_caught += unit.stats.mac_failures - failures_before
            memory.store_int(byte_addr, original, 1)
        assert unit.stats.promotes_metadata_invalid == METADATA_BYTES * 8
        # The layout-pointer (64) and MAC (48) fields never trip the
        # size plausibility gate, so at least those 112 flips must be
        # caught by MAC verification itself.
        assert mac_caught >= 64 + MAC_BITS
        # A tampered record must never poison the unit for clean ones.
        assert unit.promote(tagged).outcome is PromoteOutcome.VALID

    @given(record=st.binary(min_size=METADATA_BYTES,
                            max_size=METADATA_BYTES))
    @settings(max_examples=100, deadline=None)
    def test_random_record_replacement_detected(self, record):
        """Wholesale record replacement (a heap spray over metadata,
        paper Section 3.3.2): forging a record that passes both the
        size gate and the 48-bit MAC succeeds with probability ~2^-48
        per attempt, so every random replacement must be rejected."""
        memory, unit, md_addr, tagged = _record_fixture()
        original = bytes(memory.load_int(md_addr + i, 1)
                         for i in range(METADATA_BYTES))
        assume(record != original)
        for i, value in enumerate(record):
            memory.store_int(md_addr + i, value, 1)
        result = unit.promote(tagged)
        assert result.outcome is PromoteOutcome.METADATA_INVALID


def _figure9_fixture():
    """The Figure 9 struct with its layout table serialized into guest
    memory, and a pointer narrowed to ``S.array[0].v3`` (entry 3)."""
    memory = Memory()
    memory.map_range(_HEAP, 4096)
    memory.map_range(_TABLE, 4096)
    unit = IFPUnit(memory)
    table = LayoutTable("S", [
        LayoutEntry(0, 0, 24, 24),
        LayoutEntry(0, 0, 4, 4),
        LayoutEntry(0, 4, 20, 8),
        LayoutEntry(2, 0, 4, 4),
        LayoutEntry(2, 4, 8, 4),
        LayoutEntry(0, 20, 24, 4),
    ])
    data = table.serialize()
    for i, value in enumerate(data):
        memory.store_int(_TABLE + i, value, 1)
    scheme = unit.local_offset
    scheme.write_metadata(memory, _HEAP, table.object_size,
                          layout_ptr=_TABLE, mac_key=unit.mac_key)
    tagged = scheme.make_pointer(_HEAP + 4, _HEAP, table.object_size,
                                 subobject_index=3)
    return memory, unit, tagged, len(data), table.object_size


class TestNarrowingUnderCorruptedLayout:
    """The layout table carries no MAC (it is shared, read-only data);
    the walker must instead fail *soft* — corrupted entries may lose
    subobject precision but can never widen bounds past the object or
    hang the walk."""

    def test_clean_walk_narrows_exactly(self):
        _memory, unit, tagged, _table_len, _size = _figure9_fixture()
        result = unit.promote(tagged)
        assert result.narrowed
        assert (result.bounds.lower, result.bounds.upper) == (
            _HEAP + 4, _HEAP + 8)
        assert unit.stats.narrow_success == 1

    def test_every_table_bit_flip_fails_soft(self):
        memory, unit, tagged, table_len, object_size = _figure9_fixture()
        for bit in range(table_len * 8):
            byte_addr = _TABLE + bit // 8
            original = memory.load_int(byte_addr, 1)
            memory.store_int(byte_addr, original ^ (1 << (bit % 8)), 1)
            result = unit.promote(tagged)
            # Metadata itself is intact, so the promote stays valid and
            # the walk terminates; whatever bounds survive must sit
            # inside the object.
            assert result.outcome is PromoteOutcome.VALID, f"bit {bit}"
            assert result.bounds.lower >= _HEAP
            assert result.bounds.upper <= _HEAP + object_size
            memory.store_int(byte_addr, original, 1)
        # Some flips (malformed parents, inverted bounds) must have
        # been rejected by the walker's validity checks.
        assert unit.stats.narrow_walk_failures > 0
        assert unit.stats.narrow_success > 0
        assert unit.promote(tagged).narrowed
