"""Tests for the three object-metadata schemes (register + lookup)."""

import pytest

from repro.cache import HierarchyConfig
from repro.errors import ResourceExhausted
from repro.ifp import Bounds, IFPUnit, LayoutEntry, LayoutTable
from repro.ifp.poison import Poison
from repro.ifp.schemes import SubheapRegion
from repro.ifp.schemes.local_offset import METADATA_BYTES as LO_MD_BYTES
from repro.ifp.schemes.subheap import MAGIC
from repro.ifp.tag import unpack_tag
from repro.mem import Memory


@pytest.fixture
def unit():
    memory = Memory()
    memory.map_range(0x10000, 0x20000)
    return IFPUnit(memory, HierarchyConfig().build())


class TestLocalOffset:
    def test_register_lookup_roundtrip(self, unit):
        obj = 0x11000
        unit.local_offset.write_metadata(unit.port.memory, obj, 100, 0,
                                         unit.mac_key)
        pointer = unit.local_offset.make_pointer(obj + 40, obj, 100)
        result = unit.promote(pointer)
        assert result.bounds == Bounds(obj, obj + 100)

    def test_size_limit(self, unit):
        assert unit.local_offset.supports_size(1008)
        assert not unit.local_offset.supports_size(1009)
        assert not unit.local_offset.supports_size(0)

    def test_footprint_includes_record(self, unit):
        assert unit.local_offset.footprint(100) == 112 + LO_MD_BYTES

    def test_metadata_at_object_end(self, unit):
        # Metadata after the object keeps the pointer usable by legacy
        # code (it points at the object, not at metadata).
        obj = 0x11000
        md = unit.local_offset.write_metadata(
            unit.port.memory, obj, 100, 0, unit.mac_key)
        assert md == obj + 112  # align_up(100, 16)

    def test_unaligned_base_rejected(self, unit):
        with pytest.raises(ValueError):
            unit.local_offset.write_metadata(unit.port.memory, 0x11004,
                                             32, 0, unit.mac_key)

    def test_mac_tamper_detected(self, unit):
        obj = 0x11000
        md = unit.local_offset.write_metadata(
            unit.port.memory, obj, 100, 0, unit.mac_key)
        unit.port.memory.store_int(md + 8, 101, 2)  # corrupt the size
        pointer = unit.local_offset.make_pointer(obj, obj, 100)
        result = unit.promote(pointer)
        assert result.bounds is None
        assert unit.stats.mac_failures == 1

    def test_cleared_metadata_is_invalid(self, unit):
        obj = 0x11000
        unit.local_offset.write_metadata(unit.port.memory, obj, 100, 0,
                                         unit.mac_key)
        pointer = unit.local_offset.make_pointer(obj, obj, 100)
        unit.local_offset.clear_metadata(unit.port.memory, obj, 100)
        result = unit.promote(pointer)
        assert result.bounds is None

    def test_reencode_after_arithmetic(self, unit):
        obj = 0x11000
        unit.local_offset.write_metadata(unit.port.memory, obj, 100, 0,
                                         unit.mac_key)
        pointer = unit.local_offset.make_pointer(obj, obj, 100)
        tag = unpack_tag(pointer)
        moved = unit.local_offset.reencode_after_arithmetic(
            tag, obj, obj + 48)
        assert moved is not None
        # Lookup from the new address must find the same metadata.
        offset = moved.local_granule_offset(unit.config)
        metadata = ((obj + 48) & ~15) + offset * 16
        assert metadata == obj + 112

    def test_reencode_far_out_of_bounds_fails(self, unit):
        obj = 0x11000
        pointer = unit.local_offset.make_pointer(obj, obj, 100)
        tag = unpack_tag(pointer)
        assert unit.local_offset.reencode_after_arithmetic(
            tag, obj, obj + 4096) is None


class TestSubheap:
    def _setup_block(self, unit, slot_size=32, object_size=24,
                     layout_ptr=0):
        region = SubheapRegion(12, 0)
        index = unit.control.allocate_subheap_register(region)
        block = 0x14000
        slot_start = 32
        slot_end = slot_start + 10 * slot_size
        unit.subheap.write_block_metadata(
            unit.port.memory, block, region, slot_start, slot_end,
            slot_size, object_size, layout_ptr, unit.mac_key)
        return block, index, slot_start

    def test_slot_identification(self, unit):
        block, index, slot_start = self._setup_block(unit)
        for slot in (0, 3, 9):
            base = block + slot_start + slot * 32
            # Pointer into the middle of the object still finds its base.
            pointer = unit.subheap.make_pointer(base + 10, index)
            result = unit.promote(pointer)
            assert result.bounds == Bounds(base, base + 24)

    def test_pointer_outside_slot_array_invalid(self, unit):
        block, index, slot_start = self._setup_block(unit)
        pointer = unit.subheap.make_pointer(block + 8, index)  # in metadata
        result = unit.promote(pointer)
        assert result.bounds is None

    def test_bad_magic_invalid(self, unit):
        block, index, slot_start = self._setup_block(unit)
        unit.port.memory.store_int(block + 30, MAGIC ^ 1, 2)
        pointer = unit.subheap.make_pointer(block + slot_start, index)
        assert unit.promote(pointer).bounds is None

    def test_mac_tamper_detected(self, unit):
        block, index, slot_start = self._setup_block(unit)
        unit.port.memory.store_int(block + 12, 25, 4)  # object size
        pointer = unit.subheap.make_pointer(block + slot_start, index)
        assert unit.promote(pointer).bounds is None
        assert unit.stats.mac_failures == 1

    def test_unconfigured_register_invalid(self, unit):
        pointer = unit.subheap.make_pointer(0x14000, 9)
        assert unit.promote(pointer).bounds is None

    def test_register_exhaustion(self, unit):
        for order in range(16):
            unit.control.allocate_subheap_register(
                SubheapRegion(12, order * 64))
        with pytest.raises(ResourceExhausted):
            unit.control.allocate_subheap_register(SubheapRegion(20, 0))

    def test_register_reuse_for_same_region(self, unit):
        region = SubheapRegion(12, 0)
        first = unit.control.allocate_subheap_register(region)
        second = unit.control.allocate_subheap_register(SubheapRegion(12, 0))
        assert first == second

    def test_geometry_validation(self, unit):
        region = SubheapRegion(12, 0)
        with pytest.raises(ValueError):
            unit.subheap.write_block_metadata(
                unit.port.memory, 0x14000, region, 32, 5000, 32, 24, 0,
                unit.mac_key)  # slot_end beyond block


class TestGlobalTable:
    def test_register_lookup(self, unit):
        unit.control.global_table_base = 0x18000
        unit.global_table.write_row(unit.port.memory, 0x18000, 7,
                                    0x15000, 4096, 0)
        pointer = unit.global_table.make_pointer(0x15100, 7)
        result = unit.promote(pointer)
        assert result.bounds == Bounds(0x15000, 0x16000)

    def test_empty_row_invalid(self, unit):
        unit.control.global_table_base = 0x18000
        pointer = unit.global_table.make_pointer(0x15000, 3)
        assert unit.promote(pointer).bounds is None

    def test_cleared_row_invalid(self, unit):
        unit.control.global_table_base = 0x18000
        unit.global_table.write_row(unit.port.memory, 0x18000, 7,
                                    0x15000, 4096, 0)
        unit.global_table.clear_row(unit.port.memory, 0x18000, 7)
        pointer = unit.global_table.make_pointer(0x15000, 7)
        assert unit.promote(pointer).bounds is None

    def test_unconfigured_table_invalid(self, unit):
        pointer = unit.global_table.make_pointer(0x15000, 0)
        assert unit.promote(pointer).bounds is None

    def test_index_range_checked(self, unit):
        with pytest.raises(ValueError):
            unit.global_table.write_row(unit.port.memory, 0x18000, 4096,
                                        0x15000, 16, 0)
        with pytest.raises(ValueError):
            unit.global_table.make_pointer(0x15000, 4096)

    def test_base_zero_is_reserved(self, unit):
        with pytest.raises(ValueError):
            unit.global_table.write_row(unit.port.memory, 0x18000, 0,
                                        0, 16, 0)
