"""Tests for the IR definitions, the program loader, and error types."""

import pytest

from repro.compiler import CompilerOptions, compile_source
from repro.compiler.ir import Instr, IRProgram, MNEMONICS, Op
from repro.errors import (
    BoundsTrap, CompileError, GuestExit, LinkError, MemoryFault,
    PoisonTrap, ReproError, SimTrap, SourceError,
)
from repro.mem import Memory
from repro.mem.layout import DEFAULT_LAYOUT
from repro.vm import Machine
from repro.vm.loader import load_program


class TestOp:
    def test_categories(self):
        assert Op.PROMOTE.category == "promote"
        assert Op.LDBND.category == "bounds_ls"
        assert Op.STBND.category == "bounds_ls"
        assert Op.IFPADD.category == "ifp_arith"
        assert Op.IFPMAC.category == "ifp_arith"
        assert Op.LOAD.category == "base"
        assert Op.CALL.category == "base"

    def test_every_op_has_mnemonic(self):
        for op in Op:
            assert op in MNEMONICS

    def test_table3_mnemonics(self):
        # The paper's Table 3 names, verbatim.
        for name in ("promote", "ifpmac", "ldbnd", "stbnd", "ifpbnd",
                     "ifpadd", "ifpidx", "ifpchk", "ifpextract", "ifpmd"):
            assert name in MNEMONICS.values()


class TestInstr:
    def test_defaults(self):
        ins = Instr(Op.LI, dst=3, imm=42)
        assert ins.a == -1 and ins.args == [] and ins.code == -1

    def test_repr(self):
        assert "li" in repr(Instr(Op.LI, dst=0))

    def test_slots_prevent_typos(self):
        ins = Instr(Op.LI)
        with pytest.raises(AttributeError):
            ins.dest = 5  # typo for dst


class TestLoader:
    SOURCE = """
    int g_value = 7;
    int g_array[4] = {1, 2, 3, 4};
    char *g_msg = "hi";
    int helper(int x) { return x + g_value; }
    int main(void) { return helper(g_array[1]); }
    """

    def _load(self, options=None):
        program = compile_source(self.SOURCE,
                                 options or CompilerOptions.baseline())
        memory = Memory()
        image = load_program(program, memory, DEFAULT_LAYOUT)
        return program, memory, image

    def test_symbols_assigned(self):
        program, memory, image = self._load()
        for name in ("g_value", "g_array", "__func_main", "__func_helper"):
            assert name in image.symbols

    def test_initial_bytes_written(self):
        program, memory, image = self._load()
        assert memory.load_int(image.symbols["g_value"], 4) == 7
        base = image.symbols["g_array"]
        assert [memory.load_int(base + 4 * i, 4) for i in range(4)] \
            == [1, 2, 3, 4]

    def test_string_literal_placed(self):
        program, memory, image = self._load()
        string_symbols = [s for s in image.symbols if s.startswith("__str")]
        assert string_symbols
        assert memory.read_cstring(
            image.symbols[string_symbols[0]]) == b"hi"

    def test_function_addresses_resolve(self):
        program, memory, image = self._load()
        address = image.symbols["__func_main"]
        assert image.functions_by_address[address] == "main"

    def test_registrable_global_reserves_metadata(self):
        source = "long g_buf[8]; long *p;" \
                 "int main(void) { p = g_buf; return 0; }"
        program = compile_source(source, CompilerOptions.wrapped())
        glob = program.globals["g_buf"]
        assert glob.needs_registration
        assert glob.metadata_reserve >= 16

    def test_layout_tables_loaded(self):
        source = ("struct S { int a; int b; };"
                  "int main(void) {"
                  " struct S *s = (struct S*)malloc(sizeof(struct S));"
                  " s->a = 1; free(s); return 0; }")
        program = compile_source(source, CompilerOptions.wrapped())
        memory = Memory()
        image = load_program(program, memory, DEFAULT_LAYOUT)
        lt_symbol = next(s for s in image.symbols if s.startswith("__IFP_LT"))
        from repro.ifp import LayoutTable
        address = image.symbols[lt_symbol]
        table = LayoutTable.deserialize(memory.read_bytes(address, 48))
        assert len(table) == 3  # S, S.a, S.b

    def test_undefined_function_call_is_link_error(self):
        # A host-side (tooling) error, not a guest trap: it propagates.
        source = "int missing(int x); int main(void) { return missing(1); }"
        program = compile_source(source, CompilerOptions.baseline())
        with pytest.raises(LinkError):
            Machine(program).run()


class TestErrorHierarchy:
    def test_traps_are_repro_errors(self):
        for exc_type in (SimTrap, MemoryFault, PoisonTrap, BoundsTrap):
            assert issubclass(exc_type, ReproError)
        assert issubclass(MemoryFault, SimTrap)
        assert issubclass(PoisonTrap, SimTrap)

    def test_guest_exit_is_not_a_trap(self):
        assert not issubclass(GuestExit, SimTrap)
        assert GuestExit(3).code == 3

    def test_source_error_formats_location(self):
        error = SourceError("bad thing", line=4, col=7)
        assert "4:7" in str(error)

    def test_compile_error_is_not_a_trap(self):
        assert not issubclass(CompileError, SimTrap)

    def test_trap_payloads(self):
        trap = BoundsTrap("oob", pointer=0x10, lower=0, upper=8)
        assert trap.pointer == 0x10 and trap.upper == 8
        fault = MemoryFault("boom", address=0x99)
        assert fault.address == 0x99


class TestIRProgram:
    def test_function_lookup_error(self):
        program = compile_source("int main(void) { return 0; }",
                                 CompilerOptions.baseline())
        assert program.function("main").name == "main"
        with pytest.raises(CompileError):
            program.function("nope")

    def test_total_instr_count(self):
        program = compile_source("int main(void) { return 0; }",
                                 CompilerOptions.baseline())
        assert program.total_instr_count() == sum(
            len(f.instrs) for f in program.functions.values())

    def test_defense_field(self):
        assert compile_source("int main(void){return 0;}",
                              CompilerOptions.baseline()).defense == "none"
        assert compile_source("int main(void){return 0;}",
                              CompilerOptions.wrapped()).defense == "ifp"
        assert compile_source("int main(void){return 0;}",
                              CompilerOptions.asan()).defense == "asan"
        assert compile_source("int main(void){return 0;}",
                              CompilerOptions.mpx()).defense == "mpx"
