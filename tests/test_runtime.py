"""Tests for the runtime: allocators, global table, libc builtins."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import CompilerOptions
from repro.ifp.tag import Scheme, address_of, scheme_of
from tests.conftest import compile_and_run, run_all_configs


class TestFreeList:
    def _freelist(self, machine_factory):
        return machine_factory("baseline").freelist

    def test_alignment(self, machine_factory):
        freelist = self._freelist(machine_factory)
        for size in (1, 7, 24, 100):
            address, _c, _i = freelist.malloc(size)
            assert address % 16 == 0

    def test_reuse_after_free(self, machine_factory):
        freelist = self._freelist(machine_factory)
        first, _c, _i = freelist.malloc(64)
        freelist.free(first)
        second, _c, _i = freelist.malloc(64)
        assert second == first

    def test_coalescing(self, machine_factory):
        freelist = self._freelist(machine_factory)
        a, _c, _i = freelist.malloc(64)
        b, _c, _i = freelist.malloc(64)
        c, _c2, _i = freelist.malloc(64)
        freelist.free(a)
        freelist.free(b)  # must merge with a
        big, _c, _i = freelist.malloc(140)  # fits only in merged chunk
        assert big == a

    def test_usable_size(self, machine_factory):
        freelist = self._freelist(machine_factory)
        address, _c, _i = freelist.malloc(100)
        assert freelist.usable_size(address) >= 100

    def test_live_byte_accounting(self, machine_factory):
        freelist = self._freelist(machine_factory)
        before = freelist.live_bytes
        address, _c, _i = freelist.malloc(256)
        assert freelist.live_bytes > before
        freelist.free(address)
        assert freelist.live_bytes == before

    def test_invalid_free_traps(self, machine_factory):
        from repro.errors import SimTrap
        freelist = self._freelist(machine_factory)
        address, _c, _i = freelist.malloc(64)
        with pytest.raises(SimTrap):
            freelist.free(address + 4096)

    @given(sizes=st.lists(st.integers(1, 500), min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_no_overlap_property(self, sizes):
        """Live allocations never overlap."""
        from repro.cache import HierarchyConfig
        from repro.mem import Memory
        from repro.runtime.freelist import FreeListAllocator
        memory = Memory()
        freelist = FreeListAllocator(memory, HierarchyConfig().build(),
                                     0x100000, 0x200000)
        live = []
        for index, size in enumerate(sizes):
            address, _c, _i = freelist.malloc(size)
            for other, other_size in live:
                assert address + size <= other \
                    or other + other_size <= address
            live.append((address, size))
            if index % 3 == 2:
                victim = live.pop(0)
                freelist.free(victim[0])


class TestBuddy:
    def test_natural_alignment(self, machine_factory):
        buddy = machine_factory().buddy
        for order in (12, 14, 16):
            block, _instrs = buddy.alloc(order)
            assert block % (1 << order) == 0

    def test_free_and_reuse(self, machine_factory):
        buddy = machine_factory().buddy
        block, _ = buddy.alloc(12)
        buddy.free(block, 12)
        again, _ = buddy.alloc(12)
        assert again == block

    def test_buddy_merge(self, machine_factory):
        buddy = machine_factory().buddy
        a, _ = buddy.alloc(12)
        b, _ = buddy.alloc(12)
        if (a ^ b) == (1 << 12):  # true buddies
            buddy.free(a, 12)
            buddy.free(b, 12)
            merged, _ = buddy.alloc(13)
            assert merged == min(a, b)

    def test_oversize_rejected(self, machine_factory):
        buddy = machine_factory().buddy
        block, _ = buddy.alloc(40)
        assert block == 0


class TestWrappedAllocator:
    def test_small_allocation_local_offset(self, machine_factory):
        machine = machine_factory("wrapped")
        tagged, bounds, _c, _i = machine.wrapped_allocator.malloc(64, 0, 0)
        assert scheme_of(tagged) is Scheme.LOCAL_OFFSET
        assert bounds.size == 64
        # Promote through the hardware agrees with the allocator.
        result = machine.ifp.promote(tagged)
        assert result.bounds == bounds

    def test_large_allocation_global_table(self, machine_factory):
        machine = machine_factory("wrapped")
        tagged, bounds, _c, _i = machine.wrapped_allocator.malloc(
            5000, 0, 0)
        assert scheme_of(tagged) is Scheme.GLOBAL_TABLE
        assert machine.ifp.promote(tagged).bounds == bounds

    def test_free_invalidates_metadata(self, machine_factory):
        machine = machine_factory("wrapped")
        tagged, _b, _c, _i = machine.wrapped_allocator.malloc(64, 0, 0)
        machine.wrapped_allocator.free(tagged)
        assert machine.ifp.promote(tagged).bounds is None

    def test_array_allocation_drops_layout_table(self, machine_factory):
        machine = machine_factory("wrapped")
        # elem_size 16 but total 64 -> array: metadata must carry no LT.
        tagged, _b, _c, _i = machine.wrapped_allocator.malloc(64, 0x9999, 16)
        assert machine.wrapped_allocator.layout_ptr_of(tagged) == 0

    def test_usable_size(self, machine_factory):
        machine = machine_factory("wrapped")
        tagged, _b, _c, _i = machine.wrapped_allocator.malloc(100, 0, 0)
        assert machine.wrapped_allocator.usable_size(tagged) == 100


class TestSubheapAllocator:
    def test_same_size_objects_share_blocks(self, machine_factory):
        machine = machine_factory("subheap")
        allocator = machine.subheap_allocator
        pointers = [allocator.malloc(24, 0, 24)[0] for _ in range(8)]
        blocks = {address_of(p) & ~0xFFF for p in pointers}
        assert len(blocks) == 1

    def test_different_sizes_different_blocks(self, machine_factory):
        machine = machine_factory("subheap")
        allocator = machine.subheap_allocator
        a = allocator.malloc(24, 0, 24)[0]
        b = allocator.malloc(48, 0, 48)[0]
        assert (address_of(a) & ~0xFFF) != (address_of(b) & ~0xFFF)

    def test_promote_agrees_with_allocator(self, machine_factory):
        machine = machine_factory("subheap")
        tagged, bounds, _c, _i = machine.subheap_allocator.malloc(40, 0, 40)
        assert scheme_of(tagged) is Scheme.SUBHEAP
        assert machine.ifp.promote(tagged).bounds == bounds

    def test_interior_pointer_resolves_to_object(self, machine_factory):
        machine = machine_factory("subheap")
        tagged, bounds, _c, _i = machine.subheap_allocator.malloc(40, 0, 40)
        interior = tagged + 17
        assert machine.ifp.promote(interior).bounds == bounds

    def test_slot_reuse_after_free(self, machine_factory):
        machine = machine_factory("subheap")
        allocator = machine.subheap_allocator
        first = allocator.malloc(24, 0, 24)[0]
        allocator.free(first)
        second = allocator.malloc(24, 0, 24)[0]
        assert address_of(second) == address_of(first)

    def test_oversize_falls_back_to_global_table(self, machine_factory):
        machine = machine_factory("subheap")
        tagged, bounds, _c, _i = machine.subheap_allocator.malloc(
            100_000, 0, 0)
        assert scheme_of(tagged) is Scheme.GLOBAL_TABLE
        assert machine.ifp.promote(tagged).bounds == bounds

    def test_layout_table_separates_pools(self, machine_factory):
        machine = machine_factory("subheap")
        allocator = machine.subheap_allocator
        a = allocator.malloc(24, 0x10010, 24)[0]
        b = allocator.malloc(24, 0, 24)[0]
        assert (address_of(a) & ~0xFFF) != (address_of(b) & ~0xFFF)


class TestGlobalTableManager:
    def test_register_deregister_cycle(self, machine_factory):
        machine = machine_factory()
        manager = machine.global_table
        tagged, _c, _i = manager.register(0x40000, 128, 0)
        assert manager.row_info(tagged) == (0x40000, 128, 0)
        manager.deregister(tagged)
        assert machine.ifp.promote(tagged).bounds is None

    def test_row_reuse(self, machine_factory):
        machine = machine_factory()
        manager = machine.global_table
        first, _c, _i = manager.register(0x40000, 16, 0)
        manager.deregister(first)
        second, _c, _i = manager.register(0x50000, 16, 0)
        # The freed row is handed out again.
        from repro.ifp.tag import unpack_tag
        assert unpack_tag(first).payload == unpack_tag(second).payload


class TestLibc:
    def test_string_functions(self):
        source = """
        int main(void) {
            char buf[32];
            strcpy(buf, "hello");
            strcat(buf, " world");
            print_int(strlen(buf) * 100 + (strcmp(buf, "hello world") == 0));
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "1101"

    def test_mem_functions(self):
        source = """
        int main(void) {
            char a[16];
            char b[16];
            memset(a, 7, 16);
            memcpy(b, a, 16);
            print_int(memcmp(a, b, 16) == 0 ? b[9] : -1);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "7"

    def test_printf_formats(self):
        source = r"""
        int main(void) {
            printf("%d|%u|%x|%c|%s|%%|%ld\n",
                   -5, 7U, 255, 'Z', "str", (long)-9);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "-5|7|ff|Z|str|%|-9\n"

    def test_rand_is_deterministic(self):
        source = """
        int main(void) {
            srand(42);
            int a = rand();
            srand(42);
            int b = rand();
            print_int(a == b);
            return 0;
        }
        """
        for config, result in run_all_configs(source).items():
            assert result.output == "1", config

    def test_atoi_and_isalpha(self):
        source = """
        int main(void) {
            print_int(atoi("-123") * 10 + isalpha('q') + isalpha('3'));
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == str(-123 * 10 + 1)

    def test_isqrt(self):
        source = "int main(void) { print_int(isqrt(1000000)); return 0; }"
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "1000"

    def test_strchr(self):
        source = """
        int main(void) {
            char *s = "hello";
            char *e = strchr(s, 'l');
            print_int(e == NULL ? -1 : e - s);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "2"

    def test_legacy_pointer_from_libc_is_untagged(self):
        # Instrumented code promoting a strchr result must see a legacy
        # pointer (bypass), exactly the paper's libc story.
        source = """
        int main(void) {
            char *s = "hello";
            char *e = strchr(s, 'l');
            return *e == 'l' ? 0 : 1;
        }
        """
        result = compile_and_run(source, CompilerOptions.wrapped())
        assert result.ok and result.exit_code == 0
        assert result.stats.ifp.promotes_legacy >= 1


class TestKernelBoundary:
    def test_poisoned_pointer_to_libc_traps(self):
        """The modified kernel contract: tags are ignored, poison is not.
        A pointer poisoned by a failed check must fault even when handed
        to uninstrumented code."""
        source = """
        int main(void) {
            char *p = (char*)malloc(8);
            char *oob = p + 64;        /* wildly out: poisoned by ifpadd */
            memset(oob, 0, 4);         /* crosses into legacy code */
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.wrapped())
        assert result.detected_violation

    def test_tagged_but_valid_pointer_to_libc_works(self):
        source = """
        int main(void) {
            char *p = (char*)malloc(16);
            memset(p, 7, 16);
            print_int(p[9]);
            free(p);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.wrapped())
        assert result.ok and result.output == "7"
