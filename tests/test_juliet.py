"""Tests for the Juliet-style functional evaluation."""

import pytest

from repro.compiler import CompilerOptions
from repro.juliet import generate_cases, run_suite
from repro.juliet.runner import run_case


class TestGenerator:
    def test_case_matrix_shape(self):
        cases = generate_cases()
        assert len(cases) == 140
        # Every case has a good and bad twin.
        bad = {c.name.rsplit("_", 1)[0] for c in cases if c.is_bad}
        good = {c.name.rsplit("_", 1)[0] for c in cases if not c.is_bad}
        assert bad == good

    def test_cwe_families_present(self):
        cwes = {c.cwe for c in generate_cases()}
        assert cwes == {"CWE-121", "CWE-122", "CWE-124", "CWE-126",
                        "CWE-127", "intra-object"}

    def test_sources_compile(self):
        from repro.compiler import compile_source
        for case in generate_cases(regions=["stack"], flows=["01", "03"]):
            compile_source(case.source, CompilerOptions.wrapped())

    def test_subset_selection(self):
        cases = generate_cases(regions=["heap"], flows=["01"])
        assert all(c.region == "heap" and c.flow == "01" for c in cases)


class TestRunner:
    def test_single_bad_case_detected(self):
        case = next(c for c in generate_cases(regions=["stack"],
                                              flows=["01"]) if c.is_bad)
        result = run_case(case)
        assert result.trapped and result.passed

    def test_single_good_case_clean(self):
        case = next(c for c in generate_cases(regions=["stack"],
                                              flows=["01"])
                    if not c.is_bad)
        result = run_case(case)
        assert not result.trapped and result.passed

    def test_subset_suite_wrapped(self):
        cases = generate_cases(regions=["stack", "subobject"],
                               flows=["01", "02"])
        report = run_suite(CompilerOptions.wrapped(), cases)
        assert report.all_passed
        assert report.detected == report.bad_total
        assert report.false_positives == 0

    def test_subset_suite_subheap(self):
        cases = generate_cases(regions=["heap"], flows=["01", "04"])
        report = run_suite(CompilerOptions.subheap(), cases)
        assert report.all_passed

    def test_report_by_cwe(self):
        cases = generate_cases(regions=["stack"], flows=["01"])
        report = run_suite(CompilerOptions.wrapped(), cases)
        table = report.by_cwe()
        assert all(row["detected"] == row["bad"]
                   and row["false_positive"] == 0
                   for row in table.values())

    def test_summary_renders(self):
        cases = generate_cases(regions=["global"], flows=["01"])
        report = run_suite(CompilerOptions.wrapped(), cases)
        text = report.summary()
        assert "detection" in text and "false positives" in text


class TestTemporalFamilies:
    def test_lifetime_families_are_opt_in(self):
        from repro.juliet.cases import generate_temporal_cases
        default = {c.name for c in generate_cases()}
        temporal = {c.name for c in generate_temporal_cases()}
        assert temporal and not default & temporal
        assert all(c.cwe in ("CWE-415", "CWE-416")
                   for c in generate_temporal_cases())

    def test_lifetime_families_detect_under_check(self):
        from repro.juliet.cases import generate_temporal_cases
        cases = generate_temporal_cases(flows=["01", "02"])
        for options in (CompilerOptions.wrapped(),
                        CompilerOptions.subheap()):
            report = run_suite(options, cases, temporal="check")
            assert report.all_passed, report.summary()
            assert report.detected == report.bad_total
            assert report.false_positives == 0

    def test_big_variants_detect_under_check(self):
        from repro.juliet.cases import generate_temporal_cases
        cases = generate_temporal_cases(flows=["01"], big=True)
        report = run_suite(CompilerOptions.wrapped(), cases,
                           temporal="check")
        assert report.all_passed, report.summary()


@pytest.mark.slow
class TestFullSuite:
    def test_full_suite_paper_result(self):
        """The paper's Section 5.1 result: all vulnerabilities detected,
        all non-vulnerable cases pass."""
        report = run_suite(CompilerOptions.wrapped())
        assert report.detected == report.bad_total == 70
        assert report.false_positives == 0
