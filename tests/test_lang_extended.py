"""Tests for switch statements and unions."""

import pytest

from repro.compiler import CompilerOptions
from repro.errors import CompileError, ParseError, TypeError_
from repro.lang import analyze, parse
from repro.lang.ctypes import UnionType
from tests.conftest import compile_and_run, run_all_configs


class TestSwitch:
    def test_basic_dispatch(self):
        source = """
        int f(int x) {
            switch (x) {
                case 1: return 10;
                case 2: return 20;
                default: return -1;
            }
        }
        int main(void) {
            print_int(f(1) * 10000 + f(2) * 100 + f(7) * -1);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == str(10 * 10000 + 20 * 100 + 1)

    def test_fallthrough(self):
        source = """
        int main(void) {
            int r = 0;
            switch (2) {
                case 2: r += 1;
                case 3: r += 10;
                case 4: r += 100; break;
                case 5: r += 1000;
            }
            print_int(r);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "111"

    def test_no_default_falls_out(self):
        source = """
        int main(void) {
            int r = 5;
            switch (99) { case 1: r = 0; }
            print_int(r);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "5"

    def test_constant_expression_labels(self):
        source = """
        int main(void) {
            switch (8) { case 2 * 4: print_int(1); break; }
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == "1"

    def test_continue_targets_enclosing_loop(self):
        source = """
        int main(void) {
            int total = 0;
            int i;
            for (i = 0; i < 6; i++) {
                switch (i % 2) { case 0: continue; }
                total += i;
            }
            print_int(total);
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.baseline())
        assert result.output == str(1 + 3 + 5)

    def test_duplicate_case_rejected(self):
        with pytest.raises(TypeError_):
            analyze(parse("int f(int x) { switch (x) {"
                          " case 1: return 1; case 1: return 2; }"
                          " return 0; }"))

    def test_duplicate_default_rejected(self):
        with pytest.raises(ParseError):
            parse("int f(int x) { switch (x) {"
                  " default: return 1; default: return 2; } return 0; }")

    def test_statement_before_label_rejected(self):
        with pytest.raises(ParseError):
            parse("int f(int x) { switch (x) { return 1; } return 0; }")

    def test_non_integer_scrutinee_rejected(self):
        with pytest.raises(TypeError_):
            analyze(parse("int f(int *p) { switch (p) { case 0: return 1; }"
                          " return 0; }"))

    def test_continue_in_bare_switch_rejected(self):
        from repro.compiler import compile_source
        with pytest.raises(CompileError):
            compile_source("int main(void) {"
                           " switch (1) { case 1: continue; }"
                           " return 0; }", CompilerOptions.baseline())


class TestUnion:
    def test_layout(self):
        program = analyze(parse("""
            union U { int i; long l; char bytes[8]; };
        """))
        union = program.structs[0]
        assert isinstance(union, UnionType)
        assert union.size == 8 and union.align == 8
        assert all(f.offset == 0 for f in union.fields)

    def test_member_aliasing(self):
        source = """
        union U { unsigned int i; unsigned char b[4]; };
        int main(void) {
            union U u;
            u.i = 0x04030201;
            print_int(u.b[0] * 1000 + u.b[3]);
            return 0;
        }
        """
        for config, result in run_all_configs(source).items():
            assert result.ok, (config, result.trap)
            assert result.output == "1004", config

    def test_union_in_struct_instrumented(self):
        source = """
        union V { int i; long l; };
        struct T { int kind; union V v; int tail; };
        int *g;
        int main(void) {
            struct T *t = (struct T*)malloc(sizeof(struct T));
            t->tail = 7;
            g = &t->v.i;
            int *q = g;
            *q = 5;
            return t->tail;
        }
        """
        result = compile_and_run(source, CompilerOptions.wrapped())
        assert result.ok and result.exit_code == 7

    def test_union_narrowing_covers_whole_union(self):
        # A pointer into the union may be used as any member: narrowing
        # must stop at the union bounds, so writing the long through a
        # pointer derived from the int member stays legal.
        source = """
        union V { int i; long l; };
        struct T { union V v; long guard; };
        long *g;
        int main(void) {
            struct T *t = (struct T*)malloc(sizeof(struct T));
            g = &t->v.l;
            long *q = g;
            q[0] = 1;     /* whole union: fine */
            q[1] = 2;     /* beyond the union, into guard */
            return 0;
        }
        """
        result = compile_and_run(source, CompilerOptions.wrapped())
        # q[1] escapes the union subobject: detected thanks to the
        # union-level (not member-level) narrowing.
        assert result.detected_violation

    def test_union_layout_table_has_no_subentries(self):
        from repro.compiler.layout_gen import build_layout_table
        program = analyze(parse("""
            union U { int a; int b; };
            struct S { union U u; int tail; };
        """))
        table = build_layout_table(program.struct("S"), "S", 64)
        # entries: S, S.u, S.tail — nothing below the union.
        assert len(table) == 3
