"""Tests for repro.par: deterministic seed-splitting, shard planning,
the crash-recovering worker pool, checkpoint resume, and the merge
layer's sequential-identical guarantee."""

import json
import pickle

import pytest

from repro.compiler import CompilerOptions
from repro.errors import (
    MemoryFault, SourceError, StepBudgetExceeded, WorkloadTrapped,
)
from repro.fuzz.corpus import CorpusEntry
from repro.fuzz.driver import FuzzStats, run_fuzz
from repro.par import (
    GOLDEN_GAMMA, Checkpoint, CheckpointMismatch, PlanResult,
    ShardFailure, ShardPlan, ShardSpec, backoff_delay,
    canonical_metrics, derive_seed, diff_documents, jittered_backoff,
    plan_indices, plan_range, run_plan, shard_seed, split_evenly,
    splitmix64,
)
from repro.par.engine import (
    parallel_fuzz, parallel_resil, plan_fuzz, plan_resil,
)
from repro.resil.faults import FaultPlan

SELFTEST = "repro.par.campaigns:run_selftest_shard"


# ---------------------------------------------------------------------------
# seeds: the repo's one splitmix64
# ---------------------------------------------------------------------------

class TestSeeds:
    def test_splitmix64_golden_vector(self):
        # the standard splitmix64 test vector: first output for seed 0
        assert splitmix64(GOLDEN_GAMMA) == 0xE220A8397B1DCDAF

    def test_derive_seed_golden_values(self):
        # pinned: these exact values seed persisted resil campaigns
        assert derive_seed(0, 1) == 0xE220A8397B1DCDAF
        assert derive_seed(42, 3) == 0x47526757130F9F52

    def test_derive_seed_attempt_zero_is_identity(self):
        assert derive_seed(1234, 0) == 1234

    def test_retry_module_reexports_shared_helpers(self):
        # satellite 1: resil.retry must use the exact same splitmix64
        from repro.resil import retry
        assert retry.derive_seed is derive_seed
        assert retry.backoff_delay is backoff_delay

    def test_shard_seed_distinct_and_64bit(self):
        seeds = [shard_seed(7, i) for i in range(100)]
        assert len(set(seeds)) == 100
        assert all(0 <= s < 2 ** 64 for s in seeds)

    def test_shard_seed_differs_from_retry_namespace(self):
        # domain separation: shard i's seed is not retry attempt i's
        assert shard_seed(0, 0) != derive_seed(0, 1)

    def test_shard_seed_rejects_negative_index(self):
        with pytest.raises(ValueError):
            shard_seed(0, -1)

    def test_backoff_delay_doubles(self):
        assert [backoff_delay(0.1, a) for a in range(4)] \
            == [0.1, 0.2, 0.4, 0.8]

    def test_jittered_backoff_golden_values(self):
        # pinned: seeded jitter must stay byte-stable across refactors
        # (retry timing is part of the deterministic-replay contract)
        assert [jittered_backoff(0.1, a, 7) for a in range(4)] \
            == pytest.approx([0.11632463251904675,
                              0.19993571527220494,
                              0.30160054653054746,
                              0.8571751160925519])

    def test_jittered_backoff_varies_by_seed_not_randomness(self):
        assert jittered_backoff(0.1, 0, 7) \
            == jittered_backoff(0.1, 0, 7)
        assert jittered_backoff(0.1, 0, 7) != jittered_backoff(0.1, 0, 8)

    def test_jittered_backoff_is_bounded_by_spread(self):
        for attempt in range(6):
            for seed in range(32):
                delay = jittered_backoff(0.1, attempt, seed, spread=0.5)
                plain = backoff_delay(0.1, attempt)
                assert 0.75 * plain <= delay <= 1.25 * plain

    def test_jittered_backoff_zero_spread_is_plain_backoff(self):
        assert [jittered_backoff(0.1, a, 7, spread=0.0)
                for a in range(4)] \
            == [backoff_delay(0.1, a) for a in range(4)]


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------

class TestPlan:
    def test_split_evenly_partitions_contiguously(self):
        chunks = split_evenly(10, 3)
        assert chunks == [(0, 4), (4, 3), (7, 3)]
        assert sum(count for _, count in chunks) == 10

    def test_split_evenly_more_parts_than_items(self):
        assert split_evenly(2, 5) == [(0, 1), (1, 1)]

    def test_plan_range_covers_the_range_in_order(self):
        plan = plan_range("selftest", 3, 11, params={}, shards=4)
        spans = [(s.items[0], s.items[1]) for s in plan.shards]
        assert sum(count for _, count in spans) == 11
        ends = [start + count for start, count in spans]
        starts = [start for start, _ in spans]
        assert starts[1:] == ends[:-1]     # contiguous, ordered

    def test_plan_shards_get_distinct_derived_seeds(self):
        plan = plan_indices("selftest", 9, list(range(8)), params={},
                            shards=4)
        seeds = [s.seed for s in plan.shards]
        assert seeds == [shard_seed(9, i) for i in range(4)]
        assert len(set(seeds)) == 4

    def test_plan_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ShardPlan(kind="nope", seed=0, params={}, shards=[])

    def test_fingerprint_is_stable_and_content_sensitive(self):
        a = plan_indices("selftest", 1, [0, 1], params={"x": 1},
                         shards=2)
        b = plan_indices("selftest", 1, [0, 1], params={"x": 1},
                         shards=2)
        c = plan_indices("selftest", 2, [0, 1], params={"x": 1},
                         shards=2)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_plan_round_trips_through_dict(self):
        plan = plan_indices("selftest", 5, list(range(6)),
                            params={"mode": "ok"}, shards=3)
        again = ShardPlan.from_dict(plan.to_dict())
        assert again.fingerprint() == plan.fingerprint()
        assert again.shards[1].items == plan.shards[1].items


# ---------------------------------------------------------------------------
# satellite 2: artifacts must survive pickling (multiprocessing) and
# JSON round-trips (checkpoint shard results)
# ---------------------------------------------------------------------------

class TestPicklability:
    def test_errors_pickle_with_custom_init_signatures(self):
        trap = StepBudgetExceeded("budget", executed=10, limit=5)
        cases = [
            SourceError("bad token", line=3, col=7),
            MemoryFault("unmapped", address=0xDEAD),
            trap,
            WorkloadTrapped("treeadd", "wrapped", trap),
        ]
        for exc in cases:
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert str(clone) == str(exc)
            for key, value in exc.__dict__.items():
                cloned = clone.__dict__[key]
                if isinstance(value, BaseException):
                    # exceptions compare by identity; match by repr
                    assert repr(cloned) == repr(value)
                else:
                    assert cloned == value, key

    def test_compiler_options_pickle(self):
        options = CompilerOptions.subheap()
        clone = pickle.loads(pickle.dumps(options))
        assert clone == options

    def test_fault_plan_json_round_trip(self):
        plan = FaultPlan.single("metadata_corrupt", seed=3)
        clone = FaultPlan.from_dict(
            json.loads(json.dumps(plan.to_dict())))
        assert clone == plan
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_corpus_entry_json_round_trip(self):
        entry = CorpusEntry(
            name="x-s1-i2-abc", kind="false_positive", detail="d",
            seed=1, iteration=2, iteration_seed=99,
            configs=["baseline"], source_sha256="ab" * 32,
            repro="python -m repro.fuzz --seed 1",
            config="baseline", extra={"minimized_lines": 5})
        clone = CorpusEntry.from_dict(
            json.loads(json.dumps(entry.to_dict())))
        assert clone == entry
        assert pickle.loads(pickle.dumps(entry)) == entry

    def test_fuzz_stats_round_trip_is_lossless(self):
        stats = FuzzStats(seed=3, configs=["baseline", "wrapped"])
        stats.programs = 4
        stats.attacks_injected = 2
        stats.trap_histogram[("wrapped", "PoisonTrap")] = 2
        clone = FuzzStats.from_dict(
            json.loads(json.dumps(stats.to_dict())))
        assert clone.to_dict() == stats.to_dict()
        assert clone.trap_histogram == stats.trap_histogram

    def test_shard_failure_round_trip(self):
        failure = ShardFailure(shard_id=3, reason="timeout",
                               attempts=2, detail="budget")
        assert ShardFailure.from_dict(
            json.loads(json.dumps(failure.to_dict()))) == failure


# ---------------------------------------------------------------------------
# the pool: determinism, work stealing, crash recovery
# ---------------------------------------------------------------------------

def _selftest_plan(seed, total, shards, **params):
    params.setdefault("fail_shards", [])
    return plan_indices("selftest", seed, list(range(total)),
                        params=params, shards=shards)


def _values(outcome: PlanResult, plan: ShardPlan):
    return [outcome.results[s.shard_id]["value"] for s in plan.shards]


class TestPool:
    def test_inline_equals_multiprocess(self):
        inline = run_plan(_selftest_plan(7, 20, 6), SELFTEST, jobs=1)
        plan = _selftest_plan(7, 20, 6)
        multi = run_plan(plan, SELFTEST, jobs=3)
        assert _values(multi, plan) \
            == _values(inline, _selftest_plan(7, 20, 6))
        assert multi.ok and inline.ok

    def test_raise_becomes_typed_failure_after_retries(self):
        plan = _selftest_plan(2, 8, 4, mode="raise", fail_shards=[1])
        outcome = run_plan(plan, SELFTEST, jobs=2, retries=1,
                           backoff_base=0.01)
        assert [f.shard_id for f in outcome.failures] == [1]
        assert outcome.failures[0].reason == "error"
        assert outcome.failures[0].attempts == 2
        assert outcome.retries == 1
        assert sorted(outcome.results) == [0, 2, 3]

    def test_worker_crash_is_recovered_and_respawned(self):
        plan = _selftest_plan(2, 8, 4, mode="crash", fail_shards=[0])
        outcome = run_plan(plan, SELFTEST, jobs=2, retries=1,
                           backoff_base=0.01)
        assert [f.reason for f in outcome.failures] == ["crash"]
        assert sorted(outcome.results) == [1, 2, 3]
        assert sum(w.respawns for w in outcome.workers) >= 2

    def test_wall_clock_budget_terminates_hung_shard(self):
        plan = _selftest_plan(2, 8, 4, mode="hang", fail_shards=[2],
                              hang_seconds=60.0)
        outcome = run_plan(plan, SELFTEST, jobs=2, retries=1,
                           backoff_base=0.01, shard_timeout=0.5)
        assert [f.reason for f in outcome.failures] == ["timeout"]
        assert sorted(outcome.results) == [0, 1, 3]

    def test_flaky_shard_recovers_within_retry_budget(self):
        plan = _selftest_plan(2, 8, 4, mode="flaky", fail_shards=[3],
                              succeed_attempt=1)
        outcome = run_plan(plan, SELFTEST, jobs=2, retries=2,
                           backoff_base=0.01)
        assert outcome.ok
        assert outcome.retries == 1
        # the recovered shard's payload matches a clean sequential run
        # (the selftest runner's 'attempt' diagnostic aside)
        reference = run_plan(_selftest_plan(2, 8, 4), SELFTEST, jobs=1)
        assert outcome.results[3]["value"] \
            == reference.results[3]["value"]
        assert outcome.results[3]["items"] \
            == reference.results[3]["items"]

    def test_steals_are_counted(self):
        plan = _selftest_plan(7, 20, 6)
        outcome = run_plan(plan, SELFTEST, jobs=3)
        assert outcome.steals \
            == sum(w.steals for w in outcome.workers)


class TestCheckpoint:
    def test_resume_skips_completed_shards(self, tmp_path):
        marker = tmp_path / "marker"
        marker.touch()
        params = {"mode": "marker", "fail_shards": [1],
                  "marker": str(marker)}
        plan = plan_indices("selftest", 3, list(range(12)),
                            params=params, shards=4)
        first = run_plan(plan, SELFTEST, jobs=2, retries=0,
                         checkpoint=Checkpoint(str(tmp_path / "ck")))
        assert [f.shard_id for f in first.failures] == [1]

        marker.unlink()     # the environmental failure clears
        plan_again = plan_indices("selftest", 3, list(range(12)),
                                  params=params, shards=4)
        second = run_plan(plan_again, SELFTEST, jobs=2, retries=0,
                          checkpoint=Checkpoint(str(tmp_path / "ck")))
        assert sorted(second.restored) == [0, 2, 3]
        assert second.executed == [1]
        assert second.ok

        # merged values match a run that never failed
        clean = run_plan(_selftest_plan(3, 12, 4), SELFTEST, jobs=1)
        assert _values(second, plan_again) \
            == _values(clean, _selftest_plan(3, 12, 4))

    def test_checkpoint_rejects_a_different_plan(self, tmp_path):
        checkpoint = Checkpoint(str(tmp_path / "ck"))
        run_plan(_selftest_plan(3, 8, 4), SELFTEST, jobs=1,
                 checkpoint=checkpoint)
        with pytest.raises(CheckpointMismatch):
            Checkpoint(str(tmp_path / "ck")).open(
                _selftest_plan(4, 8, 4))

    def test_fully_restored_plan_runs_nothing(self, tmp_path):
        checkpoint = Checkpoint(str(tmp_path / "ck"))
        run_plan(_selftest_plan(3, 8, 4), SELFTEST, jobs=1,
                 checkpoint=checkpoint)
        again = run_plan(_selftest_plan(3, 8, 4), SELFTEST, jobs=2,
                         checkpoint=Checkpoint(str(tmp_path / "ck")))
        assert not again.executed
        assert sorted(again.restored) == [0, 1, 2, 3]


# ---------------------------------------------------------------------------
# merge: sequential-identical campaign outputs
# ---------------------------------------------------------------------------

class TestMergeDeterminism:
    FUZZ_CONFIGS = ("baseline", "wrapped")

    def test_parallel_fuzz_matches_sequential(self, tmp_path):
        sequential = run_fuzz(
            8, seed=11, configs=list(self.FUZZ_CONFIGS),
            corpus_dir=str(tmp_path / "seq"), plant_bug=True,
            log=lambda message: None, progress_every=0)
        plan = plan_fuzz(8, 11, configs=list(self.FUZZ_CONFIGS),
                         corpus_dir=str(tmp_path / "par"),
                         plant_bug=True, jobs=2)
        merged, outcome = parallel_fuzz(plan, jobs=2)
        assert outcome.ok

        expected = sequential.to_dict()
        actual = merged.to_dict()
        expected.pop("elapsed"), actual.pop("elapsed")
        # failure records embed their corpus paths; the two runs use
        # different directories by construction — normalize those
        normalized = json.loads(
            json.dumps(expected).replace(str(tmp_path / "seq"),
                                         str(tmp_path / "par")))
        assert actual == normalized

        seq_dir, par_dir = tmp_path / "seq", tmp_path / "par"
        assert sorted(p.name for p in seq_dir.iterdir()) \
            == sorted(p.name for p in par_dir.iterdir())
        for path in seq_dir.iterdir():
            assert (par_dir / path.name).read_bytes() \
                == path.read_bytes(), path.name

    def test_temporal_plans_keep_old_fingerprints(self, tmp_path):
        """Back-compat: plans built before the temporal policy existed
        carry no ``temporal`` params key, and planning with the default
        policy must reproduce them byte-for-byte (same fingerprint) so
        old checkpoint manifests keep verifying."""
        default = plan_fuzz(4, 7, configs=["baseline"],
                            corpus_dir=str(tmp_path / "c"), jobs=2)
        assert "temporal" not in default.params
        # a pre-temporal manifest round-trips to the same fingerprint
        old_manifest = json.loads(json.dumps(default.to_dict()))
        assert "temporal" not in old_manifest["params"]
        assert ShardPlan.from_dict(old_manifest).fingerprint() \
            == default.fingerprint()
        # arming the policy is recorded and changes the fingerprint
        armed = plan_fuzz(4, 7, configs=["baseline"],
                          corpus_dir=str(tmp_path / "c"), jobs=2,
                          temporal="check")
        assert armed.params["temporal"] == "check"
        assert armed.fingerprint() != default.fingerprint()

    def test_old_manifest_without_temporal_key_still_executes(
            self, tmp_path):
        plan = plan_fuzz(2, 3, configs=["baseline"],
                         corpus_dir=str(tmp_path / "c"), jobs=1,
                         inject=False)
        revived = ShardPlan.from_dict(
            json.loads(json.dumps(plan.to_dict())))
        merged, outcome = parallel_fuzz(revived, jobs=1)
        assert outcome.ok
        assert merged.temporal == "off"

    def test_armed_juliet_plan_covers_temporal_cases(self):
        from repro.juliet.cases import generate_cases, \
            generate_temporal_cases
        from repro.par.engine import plan_juliet
        default = plan_juliet(jobs=2)
        armed = plan_juliet(jobs=2, temporal="check")
        assert "temporal" not in default.params
        assert armed.params["temporal"] == "check"
        spatial, temporal = len(generate_cases()), \
            len(generate_temporal_cases())
        assert sum(len(s.items) for s in default.shards) == spatial
        assert sum(len(s.items) for s in armed.shards) \
            == spatial + temporal

    def test_parallel_resil_matches_sequential(self):
        from repro.resil.matrix import SCHEMES, run_campaign
        kwargs = dict(workloads=("treeadd",), schemes=SCHEMES,
                      faults=("metadata_corrupt",), seed=4)
        sequential = run_campaign(log=lambda message: None, **kwargs)
        plan = plan_resil(jobs=2, **{k: list(v) if isinstance(v, tuple)
                                     else v for k, v in kwargs.items()})
        merged, outcome = parallel_resil(plan, jobs=2)
        assert outcome.ok
        assert canonical_metrics(merged.to_dict()) \
            == canonical_metrics(sequential.to_dict())
        assert merged.ok == sequential.ok


class TestDiffDocuments:
    def test_timing_fields_are_ignored_by_default(self):
        a = {"elapsed": 1.0, "runs_per_second": 9.0, "count": 3,
             "nested": {"wall_seconds": 2.0, "x": 1}}
        b = {"elapsed": 5.0, "runs_per_second": 2.0, "count": 3,
             "nested": {"wall_seconds": 9.0, "x": 1}}
        assert diff_documents(a, b) == []
        assert diff_documents(a, b, ignore_timing=False)

    def test_real_differences_are_reported(self):
        differences = diff_documents({"count": 3}, {"count": 4})
        assert len(differences) == 1
        assert "count" in differences[0]

    def test_par_diff_cli(self, tmp_path, capsys):
        from repro.par.__main__ import main
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps({"n": 1, "elapsed": 1.0}))
        b.write_text(json.dumps({"n": 1, "elapsed": 2.0}))
        assert main(["diff", str(a), str(b)]) == 0
        b.write_text(json.dumps({"n": 2, "elapsed": 2.0}))
        assert main(["diff", str(a), str(b)]) == 1
        capsys.readouterr()


# ---------------------------------------------------------------------------
# obs integration: shard events drive the utilization report
# ---------------------------------------------------------------------------

class TestPoolObservability:
    def test_events_stream_written_and_rendered(self, tmp_path):
        from repro.obs.__main__ import render_pool_events
        from repro.par.engine import _execute
        plan = _selftest_plan(6, 12, 4)
        outcome = _execute(plan, jobs=2, checkpoint_dir=None,
                           shard_timeout=None, shard_retries=2,
                           backoff_base=0.01, log=None,
                           events_out=str(tmp_path / "events.jsonl"))
        assert outcome.ok
        records = [json.loads(line) for line in
                   (tmp_path / "events.jsonl").read_text().splitlines()]
        kinds = {record["kind"] for record in records}
        assert "shard_start" in kinds and "shard_done" in kinds
        report = render_pool_events(records)
        assert "worker 0" in report and "worker 1" in report
        assert "4 shards ok" in report

    def test_utilization_metrics_shape(self):
        plan = _selftest_plan(6, 8, 4)
        outcome = run_plan(plan, SELFTEST, jobs=2)
        metrics = outcome.utilization_metrics()
        assert metrics["shards_executed"] == 4
        assert set(metrics["workers"]) == {"0", "1"}
        for stats in metrics["workers"].values():
            assert 0.0 <= stats["utilization"]


# ---------------------------------------------------------------------------
# graceful drain: stop event + SIGTERM/SIGINT handler
# ---------------------------------------------------------------------------

class TestDrain:
    def _drain_after_first_shard(self, jobs, tmp_path):
        """Set the stop event off the bus as soon as one shard lands;
        the run must checkpoint what finished and report drained."""
        import threading

        from repro.obs.events import EventBus, ShardDoneEvent

        stop = threading.Event()
        bus = EventBus()
        bus.subscribe(lambda event: stop.set()
                      if isinstance(event, ShardDoneEvent) else None)
        plan = _selftest_plan(5, 12, 6, sleep_seconds=0.05)
        checkpoint = Checkpoint(str(tmp_path / "ck"))
        outcome = run_plan(plan, SELFTEST, jobs=jobs, bus=bus,
                           checkpoint=checkpoint, stop=stop)
        assert outcome.drained
        assert not outcome.ok or len(outcome.executed) < 6
        assert "drained" in outcome.summary()
        assert outcome.utilization_metrics()["drained"] == 1
        statuses = Checkpoint(str(tmp_path / "ck")).statuses()
        assert set(statuses.values()) <= {"done", "pending"}
        assert list(statuses.values()).count("done") \
            == len(outcome.executed)

        # resuming the same plan finishes it, values sequential-equal
        resumed = run_plan(_selftest_plan(5, 12, 6,
                                          sleep_seconds=0.05),
                           SELFTEST, jobs=jobs,
                           checkpoint=Checkpoint(str(tmp_path / "ck")))
        assert resumed.ok and not resumed.drained
        assert sorted(resumed.restored) == sorted(outcome.executed)
        clean = run_plan(_selftest_plan(5, 12, 6), SELFTEST, jobs=1)
        assert _values(resumed, plan) \
            == _values(clean, _selftest_plan(5, 12, 6))

    def test_inline_drain_checkpoints_and_resumes(self, tmp_path):
        self._drain_after_first_shard(1, tmp_path)

    def test_multiprocess_drain_checkpoints_and_resumes(self, tmp_path):
        self._drain_after_first_shard(2, tmp_path)

    def test_preset_stop_dispatches_nothing(self):
        import threading
        stop = threading.Event()
        stop.set()
        plan = _selftest_plan(2, 8, 4)
        outcome = run_plan(plan, SELFTEST, jobs=1, stop=stop)
        assert outcome.drained
        assert not outcome.executed

    def test_drain_beats_retry_backoff(self):
        # a drain requested mid-retry must return immediately instead
        # of sleeping out the (here: 10s) backoff — the test hangs if
        # the ordering regresses
        import threading

        from repro.obs.events import EventBus, ShardRetryEvent

        stop = threading.Event()
        bus = EventBus()
        bus.subscribe(lambda event: stop.set()
                      if isinstance(event, ShardRetryEvent) else None)
        plan = _selftest_plan(2, 8, 4, mode="raise",
                              fail_shards=[0, 1, 2, 3])
        outcome = run_plan(plan, SELFTEST, jobs=1, retries=5,
                           backoff_base=10.0, bus=bus, stop=stop)
        assert outcome.drained
        assert outcome.retries == 1
        assert not outcome.failures   # pending, not burned retries

    def test_install_drain_handler_signal_contract(self):
        import signal
        import threading
        import time

        from repro.par import install_drain_handler

        previous_term = signal.getsignal(signal.SIGTERM)
        previous_int = signal.getsignal(signal.SIGINT)
        stop = threading.Event()
        seen = []
        restore = install_drain_handler(stop, log=seen.append)
        try:
            signal.raise_signal(signal.SIGTERM)
            deadline = time.monotonic() + 2.0
            while not stop.is_set() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert stop.is_set()
            assert any("drain requested" in line for line in seen)
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGTERM)
                time.sleep(0.1)
        finally:
            restore()
        assert signal.getsignal(signal.SIGTERM) is previous_term
        assert signal.getsignal(signal.SIGINT) is previous_int


# ---------------------------------------------------------------------------
# checkpoint edge cases: torn writes, tampered manifests, SIGKILL
# ---------------------------------------------------------------------------

class TestCheckpointEdgeCases:
    def _completed_checkpoint(self, tmp_path):
        checkpoint = Checkpoint(str(tmp_path / "ck"))
        outcome = run_plan(_selftest_plan(3, 8, 4), SELFTEST, jobs=1,
                           checkpoint=checkpoint)
        assert outcome.ok
        return tmp_path / "ck"

    def test_truncated_shard_result_demotes_to_pending(self, tmp_path):
        directory = self._completed_checkpoint(tmp_path)
        victim = directory / "shard-0001.json"
        victim.write_text(victim.read_text()[: len(victim.read_text())
                                             // 2])
        again = run_plan(_selftest_plan(3, 8, 4), SELFTEST, jobs=1,
                         checkpoint=Checkpoint(str(directory)))
        assert again.ok
        assert again.executed == [1]
        assert sorted(again.restored) == [0, 2, 3]
        clean = run_plan(_selftest_plan(3, 8, 4), SELFTEST, jobs=1)
        plan = _selftest_plan(3, 8, 4)
        assert _values(again, plan) == _values(clean, plan)

    def test_missing_shard_result_demotes_to_pending(self, tmp_path):
        directory = self._completed_checkpoint(tmp_path)
        (directory / "shard-0002.json").unlink()
        again = run_plan(_selftest_plan(3, 8, 4), SELFTEST, jobs=1,
                         checkpoint=Checkpoint(str(directory)))
        assert again.ok
        assert again.executed == [2]

    def test_wrong_shard_identity_in_result_demotes(self, tmp_path):
        directory = self._completed_checkpoint(tmp_path)
        victim = directory / "shard-0000.json"
        document = json.loads(victim.read_text())
        document["shard_id"] = 9   # result stolen from another shard
        victim.write_text(json.dumps(document))
        again = run_plan(_selftest_plan(3, 8, 4), SELFTEST, jobs=1,
                         checkpoint=Checkpoint(str(directory)))
        assert again.ok
        assert again.executed == [0]

    def test_tampered_fingerprint_refuses_resume(self, tmp_path):
        from repro.par import resume_checkpoint
        directory = self._completed_checkpoint(tmp_path)
        manifest_path = directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["fingerprint"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointMismatch):
            resume_checkpoint(str(directory), jobs=1)

    def test_resume_after_sigkill_is_sequential_identical(self,
                                                          tmp_path):
        """SIGKILL a checkpointing campaign mid-flight; the resumed
        merge must equal an uninterrupted run's."""
        import os
        import signal
        import subprocess
        import sys
        import time

        directory = tmp_path / "ck"
        script = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.par import Checkpoint, run_plan\n"
            "from repro.par.plan import plan_indices\n"
            "plan = plan_indices('selftest', 3, list(range(8)),\n"
            "    params={{'fail_shards': [], 'sleep_seconds': 0.2}},\n"
            "    shards=8)\n"
            "run_plan(plan, 'repro.par.campaigns:run_selftest_shard',\n"
            "    jobs=1, checkpoint=Checkpoint({ck!r}))\n"
        ).format(src=os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src"), ck=str(directory))
        child = subprocess.Popen([sys.executable, "-c", script])
        deadline = time.monotonic() + 30.0
        try:
            # wait until at least one shard result landed, then KILL
            while time.monotonic() < deadline:
                if any(directory.glob("shard-*.json")):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("no shard completed before the deadline")
            child.kill()
        finally:
            child.wait(timeout=30)

        plan = plan_indices(
            "selftest", 3, list(range(8)),
            params={"fail_shards": [], "sleep_seconds": 0.2}, shards=8)
        resumed = run_plan(plan, SELFTEST, jobs=1,
                           checkpoint=Checkpoint(str(directory)))
        assert resumed.ok
        assert resumed.restored   # the kill left real progress behind
        clean_plan = plan_indices(
            "selftest", 3, list(range(8)),
            params={"fail_shards": [], "sleep_seconds": 0.2}, shards=8)
        clean = run_plan(clean_plan, SELFTEST, jobs=1)
        assert _values(resumed, plan) == _values(clean, clean_plan)


# ---------------------------------------------------------------------------
# degraded persistence: injected ENOSPC/EIO on every checkpoint call
# site must degrade writes, never sink a run
# ---------------------------------------------------------------------------

class _OpFault:
    """Injector that raises ENOSPC on atomic writes with one op tag,
    after skipping the first ``skip`` hits (so ``Checkpoint.open`` can
    still create the manifest)."""

    def __init__(self, op, skip=0):
        self.op = op
        self.skip = skip
        self.hits = 0

    def before_write(self, op, path):
        import errno
        from repro.errors import InjectedIOFault
        if op != self.op:
            return
        self.hits += 1
        if self.hits > self.skip:
            raise InjectedIOFault(f"chaos: ENOSPC writing {path}",
                                  fault="enospc", op=op, path=path,
                                  errno_code=errno.ENOSPC)

    def torn_write(self, op, path):
        return False

    def after_write(self, op, path):
        pass


class TestDegradedPersistence:
    def _run(self, tmp_path, injector, **kwargs):
        from repro.hostio import inject_faults
        with inject_faults(injector):
            return run_plan(
                _selftest_plan(3, 8, 4, **kwargs.pop("params", {})),
                SELFTEST, jobs=1, backoff_base=0.0,
                checkpoint=Checkpoint(str(tmp_path / "ck")), **kwargs)

    def test_enospc_on_manifest_degrades_not_fails(self, tmp_path):
        injector = _OpFault("manifest", skip=1)
        outcome = self._run(tmp_path, injector)
        assert outcome.ok
        assert len(outcome.results) == 4
        assert outcome.io_errors > 0
        assert injector.hits > 1

    def test_enospc_on_shard_results_degrades_not_fails(self, tmp_path):
        outcome = self._run(tmp_path, _OpFault("shard_result"))
        assert outcome.ok
        assert len(outcome.results) == 4    # kept in memory
        assert outcome.io_errors == 4       # one degraded write each
        # nothing persisted: a resume re-runs everything, still clean
        again = run_plan(_selftest_plan(3, 8, 4), SELFTEST, jobs=1,
                         checkpoint=Checkpoint(str(tmp_path / "ck")))
        assert again.ok and again.restored == []

    def test_enospc_on_quarantine_records_degrades_not_fails(
            self, tmp_path):
        outcome = self._run(
            tmp_path, _OpFault("quarantine"), retries=1,
            quarantine=True,
            params={"mode": "raise", "fail_shards": [1]})
        assert outcome.ok
        assert [q.shard_id for q in outcome.quarantined] == [1]
        assert outcome.io_errors == 1


# ---------------------------------------------------------------------------
# error serialization: every ReproError crosses the API boundary typed
# ---------------------------------------------------------------------------

class TestErrorSerialization:
    @staticmethod
    def _samples():
        import repro.errors as errors_mod
        from repro.par.checkpoint import CheckpointMismatch as CkMismatch
        trap = errors_mod.StepBudgetExceeded("budget", executed=9,
                                             limit=5)
        return {
            "SourceError": errors_mod.SourceError("bad", line=2, col=4),
            "LexError": errors_mod.LexError("tok"),
            "ParseError": errors_mod.ParseError("syntax"),
            "TypeError_": errors_mod.TypeError_("types"),
            "CompileError": errors_mod.CompileError("lowering"),
            "LinkError": errors_mod.LinkError("symbol"),
            "SimTrap": errors_mod.SimTrap("trap", pc=("main", 3)),
            "MemoryFault": errors_mod.MemoryFault("unmapped",
                                                  address=0xBEEF),
            "PoisonTrap": errors_mod.PoisonTrap("poison", pointer=7),
            "BoundsTrap": errors_mod.BoundsTrap("oob", pointer=9,
                                                lower=0, upper=8),
            "MetadataError": errors_mod.MetadataError("mac"),
            "SyscallError": errors_mod.SyscallError("bad syscall"),
            "StepBudgetExceeded": trap,
            "InvalidFree": errors_mod.InvalidFree(
                "double free", address=16, allocator="subheap",
                kind="double_free"),
            "HarnessError": errors_mod.HarnessError("verdict"),
            "WorkloadTrapped": errors_mod.WorkloadTrapped(
                "treeadd", "wrapped", trap),
            "UnexpectedOutput": errors_mod.UnexpectedOutput(
                "treeadd", "wrapped", "x", expected="y"),
            "OutputDivergence": errors_mod.OutputDivergence(
                "treeadd", {"baseline": ("1", 0), "wrapped": ("2", 0)}),
            "WorkloadTimeout": errors_mod.WorkloadTimeout(
                "slow", workload="tsp", config="subheap", seconds=1.5,
                executed=100),
            "GuestExit": errors_mod.GuestExit(3),
            "TemporalViolation": errors_mod.TemporalViolation(
                "stale key", pointer=0x1010, address=0x1000,
                key=1, lock=2, kind="stale_key", origin="load"),
            "ResourceExhausted": errors_mod.ResourceExhausted("table"),
            "ServiceError": errors_mod.ServiceError("boom"),
            "InvalidJobSpec": errors_mod.InvalidJobSpec(
                "expected integer", field="params.seed"),
            "UnknownJob": errors_mod.UnknownJob("job-000042"),
            "JobNotCancellable": errors_mod.JobNotCancellable(
                "job-000001", "done"),
            "QuotaExceeded": errors_mod.QuotaExceeded(
                "limit", tenant="alice", limit=2, retry_after=1.5),
            "QueueFull": errors_mod.QueueFull(
                "alice", depth=4, limit=4, retry_after=2.0),
            "ServiceUnavailable": errors_mod.ServiceUnavailable(),
            "CheckpointMismatch": CkMismatch("fingerprint differs"),
            "InjectedFault": errors_mod.InjectedFault(
                "chaos", fault="enospc", op="manifest", path="/tmp/x"),
            "InjectedIOFault": errors_mod.InjectedIOFault(
                "chaos: no space", fault="enospc", op="shard_result",
                path="/tmp/y", errno_code=28),
            "InjectedCrash": errors_mod.InjectedCrash(
                "chaos: torn write", fault="torn_write", op="manifest",
                path="/tmp/z"),
            "CircuitOpen": errors_mod.CircuitOpen(
                "alice", retry_after=2.0, reason="quarantine"),
        }

    @staticmethod
    def _all_subclasses():
        from repro.errors import ReproError
        import repro.par.checkpoint  # noqa: F401 — registers its class
        found, stack = set(), [ReproError]
        while stack:
            cls = stack.pop()
            for sub in cls.__subclasses__():
                found.add(sub.__name__)
                stack.append(sub)
        return found

    def test_every_subclass_has_a_sample(self):
        # a new error type must add a sample here or this fails —
        # that is how the hierarchy-wide round-trip stays exhaustive
        missing = self._all_subclasses() - set(self._samples())
        assert not missing, f"no serialization sample for: {missing}"

    def test_round_trip_preserves_type_message_and_fields(self):
        from repro.errors import ReproError
        for name, exc in self._samples().items():
            wire = json.loads(json.dumps(exc.to_dict()))
            clone = ReproError.from_dict(wire)
            assert type(clone) is type(exc), name
            assert str(clone.args[0]) == str(exc.args[0]), name
            for key, value in exc.__dict__.items():
                cloned = getattr(clone, key)
                if isinstance(value, ReproError):
                    assert type(cloned) is type(value), (name, key)
                    assert str(cloned) == str(value), (name, key)
                elif isinstance(value, tuple):
                    assert cloned == list(value), (name, key)
                elif isinstance(value, dict) and any(
                        isinstance(v, tuple) for v in value.values()):
                    assert cloned == {k: list(v) if isinstance(v, tuple)
                                      else v for k, v in value.items()}, \
                        (name, key)
                elif value is None or isinstance(value,
                                                 (bool, int, float, str,
                                                  list, dict)):
                    assert cloned == value, (name, key)

    def test_http_status_survives_round_trip(self):
        from repro.errors import QueueFull, ReproError
        exc = QueueFull("bob", depth=3, limit=3, retry_after=0.5)
        clone = ReproError.from_dict(
            json.loads(json.dumps(exc.to_dict())))
        assert clone.http_status == 429
        assert clone.retry_after == 0.5
        assert clone.depth == 3

    def test_unknown_type_raises(self):
        from repro.errors import ReproError
        with pytest.raises(ValueError):
            ReproError.from_dict({"type": "NoSuchError",
                                  "message": "x", "fields": {}})

    def test_nested_error_attribute_revives_typed(self):
        from repro.errors import (
            PoisonTrap, ReproError, WorkloadTrapped,
        )
        exc = WorkloadTrapped("anagram", "subheap",
                              PoisonTrap("poisoned", pointer=0xAB))
        clone = ReproError.from_dict(
            json.loads(json.dumps(exc.to_dict())))
        assert isinstance(clone.trap, PoisonTrap)
        assert clone.trap.pointer == 0xAB
