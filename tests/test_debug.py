"""Tests for the tracing and pointer-anatomy debugging aids."""

import pytest

from repro.compiler import CompilerOptions, Op, compile_source
from repro.debug import Tracer, attach_tracer, explain_pointer
from repro.debug.trace import IFP_OPS
from repro.vm import Machine

SOURCE = """
int g;
int main(void) {
    int *p = (int*)malloc(40);
    int i;
    for (i = 0; i < 10; i++) { p[i] = i; }
    g = p[5];
    free(p);
    return g;
}
"""


class TestTracer:
    def test_records_instructions(self):
        program = compile_source(SOURCE, CompilerOptions.wrapped())
        machine = Machine(program)
        tracer = attach_tracer(machine, capacity=100_000)
        result = machine.run()
        assert result.ok
        assert tracer.recorded == result.stats.total_instructions \
            - result.stats.builtin_instructions

    def test_ring_buffer_bounded(self):
        program = compile_source(SOURCE, CompilerOptions.baseline())
        machine = Machine(program)
        tracer = attach_tracer(machine, capacity=16)
        machine.run()
        assert len(tracer.events) == 16
        assert tracer.recorded > 16

    def test_ifp_only_filter(self):
        program = compile_source(SOURCE, CompilerOptions.wrapped())
        machine = Machine(program)
        tracer = attach_tracer(machine, ifp_only=True)
        machine.run()
        assert tracer.events
        assert all(event.op in {int(op) for op in IFP_OPS}
                   for event in tracer.events)

    def test_by_mnemonic_and_format(self):
        program = compile_source(SOURCE, CompilerOptions.wrapped())
        machine = Machine(program)
        tracer = attach_tracer(machine)
        machine.run()
        ifpadds = tracer.by_mnemonic("ifpadd")
        assert ifpadds
        text = tracer.format_tail(5)
        assert text.count("\n") == 4

    def test_tracing_does_not_change_results(self):
        program = compile_source(SOURCE, CompilerOptions.wrapped())
        plain = Machine(program).run()
        traced_machine = Machine(program)
        attach_tracer(traced_machine)
        traced = traced_machine.run()
        assert plain.exit_code == traced.exit_code
        assert plain.stats.total_instructions \
            == traced.stats.total_instructions


class TestTracerEdgeCases:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=-1)

    def test_zero_capacity_counts_without_recording(self):
        program = compile_source(SOURCE, CompilerOptions.wrapped())
        machine = Machine(program)
        tracer = attach_tracer(machine, capacity=0)
        result = machine.run()
        assert result.ok
        assert tracer.recorded == result.stats.total_instructions \
            - result.stats.builtin_instructions
        assert len(tracer.events) == 0
        assert tracer.tail(10) == []
        assert tracer.snapshot() == ()

    def test_tail_truncation_drops_oldest_first(self):
        program = compile_source(SOURCE, CompilerOptions.baseline())
        machine = Machine(program)
        full = attach_tracer(machine, capacity=100_000)
        machine.run()
        truncated_machine = Machine(program)
        truncated = attach_tracer(truncated_machine, capacity=16)
        truncated_machine.run()
        # the bounded ring keeps exactly the last 16, in execution order
        assert list(truncated.events) == list(full.events)[-16:]
        assert truncated.tail(4) == list(full.events)[-4:]

    def test_tail_count_edge_values(self):
        program = compile_source(SOURCE, CompilerOptions.baseline())
        machine = Machine(program)
        tracer = attach_tracer(machine, capacity=16)
        machine.run()
        assert tracer.tail(0) == []
        assert tracer.tail(-3) == []
        assert len(tracer.tail(5)) == 5
        # asking for more than capacity returns everything kept
        assert tracer.tail(1000) == list(tracer.events)

    def test_snapshot_while_tracing_is_detached(self):
        tracer = Tracer(capacity=4)

        from repro.compiler.ir import MNEMONICS

        class _Ins:
            op = next(iter(MNEMONICS))
            dst = 0
            a = -1
            b = -1

        for i in range(3):
            tracer.record("f", i, _Ins(), [])
        before = tracer.snapshot()
        for i in range(3, 9):
            tracer.record("f", i, _Ins(), [])
        # the earlier snapshot is unaffected by later evictions
        assert [e.index for e in before] == [0, 1, 2]
        assert [e.index for e in tracer.snapshot()] == [5, 6, 7, 8]
        assert tracer.recorded == 9


class TestAnatomy:
    def _machine(self, options=None):
        program = compile_source("int main(void) { return 0; }",
                                 options or CompilerOptions.wrapped())
        return Machine(program)

    def test_legacy_pointer(self):
        machine = self._machine()
        anatomy = explain_pointer(machine, 0x12345)
        assert anatomy.scheme == "LEGACY"
        assert anatomy.promote_outcome == "bypass_legacy"
        assert "LEGACY" in anatomy.describe()

    def test_local_offset_pointer(self):
        machine = self._machine()
        tagged, bounds, _c, _i = machine.wrapped_allocator.malloc(48, 0, 0)
        anatomy = explain_pointer(machine, tagged)
        assert anatomy.scheme == "LOCAL_OFFSET"
        assert anatomy.granule_offset == 3  # 48 bytes / 16
        assert anatomy.bounds == bounds
        assert anatomy.promote_outcome == "valid"

    def test_subheap_pointer(self):
        machine = self._machine(CompilerOptions.subheap())
        tagged, bounds, _c, _i = machine.subheap_allocator.malloc(24, 0, 24)
        anatomy = explain_pointer(machine, tagged)
        assert anatomy.scheme == "SUBHEAP"
        assert anatomy.register_index is not None
        assert anatomy.bounds == bounds

    def test_dry_run_preserves_stats(self):
        machine = self._machine()
        tagged, _b, _c, _i = machine.wrapped_allocator.malloc(48, 0, 0)
        before = machine.ifp.stats.promotes_total
        explain_pointer(machine, tagged)
        assert machine.ifp.stats.promotes_total == before

    def test_poisoned_pointer(self):
        from repro.ifp.poison import Poison
        from repro.ifp.tag import with_poison
        machine = self._machine()
        anatomy = explain_pointer(machine,
                                  with_poison(0x9000, Poison.INVALID))
        assert anatomy.poison == "INVALID"
        assert anatomy.promote_outcome == "bypass_poisoned"
