"""Tests for the tracing and pointer-anatomy debugging aids."""

import pytest

from repro.compiler import CompilerOptions, Op, compile_source
from repro.debug import Tracer, attach_tracer, explain_pointer
from repro.debug.trace import IFP_OPS
from repro.vm import Machine

SOURCE = """
int g;
int main(void) {
    int *p = (int*)malloc(40);
    int i;
    for (i = 0; i < 10; i++) { p[i] = i; }
    g = p[5];
    free(p);
    return g;
}
"""


class TestTracer:
    def test_records_instructions(self):
        program = compile_source(SOURCE, CompilerOptions.wrapped())
        machine = Machine(program)
        tracer = attach_tracer(machine, capacity=100_000)
        result = machine.run()
        assert result.ok
        assert tracer.recorded == result.stats.total_instructions \
            - result.stats.builtin_instructions

    def test_ring_buffer_bounded(self):
        program = compile_source(SOURCE, CompilerOptions.baseline())
        machine = Machine(program)
        tracer = attach_tracer(machine, capacity=16)
        machine.run()
        assert len(tracer.events) == 16
        assert tracer.recorded > 16

    def test_ifp_only_filter(self):
        program = compile_source(SOURCE, CompilerOptions.wrapped())
        machine = Machine(program)
        tracer = attach_tracer(machine, ifp_only=True)
        machine.run()
        assert tracer.events
        assert all(event.op in {int(op) for op in IFP_OPS}
                   for event in tracer.events)

    def test_by_mnemonic_and_format(self):
        program = compile_source(SOURCE, CompilerOptions.wrapped())
        machine = Machine(program)
        tracer = attach_tracer(machine)
        machine.run()
        ifpadds = tracer.by_mnemonic("ifpadd")
        assert ifpadds
        text = tracer.format_tail(5)
        assert text.count("\n") == 4

    def test_tracing_does_not_change_results(self):
        program = compile_source(SOURCE, CompilerOptions.wrapped())
        plain = Machine(program).run()
        traced_machine = Machine(program)
        attach_tracer(traced_machine)
        traced = traced_machine.run()
        assert plain.exit_code == traced.exit_code
        assert plain.stats.total_instructions \
            == traced.stats.total_instructions


class TestAnatomy:
    def _machine(self, options=None):
        program = compile_source("int main(void) { return 0; }",
                                 options or CompilerOptions.wrapped())
        return Machine(program)

    def test_legacy_pointer(self):
        machine = self._machine()
        anatomy = explain_pointer(machine, 0x12345)
        assert anatomy.scheme == "LEGACY"
        assert anatomy.promote_outcome == "bypass_legacy"
        assert "LEGACY" in anatomy.describe()

    def test_local_offset_pointer(self):
        machine = self._machine()
        tagged, bounds, _c, _i = machine.wrapped_allocator.malloc(48, 0, 0)
        anatomy = explain_pointer(machine, tagged)
        assert anatomy.scheme == "LOCAL_OFFSET"
        assert anatomy.granule_offset == 3  # 48 bytes / 16
        assert anatomy.bounds == bounds
        assert anatomy.promote_outcome == "valid"

    def test_subheap_pointer(self):
        machine = self._machine(CompilerOptions.subheap())
        tagged, bounds, _c, _i = machine.subheap_allocator.malloc(24, 0, 24)
        anatomy = explain_pointer(machine, tagged)
        assert anatomy.scheme == "SUBHEAP"
        assert anatomy.register_index is not None
        assert anatomy.bounds == bounds

    def test_dry_run_preserves_stats(self):
        machine = self._machine()
        tagged, _b, _c, _i = machine.wrapped_allocator.malloc(48, 0, 0)
        before = machine.ifp.stats.promotes_total
        explain_pointer(machine, tagged)
        assert machine.ifp.stats.promotes_total == before

    def test_poisoned_pointer(self):
        from repro.ifp.poison import Poison
        from repro.ifp.tag import with_poison
        machine = self._machine()
        anatomy = explain_pointer(machine,
                                  with_poison(0x9000, Poison.INVALID))
        assert anatomy.poison == "INVALID"
        assert anatomy.promote_outcome == "bypass_poisoned"
