"""Deep property-based tests: narrowing vs a type-level oracle, and
interpreter arithmetic vs a C-semantics mirror."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import HierarchyConfig
from repro.compiler import CompilerOptions
from repro.compiler.layout_gen import build_layout_table, member_delta
from repro.ifp import Bounds, IFPUnit
from repro.lang.ctypes import ArrayType, CHAR, INT, LONG, StructType
from repro.mem import Memory
from tests.conftest import compile_and_run

# ---------------------------------------------------------------------------
# Narrowing vs the type structure itself
# ---------------------------------------------------------------------------

_SCALARS = [CHAR, INT, LONG]
_counter = [0]


def _fresh_name() -> str:
    _counter[0] += 1
    return f"T{_counter[0]}"


@st.composite
def random_struct(draw, depth: int = 0) -> StructType:
    """A random struct with scalar / array / nested-struct /
    array-of-struct members."""
    member_count = draw(st.integers(1, 3 if depth else 4))
    members = []
    for index in range(member_count):
        kind = draw(st.integers(0, 3 if depth < 2 else 1))
        if kind == 0:
            member_type = draw(st.sampled_from(_SCALARS))
        elif kind == 1:
            member_type = ArrayType(draw(st.sampled_from(_SCALARS)),
                                    draw(st.integers(1, 4)))
        elif kind == 2:
            member_type = draw(random_struct(depth + 1))
        else:
            member_type = ArrayType(draw(random_struct(depth + 1)),
                                    draw(st.integers(1, 3)))
        members.append((f"m{index}", member_type))
    return StructType(_fresh_name()).define(members)


@st.composite
def narrowing_scenario(draw):
    """(struct type, descent path) where each path step is a member name
    or an array element index."""
    top = draw(random_struct())
    path = []
    current = top
    # Descend at least one level (index 0 = whole object is trivial).
    for _step in range(draw(st.integers(1, 4))):
        if isinstance(current, StructType) and current.fields:
            field = draw(st.sampled_from(list(current.fields)))
            path.append(field.name)
            current = field.type
            if isinstance(current, ArrayType):
                # Entering the array entry; element selection is implicit
                # (all elements share the entry), so optionally descend
                # into one element to keep going.
                element_index = draw(st.integers(0, current.count - 1))
                if isinstance(current.element, StructType):
                    path.append(element_index)
                    current = current.element
                else:
                    break
        else:
            break
    return top, path


def _oracle_walk(top: StructType, path):
    """Type-level oracle: (entry index, lower offset, upper offset).

    ``lower``/``upper`` are the *entry's* bounds: array-element steps do
    not change them (all elements share the array's entry) — they only
    re-base the offsets of members selected afterwards.
    """
    index = 0
    lower, upper = 0, top.size
    instance_base = 0   # base of the instance subsequent members live in
    current = top
    for step in path:
        if isinstance(step, str):
            field = current.field(step)
            index += member_delta(current, step)
            lower = instance_base + field.offset
            upper = lower + field.type.size
            instance_base = lower
            current = field.type
        else:
            assert isinstance(current, ArrayType)
            instance_base = lower + step * current.element.size
            current = current.element
    return index, lower, upper


@given(scenario=narrowing_scenario(), data=st.data())
@settings(max_examples=120, deadline=None)
def test_hardware_narrowing_matches_type_oracle(scenario, data):
    """For random nested types and random descent paths, the hardware
    layout-table walk produces exactly the bounds the type dictates."""
    top, path = scenario
    table = build_layout_table(top, top.name, 256)
    if table is None:
        return  # type too large for the index width: narrowing unsupported
    index, lower_off, upper_off = _oracle_walk(top, path)
    if index >= len(table):  # pragma: no cover - oracle/table must agree
        raise AssertionError("oracle index escaped the table")

    # When the final step selected an array *member* (string step), the
    # entry's bounds cover the whole array; the oracle already reflects
    # that because field.type.size is the whole array's size.
    memory = Memory()
    memory.map_range(0x10000, 0x10000)
    unit = IFPUnit(memory, HierarchyConfig().build())
    lt_addr = 0x10000
    memory.write_bytes(lt_addr, table.serialize())

    object_base = 0x12000
    unit.local_offset.write_metadata(
        memory, object_base, top.size, lt_addr, unit.mac_key)

    span = upper_off - lower_off
    address = object_base + lower_off \
        + data.draw(st.integers(0, max(span - 1, 0)))
    if top.size > unit.config.local_max_object:
        return  # outside the local-offset scheme's reach
    if index >= unit.config.subheap_max_layout_entries:
        return
    pointer = unit.local_offset.make_pointer(
        address, object_base, top.size,
        subobject_index=min(index, 63))
    if index > 63:
        return  # exceeds the local-offset subobject field
    result = unit.promote(pointer)
    assert result.narrowed, (top, path, index)
    assert result.bounds == Bounds(object_base + lower_off,
                                   object_base + upper_off), \
        (path, index, table.names)


# ---------------------------------------------------------------------------
# Interpreter arithmetic vs a C-semantics mirror
# ---------------------------------------------------------------------------

_INT_MIN, _INT_MAX = -(1 << 31), (1 << 31) - 1


def _wrap32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


class _Expr:
    """A random int-typed expression with C render + Python evaluation."""

    def __init__(self, text, value):
        self.text = text
        self.value = value


@st.composite
def int_expr(draw, depth: int = 0) -> "_Expr":
    if depth >= 3 or draw(st.booleans()):
        literal = draw(st.integers(-1000, 1000))
        return _Expr(f"({literal})", literal)
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>",
                               "/", "%"]))
    left = draw(int_expr(depth + 1))
    right = draw(int_expr(depth + 1))
    if op == "+":
        value = _wrap32(left.value + right.value)
    elif op == "-":
        value = _wrap32(left.value - right.value)
    elif op == "*":
        value = _wrap32(left.value * right.value)
    elif op == "&":
        value = left.value & right.value
    elif op == "|":
        value = left.value | right.value
    elif op == "^":
        value = left.value ^ right.value
    elif op == "<<":
        shift = abs(right.value) % 8
        value = _wrap32(left.value << shift)
        return _Expr(f"({left.text} << {shift})", value)
    elif op == ">>":
        shift = abs(right.value) % 8
        value = left.value >> shift  # arithmetic shift on signed
        return _Expr(f"({left.text} >> {shift})", value)
    else:  # '/' and '%': C truncation toward zero; avoid zero divisors
        divisor = right.value if right.value != 0 else 7
        quotient = abs(left.value) // abs(divisor)
        if (left.value < 0) != (divisor < 0):
            quotient = -quotient
        if op == "/":
            value = _wrap32(quotient)
        else:
            value = _wrap32(left.value - quotient * divisor)
        return _Expr(f"({left.text} {op} ({divisor}))", value)
    return _Expr(f"({left.text} {op} {right.text})", value)


@given(expr=int_expr())
@settings(max_examples=60, deadline=None)
def test_interpreter_matches_c_semantics(expr):
    source = f"""
    int main(void) {{
        int result = {expr.text};
        print_int(result);
        return 0;
    }}
    """
    result = compile_and_run(source, CompilerOptions.baseline())
    assert result.ok, result.trap
    assert int(result.output) == expr.value, expr.text


@given(expr=int_expr())
@settings(max_examples=20, deadline=None)
def test_instrumentation_never_changes_arithmetic(expr):
    """The IFP build computes the same value as baseline, always."""
    source = f"""
    int main(void) {{
        int result = {expr.text};
        print_int(result);
        return 0;
    }}
    """
    baseline = compile_and_run(source, CompilerOptions.baseline())
    wrapped = compile_and_run(source, CompilerOptions.wrapped())
    assert baseline.output == wrapped.output
