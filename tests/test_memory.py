"""Tests for the sparse paged memory (repro.mem)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryFault
from repro.mem import Memory, PAGE_SIZE, ADDRESS_MASK
from repro.mem.layout import AddressSpaceLayout, DEFAULT_LAYOUT


class TestMapping:
    def test_unmapped_read_faults(self):
        memory = Memory()
        with pytest.raises(MemoryFault):
            memory.read_bytes(0x1000, 1)

    def test_unmapped_write_faults(self):
        memory = Memory()
        with pytest.raises(MemoryFault):
            memory.write_bytes(0x1000, b"x")

    def test_map_then_access(self):
        memory = Memory()
        memory.map_range(0x1000, 16)
        memory.write_bytes(0x1000, b"hello")
        assert memory.read_bytes(0x1000, 5) == b"hello"

    def test_map_is_idempotent(self):
        memory = Memory()
        memory.map_range(0x1000, PAGE_SIZE)
        before = memory.mapped_bytes
        memory.map_range(0x1000, PAGE_SIZE)
        assert memory.mapped_bytes == before

    def test_map_range_spans_pages(self):
        memory = Memory()
        memory.map_range(PAGE_SIZE - 8, 16)  # straddles two pages
        assert memory.mapped_bytes == 2 * PAGE_SIZE
        memory.write_bytes(PAGE_SIZE - 8, b"0123456789abcdef")
        assert memory.read_bytes(PAGE_SIZE - 8, 16) == b"0123456789abcdef"

    def test_unmap_releases_pages(self):
        memory = Memory()
        memory.map_range(0x2000, 2 * PAGE_SIZE)
        memory.unmap_range(0x2000, 2 * PAGE_SIZE)
        assert not memory.is_mapped(0x2000)
        with pytest.raises(MemoryFault):
            memory.read_bytes(0x2000, 1)

    def test_unmap_keeps_partial_pages(self):
        memory = Memory()
        memory.map_range(0x2000, PAGE_SIZE)
        # Unmapping a sub-page range must not drop the page.
        memory.unmap_range(0x2100, 64)
        assert memory.is_mapped(0x2000)

    def test_peak_tracking(self):
        memory = Memory()
        memory.map_range(0, 4 * PAGE_SIZE)
        memory.unmap_range(0, 4 * PAGE_SIZE)
        assert memory.peak_mapped_bytes == 4 * PAGE_SIZE
        assert memory.mapped_bytes == 0

    def test_is_mapped_multi_page(self):
        memory = Memory()
        memory.map_range(0, PAGE_SIZE)
        assert memory.is_mapped(0, PAGE_SIZE)
        assert not memory.is_mapped(0, PAGE_SIZE + 1)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            Memory(page_size=3000)

    def test_mapped_ranges_merges_runs(self):
        memory = Memory()
        memory.map_range(0, PAGE_SIZE)
        memory.map_range(PAGE_SIZE, PAGE_SIZE)
        memory.map_range(4 * PAGE_SIZE, PAGE_SIZE)
        assert list(memory.mapped_ranges()) == [
            (0, 2 * PAGE_SIZE), (4 * PAGE_SIZE, PAGE_SIZE)]


class TestIntegers:
    def test_u64_roundtrip(self):
        memory = Memory()
        memory.map_range(0, PAGE_SIZE)
        memory.store_u64(8, 0xDEADBEEFCAFEBABE)
        assert memory.load_u64(8) == 0xDEADBEEFCAFEBABE

    def test_signed_load(self):
        memory = Memory()
        memory.map_range(0, PAGE_SIZE)
        memory.store_int(0, -5, 4)
        assert memory.load_int(0, 4, signed=True) == -5
        assert memory.load_int(0, 4, signed=False) == (1 << 32) - 5

    def test_store_truncates(self):
        memory = Memory()
        memory.map_range(0, PAGE_SIZE)
        memory.store_int(0, 0x1FF, 1)
        assert memory.load_int(0, 1) == 0xFF

    def test_little_endian(self):
        memory = Memory()
        memory.map_range(0, PAGE_SIZE)
        memory.store_int(0, 0x0102030405060708, 8)
        assert memory.read_bytes(0, 8) == bytes(
            [8, 7, 6, 5, 4, 3, 2, 1])

    @given(value=st.integers(0, (1 << 64) - 1),
           size=st.sampled_from([1, 2, 4, 8]),
           offset=st.integers(0, 256))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, value, size, offset):
        memory = Memory()
        memory.map_range(0, PAGE_SIZE)
        memory.store_int(offset, value, size)
        assert memory.load_int(offset, size) == value & ((1 << (8 * size)) - 1)


class TestUtilities:
    def test_fill(self):
        memory = Memory()
        memory.map_range(0, PAGE_SIZE)
        memory.fill(16, 0xAB, 8)
        assert memory.read_bytes(16, 8) == b"\xab" * 8

    def test_copy_overlapping(self):
        memory = Memory()
        memory.map_range(0, PAGE_SIZE)
        memory.write_bytes(0, b"abcdef")
        memory.copy(2, 0, 4)  # memmove semantics
        assert memory.read_bytes(0, 6) == b"ababcd"

    def test_cstring(self):
        memory = Memory()
        memory.map_range(0, PAGE_SIZE)
        memory.write_bytes(0, b"hello\x00world")
        assert memory.read_cstring(0) == b"hello"

    def test_cstring_unterminated(self):
        memory = Memory()
        memory.map_range(0, PAGE_SIZE)
        memory.fill(0, ord("x"), 64)
        with pytest.raises(MemoryFault):
            memory.read_cstring(0, limit=32)

    def test_tag_bits_stripped(self):
        """Addresses above 48 bits must wrap into the canonical space."""
        memory = Memory()
        memory.map_range(0x1000, PAGE_SIZE)
        tagged = (0xBEEF << 48) | 0x1000
        memory.store_u64(tagged, 42)
        assert memory.load_u64(0x1000) == 42


class TestLayout:
    def test_segment_names(self):
        layout = DEFAULT_LAYOUT
        assert layout.segment_of(layout.globals_base) == "globals"
        assert layout.segment_of(layout.heap_base) == "heap"
        assert layout.segment_of(layout.stack_top - 8) == "stack"
        assert layout.segment_of(layout.metadata_table_base) \
            == "metadata-table"
        assert layout.segment_of(0) == "unmapped"

    def test_segments_disjoint(self):
        layout = DEFAULT_LAYOUT
        assert layout.globals_limit <= layout.heap_base
        assert layout.heap_limit <= layout.metadata_table_base
        assert layout.metadata_table_limit <= layout.stack_limit
        assert layout.stack_limit < layout.stack_top
        assert layout.stack_top <= 1 << 48
