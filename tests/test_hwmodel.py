"""Tests for the FPGA area model (Figure 13)."""

import pytest

from repro.hwmodel import AreaModel, VANILLA_FFS, VANILLA_LUTS
from repro.hwmodel.area import MODIFIED_LUTS, TOTAL_LUT_GROWTH


class TestAnchors:
    def test_full_design_matches_paper_totals(self):
        model = AreaModel()
        assert model.total_luts() == MODIFIED_LUTS == 59_261
        assert model.lut_growth() == TOTAL_LUT_GROWTH == 22_173

    def test_overheads_match_paper(self):
        model = AreaModel()
        assert model.lut_overhead() == pytest.approx(0.60, abs=0.01)
        assert model.ff_overhead() == pytest.approx(0.48, abs=0.01)

    def test_execute_stage_dominates(self):
        """~62% of the increase comes from the execute stage."""
        model = AreaModel()
        stages = model.stage_breakdown()
        execute_share = stages["execute"][1] / model.lut_growth()
        assert 0.58 <= execute_share <= 0.66

    def test_ifp_unit_share(self):
        """The IFP unit is 38% of the increase (8,433 LUTs)."""
        model = AreaModel()
        assert model.ifp_unit_luts() == 8_433
        assert model.ifp_unit_luts() / model.lut_growth() \
            == pytest.approx(0.38, abs=0.01)

    def test_issue_stage_share(self):
        model = AreaModel()
        stages = model.stage_breakdown()
        assert stages["issue"][1] / model.lut_growth() \
            == pytest.approx(0.29, abs=0.01)

    def test_layout_walker_share_of_ifp_unit(self):
        """The walker is 36% of the IFP unit; the three schemes 30%."""
        model = AreaModel()
        walker = next(c for c in model.components()
                      if c.name == "ifp_unit.layout_walker")
        assert walker.growth == 3_059
        schemes = sum(c.growth for c in model.components()
                      if c.name.startswith("ifp_unit.scheme_"))
        assert schemes == 2_501


class TestWhatIfs:
    def test_dropping_bounds_registers_helps_most(self):
        """The paper: to stay under 30% area overhead, drop the bounds
        registers (they cost more than the IFP unit's own logic)."""
        slim = AreaModel(bounds_registers=False)
        assert slim.lut_overhead() < AreaModel().lut_overhead()
        full_delta = AreaModel().lut_growth() - slim.lut_growth()
        assert full_delta == 4_103

    def test_dropping_layout_walker(self):
        no_walker = AreaModel(layout_walker=False)
        assert AreaModel().lut_growth() - no_walker.lut_growth() == 3_059

    def test_single_scheme_design(self):
        only_global = AreaModel(schemes=("global_table",))
        delta = AreaModel().lut_growth() - only_global.lut_growth()
        assert delta == 700 + 1_101  # local offset + subheap logic

    def test_minimal_object_granularity_design(self):
        # Dropping every optional feature gets close to the paper's 30%
        # target; the rest requires the ISA redesign the paper suggests.
        minimal = AreaModel(bounds_registers=False, layout_walker=False,
                            schemes=("global_table",))
        assert minimal.lut_overhead() < 0.36
        assert minimal.lut_overhead() < AreaModel(
            bounds_registers=False).lut_overhead()

    def test_ff_growth_scales_with_features(self):
        assert AreaModel(bounds_registers=False).ff_growth() \
            < AreaModel().ff_growth()


class TestReporting:
    def test_figure13_rows(self):
        rows = AreaModel().figure13_rows()
        assert any(name == "load_store_unit" and growth == 4_551
                   for name, _s, _v, growth in rows)
        # Excluded features appear with zero growth, not dropped rows.
        slim_rows = AreaModel(layout_walker=False).figure13_rows()
        walker = next(r for r in slim_rows
                      if r[0] == "ifp_unit.layout_walker")
        assert walker[3] == 0

    def test_report_text(self):
        text = AreaModel().report()
        assert "TOTAL" in text and "59,261" in text

    def test_vanilla_sum_close_to_paper(self):
        rows = AreaModel().figure13_rows()
        vanilla_total = sum(v for _n, _s, v, _g in rows)
        assert vanilla_total == pytest.approx(VANILLA_LUTS, rel=0.03)
