"""Tests for Bounds / IFPR semantics."""

from hypothesis import given, settings, strategies as st

from repro.ifp import Bounds


class TestContains:
    def test_access_size_check(self):
        bounds = Bounds(100, 120)
        assert bounds.contains(100, 1)
        assert bounds.contains(119, 1)
        assert bounds.contains(112, 8)
        assert not bounds.contains(113, 8)   # crosses the upper bound
        assert not bounds.contains(99, 1)
        assert not bounds.contains(120, 1)

    def test_one_past_is_recoverable_state(self):
        bounds = Bounds(100, 120)
        assert bounds.contains_or_one_past(120)
        assert not bounds.contains_or_one_past(121)
        assert not bounds.contains_or_one_past(99)

    def test_size(self):
        assert Bounds(8, 24).size == 16
        assert Bounds(24, 8).size == 0  # degenerate


class TestOperations:
    def test_narrowed_intersects(self):
        bounds = Bounds(0, 100)
        assert bounds.narrowed(10, 50) == Bounds(10, 50)
        assert bounds.narrowed(10, 200) == Bounds(10, 100)

    def test_shifted(self):
        assert Bounds(10, 20).shifted(5) == Bounds(15, 25)

    def test_spill_roundtrip(self):
        bounds = Bounds(0x1234, 0x5678)
        assert Bounds.from_words(*bounds.to_words()) == bounds

    def test_address_masking(self):
        tagged = (0xAB << 48) | 0x1000
        assert Bounds(tagged, tagged + 8).lower == 0x1000

    @given(lower=st.integers(0, 1 << 40), size=st.integers(1, 1 << 20),
           address=st.integers(0, 1 << 41), access=st.integers(1, 64))
    @settings(max_examples=150, deadline=None)
    def test_contains_definition(self, lower, size, address, access):
        bounds = Bounds(lower, lower + size)
        expected = lower <= address and address + access <= lower + size
        assert bounds.contains(address, access) == expected
