"""Multi-tenant campaign service: ``repro.serve``.

A long-running, stdlib-only HTTP service that accepts campaign job
specs (fuzz / resil / juliet / bench / selftest), validates them into
deterministic :class:`~repro.par.plan.ShardPlan`\\ s, and multiplexes
them onto one shared shard-worker budget with per-tenant quotas,
weighted-fair scheduling, and bounded-queue backpressure.  Jobs persist
through the fingerprinted checkpoint store: a killed service resumes
in-flight campaigns on restart, and the resumed results are
byte-identical (timing aside) to an uninterrupted run.

==============  ======================================================
module          role
==============  ======================================================
`jobs`          job specs: validation, defaults resolution, plan
                construction, the persisted :class:`JobRecord`
`tenants`       :class:`TenantQuota` / per-tenant runtime accounting
`scheduler`     stride-based weighted-fair dispatch + bounded-queue
                backpressure (:class:`~repro.errors.QueueFull`)
`store`         atomic on-disk job records + per-job checkpoint dirs
`service`       :class:`CampaignService` — admission, dispatch,
                execution threads, drain, crash recovery
`api`           transport-independent request routing; typed
                :class:`~repro.errors.ServiceError` -> HTTP mapping
`server`        the asyncio HTTP/1.1 front end
==============  ======================================================
"""

from repro.serve.jobs import (
    JOB_KINDS, JOB_STATUSES, JobRecord, build_plan, validate_spec,
)
from repro.serve.tenants import TenantQuota, TenantState
from repro.serve.scheduler import STRIDE, WeightedFairScheduler
from repro.serve.store import JobStore
from repro.serve.service import CampaignService
from repro.serve.api import dispatch
from repro.serve.server import BackgroundServer, CampaignServer

__all__ = [
    "JOB_KINDS", "JOB_STATUSES", "JobRecord", "build_plan",
    "validate_spec",
    "TenantQuota", "TenantState",
    "STRIDE", "WeightedFairScheduler",
    "JobStore",
    "CampaignService",
    "dispatch",
    "BackgroundServer", "CampaignServer",
]
