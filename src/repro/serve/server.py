"""The asyncio HTTP/1.1 front end (stdlib only, no frameworks).

One ``asyncio.start_server`` loop parses minimal HTTP/1.1 —
request line, headers, ``Content-Length`` body — and hands each
request to :func:`repro.serve.api.dispatch` **in an executor thread**,
so a slow service call (submission validation, a lock briefly held by
a finishing campaign) never stalls the accept loop.  Responses are
``Connection: close``: the service's clients are campaign submitters
polling every few hundred milliseconds, not high-frequency RPC.

:class:`BackgroundServer` runs the same loop on a daemon thread for
tests and benchmarks that need a real socket without owning the
process's event loop.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from repro.serve.api import dispatch, reason_phrase

#: request hard limits — this is a campaign API, not a file upload
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[Tuple[str, str, bytes]]:
    """Parse one request into ``(method, target, body)``; ``None`` on
    EOF or malformed input."""
    try:
        header_blob = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
            ConnectionError):
        return None
    if len(header_blob) > MAX_HEADER_BYTES:
        return None
    try:
        head, _, _ = header_blob.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    except (ValueError, IndexError):
        return None
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY_BYTES:
        return None
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
    return method, target, body


def _render(status: int, headers, body: bytes) -> bytes:
    lines = [f"HTTP/1.1 {status} {reason_phrase(status)}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    lines.append(f"Content-Length: {len(body)}")
    lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class CampaignServer:
    """Bind the service to a host/port; ``port=0`` picks a free one."""

    def __init__(self, service, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port,
            limit=MAX_HEADER_BYTES + MAX_BODY_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, target, body = request
            loop = asyncio.get_running_loop()
            status, headers, payload = await loop.run_in_executor(
                None, dispatch, self.service, method, target, body)
            writer.write(_render(status, headers, payload))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            # a shutdown-time cancel ends the handler quietly; the
            # transport is torn down below either way
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass


class BackgroundServer:
    """The same server on a daemon thread (tests, benchmarks)."""

    def __init__(self, service, host: str = "127.0.0.1",
                 port: int = 0):
        self._server = CampaignServer(service, host, port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self.host = host
        self.port = port

    def start(self) -> int:
        """Start serving; returns the bound port."""
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-http")
        self._thread.start()
        if not self._started.wait(10.0):
            raise RuntimeError("HTTP server failed to start")
        self.port = self._server.port
        return self.port

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self._server.start()
            self._started.set()
            # serve until the loop is stopped from stop()
            await asyncio.Event().wait()
        try:
            self._loop.run_until_complete(main())
        except asyncio.CancelledError:
            pass
        finally:
            self._loop.close()

    def stop(self) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return

        async def shutdown() -> None:
            await self._server.stop()
            current = asyncio.current_task()
            for task in asyncio.all_tasks():
                if task is not current:
                    task.cancel()
        asyncio.run_coroutine_threadsafe(shutdown(), loop)
        if self._thread is not None:
            self._thread.join(10.0)
