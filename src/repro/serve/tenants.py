"""Per-tenant quotas and runtime accounting for the campaign service.

A tenant is an admission-control identity, not an authentication one:
the service trusts the ``tenant`` field of the job spec and uses it to
bound how much of the shared shard pool any one submitter can consume —
a bounded submission queue (backpressure), a cap on concurrently
running jobs, and a weight that sets its share of the scheduler's
weighted-fair rotation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    ``weight`` is the stride-scheduling share: a weight-2 tenant is
    dispatched twice as often as a weight-1 tenant under contention.
    ``retry_after`` is the hint (seconds) a 429 response carries.
    """

    weight: int = 1
    max_queued: int = 8
    max_running: int = 2
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise ValueError(f"weight must be >= 1, got {self.weight}")
        if self.max_queued < 1 or self.max_running < 1:
            raise ValueError("max_queued and max_running must be >= 1")


class TenantState:
    """One tenant's live scheduler state plus lifetime counters."""

    __slots__ = ("name", "quota", "queue", "running", "pass_value",
                 "submitted", "rejected", "completed", "failed",
                 "cancelled")

    def __init__(self, name: str, quota: TenantQuota):
        self.name = name
        self.quota = quota
        self.queue: Deque[Any] = deque()
        self.running = 0
        #: stride-scheduling virtual time; the eligible tenant with the
        #: lowest pass value dispatches next
        self.pass_value = 0.0
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0

    @property
    def queue_full(self) -> bool:
        return len(self.queue) >= self.quota.max_queued

    @property
    def eligible(self) -> bool:
        """Has queued work and headroom to run more."""
        return bool(self.queue) and self.running < self.quota.max_running

    def counters(self) -> Dict[str, float]:
        """Schema-v1 numeric fragment for the /metrics document."""
        return {
            "queued": len(self.queue),
            "running": self.running,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "weight": self.quota.weight,
            "pass_value": self.pass_value,
        }
