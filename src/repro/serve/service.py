"""The campaign service core: admission, scheduling, execution,
recovery.

Threading model
===============

The core is synchronous and lock-protected; asyncio exists only in the
HTTP front end (:mod:`repro.serve.server`), which pushes each request
into this layer via an executor.  One ``RLock`` guards all scheduler
and record state; campaign execution happens on a small
``ThreadPoolExecutor`` (one thread per concurrently running job), each
thread driving :func:`repro.par.engine.run_campaign_plan` with the
job's checkpoint directory, a per-job stop event, and a progress sink
on the event bus.

Determinism under restart
=========================

A job's plan is a pure function of its persisted (fully resolved) spec,
so a restarted service rebuilds the identical plan — identical
fingerprint — and reuses the job's checkpoint directory.  Completed
shards restore from disk, the remainder re-runs, and the merge layer's
shard-order contract makes the final result byte-identical (timing
aside) to an uninterrupted run: killing the service mid-campaign is
indistinguishable from a slow campaign.

Shutdown is a drain, not an abort: the service-wide stop event flows
into every running pool, in-flight shards finish and checkpoint, and
interrupted jobs are parked back in ``queued`` so the next start
resumes them.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Deque, Dict, List, Optional

from repro.errors import (
    CircuitOpen, JobNotCancellable, QueueFull, ReproError,
    ServiceUnavailable, UnknownJob,
)
from repro.obs.events import (
    BreakerEvent, Event, EventBus, JobEvent, QuarantineEvent,
    QueueRejectEvent, ShardDoneEvent, ShardRetryEvent, TraceContext,
)
from repro.obs.metrics import metrics_document
from repro.par.engine import run_campaign_plan
from repro.par.pool import PlanResult
from repro.serve.breaker import BreakerBoard
from repro.serve.jobs import (
    JOB_KINDS, JOB_STATUSES, JobRecord, build_plan, new_record,
    validate_spec,
)
from repro.serve.scheduler import WeightedFairScheduler
from repro.serve.store import JobStore
from repro.serve.tenants import TenantQuota


class CampaignService:
    """Multi-tenant campaign execution over one shared worker budget."""

    def __init__(self, store_dir: str, *, workers_total: int = 2,
                 max_concurrent_jobs: int = 2,
                 default_quota: Optional[TenantQuota] = None,
                 quotas: Optional[Dict[str, TenantQuota]] = None,
                 kinds: Optional[List[str]] = None,
                 bus: Optional[EventBus] = None, log=None,
                 events_tail: int = 4096,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 2.0):
        self.store = JobStore(store_dir)
        self.scheduler = WeightedFairScheduler(
            default_quota=default_quota, quotas=quotas)
        self.breakers = BreakerBoard(
            failure_threshold=breaker_threshold,
            base_cooldown=breaker_cooldown,
            on_transition=self._on_breaker)
        self.workers_total = max(1, workers_total)
        self.allowed_kinds = tuple(kinds) if kinds else JOB_KINDS
        self.bus = bus if bus is not None else EventBus()
        self.log = log or (lambda message: None)
        self._lock = threading.RLock()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, max_concurrent_jobs),
            thread_name_prefix="repro-serve-job")
        self._records: Dict[str, JobRecord] = {}
        self._stops: Dict[str, threading.Event] = {}
        self._granted: Dict[str, int] = {}
        #: per-job correlated event ring (the ``GET /jobs/{id}/events``
        #: stream); each entry is an event dict with a monotonically
        #: increasing ``seq`` so bounded rings keep cursors valid
        self._events_tail = max(1, events_tail)
        self._job_events: Dict[str, Deque[Dict[str, Any]]] = {}
        self._job_seq: Dict[str, int] = {}
        self._free_workers = self.workers_total
        self._draining = False
        self._t0 = time.monotonic()
        self._recover()

    # -- events -------------------------------------------------------------

    def _now(self) -> float:
        return time.monotonic() - self._t0

    def _job_ctx(self, record: JobRecord) -> TraceContext:
        return TraceContext(tenant=record.tenant,
                            job_id=record.job_id)

    def _record_event(self, job_id: str, event: Event) -> None:
        with self._lock:
            ring = self._job_events.setdefault(
                job_id, deque(maxlen=self._events_tail))
            seq = self._job_seq.get(job_id, 0) + 1
            self._job_seq[job_id] = seq
            entry = event.to_dict()
            entry["seq"] = seq
            ring.append(entry)
            try:
                # spill beside the ring so cursors survive both ring
                # eviction and service restarts
                self.store.append_event(job_id, entry)
            except OSError as exc:
                self.log(f"[repro.serve] event spill degraded "
                         f"({job_id}): {exc}")

    def _on_breaker(self, tenant: str, state: str, reason: str) -> None:
        """BreakerBoard transition hook → typed observability event."""
        self.log(f"[repro.serve] breaker for tenant {tenant!r} -> "
                 f"{state}: {reason}")
        self.bus.emit(BreakerEvent(site=None, tenant=tenant,
                                   state=state, reason=reason,
                                   t=self._now(),
                                   ctx=TraceContext(tenant=tenant)))

    def _save(self, record: JobRecord, what: str) -> None:
        """Best-effort record persistence: a host IO failure (real or
        injected ENOSPC/EIO) degrades durability, never the job — the
        in-memory record stays authoritative and the write is logged."""
        try:
            self.store.save(record)
        except OSError as exc:
            self.log(f"[repro.serve] job record write degraded "
                     f"({what}, {record.job_id}): "
                     f"{type(exc).__name__}: {exc}")

    def _emit_job(self, record: JobRecord, status: str) -> None:
        event = JobEvent(
            site=None, job_id=record.job_id, tenant=record.tenant,
            campaign=record.kind, status=status, t=self._now(),
            ctx=self._job_ctx(record))
        self._record_event(record.job_id, event)
        self.bus.emit(event)

    # -- recovery -----------------------------------------------------------

    def _recover(self) -> None:
        """Re-admit every non-terminal persisted job on startup.

        ``running`` jobs from a killed instance demote to ``queued``;
        their checkpoints hold every shard completed before the kill,
        so re-execution resumes rather than restarts.  Recovery
        re-admission bypasses queue bounds — these jobs were admitted
        before the restart.
        """
        for record in sorted(self.store.load_all(),
                             key=lambda r: r.job_id):
            self._records[record.job_id] = record
            # resume per-job event numbering after the spill's high
            # water mark so restart never reissues a seq a client saw
            spilled_seq = self.store.last_event_seq(record.job_id)
            if spilled_seq:
                self._job_seq[record.job_id] = spilled_seq
            if record.terminal:
                continue
            if record.status != "queued" or record.cancel_requested:
                record.status = "queued"
                record.cancel_requested = False
                self._save(record, "recover")
            self.scheduler.submit(record, force=True)
            self._emit_job(record, "requeued")
            self.log(f"[repro.serve] recovered {record.job_id} "
                     f"({record.kind}, tenant {record.tenant}); "
                     f"resuming from checkpoint")
        with self._lock:
            self._pump()

    # -- admission ----------------------------------------------------------

    def submit(self, body: Any) -> JobRecord:
        """Validate and admit one job; returns the queued record.

        Raises typed :class:`~repro.errors.ServiceError` subclasses on
        every rejection path: bad spec (400), draining (503), tenant
        queue full (429 + Retry-After), circuit breaker open
        (429 + Retry-After).
        """
        tenant, kind, workers, params = validate_spec(
            body, allowed_kinds=self.allowed_kinds)
        plan = build_plan(kind, params, workers)
        with self._lock:
            if self._draining:
                self.bus.emit(QueueRejectEvent(
                    site=None, tenant=tenant, reason="draining",
                    t=self._now(), ctx=TraceContext(tenant=tenant)))
                raise ServiceUnavailable()
            try:
                self.breakers.admit(tenant)
            except CircuitOpen:
                self.bus.emit(QueueRejectEvent(
                    site=None, tenant=tenant, reason="breaker",
                    t=self._now(), ctx=TraceContext(tenant=tenant)))
                raise
            record = new_record(
                self.store.next_job_id(), tenant, kind, workers,
                params, plan.fingerprint(), len(plan.shards))
            try:
                self.scheduler.submit(record)
            except QueueFull:
                self.bus.emit(QueueRejectEvent(
                    site=None, tenant=tenant, reason="queue_full",
                    t=self._now(), ctx=TraceContext(tenant=tenant)))
                raise
            self._records[record.job_id] = record
            self._save(record, "submit")
            self._emit_job(record, "queued")
            self._pump()
        return record

    # -- dispatch -----------------------------------------------------------

    def _pump(self) -> None:
        """Hand queued jobs to the executor while worker budget lasts.
        Caller holds the lock."""
        while not self._draining and self._free_workers >= 1:
            record = self.scheduler.next_job()
            if record is None:
                return
            granted = min(record.workers, self._free_workers)
            self._free_workers -= granted
            self._granted[record.job_id] = granted
            self._stops[record.job_id] = threading.Event()
            record.status = "running"
            record.started = time.time()
            self._save(record, "dispatch")
            self._emit_job(record, "running")
            self._executor.submit(self._run_job, record, granted)

    def _progress_bus(self, record: JobRecord) -> EventBus:
        """A per-job bus whose sink folds shard events into the
        record's live progress counters and the job's correlated
        event ring (the ``GET /jobs/{id}/events`` stream)."""
        bus = EventBus()

        def sink(event) -> None:
            self._record_event(record.job_id, event)
            if isinstance(event, ShardDoneEvent) \
                    and event.status == "ok":
                record.progress["shards_done"] = \
                    record.progress.get("shards_done", 0) + 1
            elif isinstance(event, ShardRetryEvent):
                record.progress["retries"] = \
                    record.progress.get("retries", 0) + 1
            elif isinstance(event, QuarantineEvent):
                record.progress["quarantined"] = \
                    record.progress.get("quarantined", 0) + 1
            else:
                return
            with self._lock:
                self._save(record, "progress")
        bus.subscribe(sink)
        return bus

    def _run_job(self, record: JobRecord, granted: int) -> None:
        """Executor thread: run one campaign to a terminal (or
        drained) state."""
        stop = self._stops[record.job_id]
        try:
            plan = build_plan(record.kind, record.params,
                              record.workers)
            merged, outcome = run_campaign_plan(
                plan, jobs=granted,
                checkpoint_dir=self.store.checkpoint_dir(
                    record.job_id),
                bus=self._progress_bus(record), stop=stop,
                log=self.log, context=self._job_ctx(record),
                quarantine=True)
        except BaseException as exc:  # noqa: BLE001 — typed to client
            error = exc.to_dict() if isinstance(exc, ReproError) else {
                "type": type(exc).__name__, "message": str(exc),
                "fields": {}}
            self.breakers.record_failure(record.tenant, error["type"])
            self._finish(record, granted, status="failed", error=error)
            return
        self._on_executed(record, granted, merged, outcome)

    def _on_executed(self, record: JobRecord, granted: int,
                     merged: Any, outcome: PlanResult) -> None:
        record.progress["shards_done"] = \
            len(outcome.executed) + len(outcome.restored)
        record.progress["shards_restored"] = len(outcome.restored)
        if outcome.drained:
            if record.cancel_requested:
                self._finish(record, granted, status="cancelled")
            else:
                # Parked, not failed: the record goes back to queued so
                # the next service start resumes it from checkpoint.
                self._finish(record, granted, status="queued",
                             event="requeued")
            return
        result = _render_result(record.kind, record.params, merged,
                                outcome)
        # Correlation ids ride beside the metrics document, never in
        # it: the embedded document must stay byte-comparable with the
        # batch CLI's artifact for the same seed.
        result["correlation"] = self._job_ctx(record).to_dict()
        if outcome.quarantined:
            # poison shards are typed result records, not job failures:
            # the campaign completed around them — but the tenant's
            # breaker trips, because a quarantine means a full retry
            # budget proved the submitted work hostile
            result["quarantined"] = [q.to_dict()
                                     for q in outcome.quarantined]
            self.breakers.record_quarantine(
                record.tenant,
                f"{record.job_id} shard "
                f"{outcome.quarantined[0].shard_id}")
        if outcome.ok and result.get("ok", True):
            if not outcome.quarantined:
                self.breakers.record_success(record.tenant)
            self._finish(record, granted, status="done",
                         result=result)
        else:
            error = None
            if outcome.failures:
                error = {"type": "ShardFailure",
                         "message": f"{len(outcome.failures)} shard(s) "
                                    f"exhausted their retry budget",
                         "fields": {"failures": [
                             failure.to_dict()
                             for failure in outcome.failures]}}
                self.breakers.record_failure(record.tenant,
                                             "ShardFailure")
            else:
                self.breakers.record_failure(record.tenant,
                                             "campaign not ok")
            self._finish(record, granted, status="failed",
                         result=result, error=error)

    def _finish(self, record: JobRecord, granted: int, *, status: str,
                result: Optional[Dict[str, Any]] = None,
                error: Optional[Dict[str, Any]] = None,
                event: Optional[str] = None) -> None:
        with self._lock:
            record.status = status
            record.result = result
            record.error = error
            if record.terminal:
                record.finished = time.time()
            self.scheduler.release(
                record.tenant,
                status if record.terminal else "requeued")
            self._free_workers += granted
            self._granted.pop(record.job_id, None)
            self._stops.pop(record.job_id, None)
            self._save(record, "finish")
            self._emit_job(record, event or status)
            self._pump()

    # -- queries ------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise UnknownJob(job_id)
        return record

    def job_events(self, job_id: str,
                   after: int = 0) -> List[Dict[str, Any]]:
        """The job's correlated event stream (dicts with ``seq``,
        ``kind``, and ``ctx`` correlation ids), oldest first.

        ``after`` is a resume cursor: only events with ``seq > after``
        are returned, so a client polling the NDJSON endpoint sees each
        event exactly once.  The ring is bounded (``events_tail``), and
        every entry is also spilled to
        ``<store>/events/<job_id>.jsonl`` as it is recorded — a cursor
        older than the ring's oldest entry (ring eviction, or a service
        restart that emptied the ring) is served transparently from the
        spill, so clients never see artificial ``seq`` gaps.
        """
        self.get(job_id)    # raises UnknownJob for unknown ids
        with self._lock:
            ring = list(self._job_events.get(job_id, ()))
        entries = [entry for entry in ring if entry["seq"] > after]
        oldest = ring[0]["seq"] if ring else None
        if oldest is None or oldest > after + 1:
            spilled = self.store.load_events(job_id, after)
            if oldest is not None:
                spilled = [entry for entry in spilled
                           if entry["seq"] < oldest]
            entries = spilled + entries
        return entries

    def list_jobs(self, tenant: Optional[str] = None) -> List[JobRecord]:
        with self._lock:
            records = sorted(self._records.values(),
                             key=lambda r: r.job_id)
        if tenant is not None:
            records = [r for r in records if r.tenant == tenant]
        return records

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job immediately, or request a running job's
        pool to drain (it lands in ``cancelled`` once in-flight shards
        finish)."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise UnknownJob(job_id)
            if record.terminal:
                raise JobNotCancellable(job_id, record.status)
            if record.status == "queued":
                self.scheduler.cancel_queued(job_id)
                record.status = "cancelled"
                record.finished = time.time()
                self._save(record, "cancel")
                self._emit_job(record, "cancelled")
                return record
            record.cancel_requested = True
            self._save(record, "cancel")
            stop = self._stops.get(job_id)
            if stop is not None:
                stop.set()
            return record

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.02) -> JobRecord:
        """Block until a job leaves ``running``/dispatch (tests and the
        smoke CLI); returns the record in whatever state it reached."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            record = self.get(job_id)
            if record.terminal:
                return record
            time.sleep(poll)
        return self.get(job_id)

    # -- health & metrics ---------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """Service health: ``ok`` | ``degraded`` | ``draining``.

        ``degraded`` means the service is up but some tenant's circuit
        breaker is not closed; the ``breakers`` block carries the
        per-tenant detail (state, trip count, cooldown, reason) so a
        prober can tell *whose* work is being rejected.
        """
        with self._lock:
            counts = {status: 0 for status in JOB_STATUSES}
            for record in self._records.values():
                counts[record.status] = counts.get(record.status, 0) + 1
            if self._draining:
                status = "draining"
            elif self.breakers.degraded():
                status = "degraded"
            else:
                status = "ok"
            return {
                "status": status,
                "uptime_seconds": self._now(),
                "workers_total": self.workers_total,
                "workers_free": self._free_workers,
                "jobs": counts,
                "breakers": self.breakers.open_breakers(),
            }

    def metrics(self) -> Dict[str, Any]:
        """One schema-v2 metrics document describing the service.

        Besides the service-wide gauges, ``per_shard`` rolls the
        correlated event rings up per job and shard — event, retry, and
        completion counts keyed by the same (job, shard) ids every
        event stream and forensics bundle carries — so a scrape can be
        joined against ``GET /jobs/{id}/events`` without replaying it.
        """
        with self._lock:
            counts = {status: 0 for status in JOB_STATUSES}
            shards_done = 0
            for record in self._records.values():
                counts[record.status] = counts.get(record.status, 0) + 1
                shards_done += record.progress.get("shards_done", 0)
            per_shard: Dict[str, Any] = {}
            for job_id, ring in self._job_events.items():
                rollup: Dict[str, Dict[str, int]] = {}
                for entry in ring:
                    ctx = entry.get("ctx") or {}
                    shard_id = ctx.get("shard_id")
                    if shard_id is None:
                        continue
                    cell = rollup.setdefault(
                        str(shard_id),
                        {"events": 0, "done": 0, "retries": 0})
                    cell["events"] += 1
                    if entry["kind"] == "shard_done" \
                            and entry.get("status") == "ok":
                        cell["done"] += 1
                    elif entry["kind"] == "shard_retry":
                        cell["retries"] += 1
                if rollup:
                    per_shard[job_id] = rollup
            payload = {
                "uptime_seconds": self._now(),
                "draining": int(self._draining),
                "workers": {"total": self.workers_total,
                            "free": self._free_workers},
                "jobs": counts,
                "queue_depth": self.scheduler.depth(),
                "breakers_open": len(self.breakers.open_breakers()),
                "shards_done": shards_done,
                "tenants": self.scheduler.snapshot(),
                "per_shard": per_shard,
            }
        return metrics_document("serve", {"store": self.store.root},
                                payload,
                                labels={"component": "repro.serve"})

    # -- shutdown -----------------------------------------------------------

    def drain(self, wait: bool = True) -> None:
        """Stop admitting, drain running pools, park unfinished jobs.

        In-flight shards finish and checkpoint; running jobs whose
        pools drained go back to ``queued`` for the next start.  With
        ``wait=True`` (the default) this blocks until every executor
        thread has returned.
        """
        with self._lock:
            if self._draining:
                return
            self._draining = True
            for stop in self._stops.values():
                stop.set()
        self.log("[repro.serve] draining: in-flight shards finishing "
                 "and checkpointing")
        self._executor.shutdown(wait=wait)


def _render_result(kind: str, params: Dict[str, Any], merged: Any,
                   outcome: PlanResult) -> Dict[str, Any]:
    """Project a merged campaign result into the JSON body clients see.

    The embedded ``metrics_document`` deliberately excludes pool
    accounting (shards executed/restored, utilization) so it compares
    byte-identical — under the timing-insensitive
    :func:`repro.par.merge.canonical_metrics` projection — with the
    document the batch CLI writes for the same seed, even when the
    service was killed and restarted mid-campaign.  Pool accounting
    lives alongside in ``pool``.
    """
    pool = outcome.utilization_metrics()
    if kind == "fuzz":
        return {
            "ok": merged.ok,
            "summary": merged.summary(),
            "metrics_document": metrics_document(
                "fuzz",
                {"seed": params["seed"],
                 "iterations": params["iterations"],
                 "configs": ",".join(params["configs"])},
                merged.metrics()),
            "pool": pool,
        }
    if kind == "resil":
        return {
            "ok": merged.ok,
            "summary": merged.render(),
            "metrics_document": metrics_document(
                "resil",
                {"seed": params["seed"], "scale": params["scale"],
                 "policy": merged.policy_name,
                 "workloads": ",".join(params["workloads"]),
                 "schemes": ",".join(params["schemes"]),
                 "faults": ",".join(params["faults"])},
                merged.metrics()),
            "pool": pool,
        }
    if kind == "juliet":
        by_cwe = {cwe: dict(row)
                  for cwe, row in merged.by_cwe().items()}
        return {
            "ok": merged.all_passed,
            "summary": merged.summary(),
            "metrics_document": metrics_document(
                "juliet_parallel",
                {"seed": params["seed"],
                 "allocator": params["allocator"]},
                {"total": merged.total, "detected": merged.detected,
                 "bad_total": merged.bad_total,
                 "false_positives": merged.false_positives,
                 "good_total": merged.good_total, "by_cwe": by_cwe}),
            "pool": pool,
        }
    if kind == "bench":
        return {
            "ok": True,
            "metrics_document": metrics_document(
                "bench_sweep",
                {"workloads": ",".join(params["workloads"]),
                 "configs": ",".join(params["configs"]),
                 "scale": params["scale"]},
                {"cells": merged}),
            "pool": pool,
        }
    if kind == "selftest":
        return {
            "ok": outcome.ok,
            "values": [payload["value"] if payload else None
                       for payload in merged],
            "pool": pool,
        }
    raise ValueError(f"unknown kind {kind!r}")
