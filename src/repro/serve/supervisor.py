"""Self-healing supervisor for the campaign service.

``python -m repro.serve --supervise`` does not run the server in the
invoking process: it forks the *same* command line minus
``--supervise`` as a child and babysits it.  A child that dies
abnormally — a crash, an OOM kill, a chaos-harness ``kill -9`` — is
restarted against the same ``--store``, where :class:`JobStore`
recovery parks interrupted jobs back in ``queued`` and resumes their
campaigns from checkpoints.  That loop is what turns the host fault
model of :mod:`repro.resil.chaos` into a live service property: kill
the server mid-campaign and the numbers still come out identical.

Restart policy:

* exponential backoff — ``backoff_base * 2**(restarts_in_a_row - 1)``,
  capped at ``backoff_max`` — so a crash-looping child (bad flags, a
  corrupt store) cannot spin the host;
* the streak resets once a child stays up ``healthy_seconds``: a crash
  every few hours pays the base delay, not the accumulated one;
* ``max_restarts`` bounds the total (0 = unbounded);
* a child that exits 0 (clean drain after SIGTERM) ends supervision
  with exit 0 — a deliberate shutdown is not a fault.

SIGTERM/SIGINT to the supervisor forward to the child, then wait for
its clean drain.  The supervisor never parses the child's traffic; the
contract is purely process-level, which is what makes it honest as a
chaos subject — CI kills the child with ``-9`` exactly like the fault
model does.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class SupervisorPolicy:
    """Restart-loop knobs, defaults tuned for the CI chaos smoke."""

    backoff_base: float = 0.5
    backoff_max: float = 30.0
    healthy_seconds: float = 5.0    #: uptime that resets the streak
    max_restarts: int = 0           #: total restart budget; 0 = unbounded

    def delay(self, streak: int) -> float:
        """Backoff before restart number ``streak`` (1-based) of the
        current crash run."""
        return min(self.backoff_max,
                   self.backoff_base * (2 ** max(0, streak - 1)))


@dataclass
class Supervisor:
    """Run ``child_argv`` until it exits cleanly, restarting crashes.

    ``sleep`` and ``clock`` are injectable so tests drive time; the
    real CLI passes the defaults.
    """

    child_argv: List[str]
    policy: SupervisorPolicy = field(default_factory=SupervisorPolicy)
    log: Callable[[str], None] = print
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic
    spawn: Callable[..., "subprocess.Popen"] = subprocess.Popen

    def __post_init__(self) -> None:
        self.restarts = 0           #: total restarts performed
        self._streak = 0            #: consecutive unhealthy exits
        self._child: Optional[subprocess.Popen] = None
        self._stopping = False

    # -- signals ---------------------------------------------------------

    def request_stop(self, signum: int = signal.SIGTERM) -> None:
        """Forward a shutdown signal to the child and stop restarting.
        Safe to call from a signal handler."""
        self._stopping = True
        child = self._child
        if child is not None and child.poll() is None:
            try:
                child.send_signal(signum)
            except (ProcessLookupError, OSError):
                pass

    # -- the loop ----------------------------------------------------------

    def _reap_group(self, pid: int) -> None:
        """SIGKILL everything left in the child's process group.

        A kill -9 on the server leaves its forked pool workers alive —
        orphans that still hold the inherited listening socket (so the
        restarted server cannot bind) and still write the checkpoint
        (racing the resume).  The child runs as its own group leader
        precisely so one killpg reaps the whole family."""
        try:
            os.killpg(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            pass

    def run(self) -> int:
        """Supervise until a clean exit (returns 0), the restart
        budget runs out, or a stop was requested (returns the child's
        last exit code)."""
        while True:
            started = self.clock()
            self._child = self.spawn(self.child_argv,
                                     start_new_session=True)
            self.log(f"[repro.serve.supervisor] child started "
                     f"(pid {self._child.pid})")
            code = self._child.wait()
            uptime = self.clock() - started
            self._reap_group(self._child.pid)
            self._child = None
            if code == 0:
                self.log("[repro.serve.supervisor] child drained "
                         "cleanly; supervision complete")
                return 0
            if self._stopping:
                self.log(f"[repro.serve.supervisor] child exited "
                         f"{code} during shutdown; not restarting")
                return code
            if uptime >= self.policy.healthy_seconds:
                self._streak = 0
            self._streak += 1
            self.restarts += 1
            if self.policy.max_restarts \
                    and self.restarts > self.policy.max_restarts:
                self.log(f"[repro.serve.supervisor] restart budget "
                         f"({self.policy.max_restarts}) exhausted; "
                         f"giving up with child exit {code}")
                return code
            delay = self.policy.delay(self._streak)
            self.log(f"[repro.serve.supervisor] child exited {code} "
                     f"after {uptime:.1f}s; restart #{self.restarts} "
                     f"in {delay:.1f}s")
            self.sleep(delay)
            if self._stopping:
                return code


def strip_supervise_flags(argv: List[str]) -> List[str]:
    """The child's argv: the supervisor's own, minus the flags that
    would make the child supervise recursively."""
    out: List[str] = []
    skip = 0
    for arg in argv:
        if skip:
            skip -= 1
            continue
        if arg == "--supervise":
            continue
        if arg in ("--restart-backoff", "--max-restarts"):
            skip = 1
            continue
        if arg.startswith(("--restart-backoff=", "--max-restarts=")):
            continue
        out.append(arg)
    return out


def supervise(argv: List[str], *, backoff_base: float = 0.5,
              max_restarts: int = 0, log=print) -> int:
    """Entry point used by ``python -m repro.serve --supervise``:
    re-exec this interpreter on ``repro.serve`` with the supervise
    flags stripped, and babysit it."""
    child_argv = [sys.executable, "-m", "repro.serve",
                  *strip_supervise_flags(argv)]
    supervisor = Supervisor(
        child_argv,
        policy=SupervisorPolicy(backoff_base=backoff_base,
                                max_restarts=max_restarts),
        log=log)
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(
            signum,
            lambda s, _frame: supervisor.request_stop(s))
    return supervisor.run()


def write_pid_file(path: str) -> None:
    """Record this process's pid for out-of-band chaos tooling (CI
    uses it to aim ``kill -9`` at the server, not the shell)."""
    with open(path, "w") as handle:
        handle.write(f"{os.getpid()}\n")
