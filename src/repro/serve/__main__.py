"""CLI entry point: ``python -m repro.serve``.

Boot the multi-tenant campaign service::

    python -m repro.serve --port 8340 --store serve-store --workers 2

    # submit a fuzz campaign from any HTTP client
    curl -X POST http://127.0.0.1:8340/jobs -d '{
        "tenant": "alice", "kind": "fuzz",
        "params": {"iterations": 50, "seed": 0}}'

    # poll, observe, cancel
    curl http://127.0.0.1:8340/jobs/job-000001
    curl http://127.0.0.1:8340/metrics
    curl -X DELETE http://127.0.0.1:8340/jobs/job-000001

SIGTERM/SIGINT drains gracefully: admission stops (503), in-flight
shards finish and checkpoint, interrupted jobs park back in ``queued``,
and the next boot against the same ``--store`` resumes them from their
checkpoints — results stay byte-identical (timing aside) to an
uninterrupted run.

``--supervise`` adds the self-healing layer on top: the server runs
as a child process and any abnormal exit (crash, OOM, ``kill -9``)
restarts it against the same store with exponential backoff — see
:mod:`repro.serve.supervisor`.  ``--pid-file`` records the *server*
process's pid (the child, under ``--supervise``) so chaos tooling can
aim its kills::

    python -m repro.serve --supervise --pid-file server.pid \\
        --store serve-store
    kill -9 "$(cat server.pid)"   # supervisor restarts; jobs resume
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.obs.events import EventBus, JobEvent, QueueRejectEvent
from repro.serve.server import CampaignServer
from repro.serve.service import CampaignService
from repro.serve.tenants import TenantQuota


def _parse_weights(entries):
    weights = {}
    for entry in entries or []:
        name, _, value = entry.partition("=")
        try:
            weights[name] = int(value)
        except ValueError:
            raise SystemExit(
                f"--tenant-weight expects NAME=WEIGHT, got {entry!r}")
    return weights


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Multi-tenant campaign service over the sharded "
                    "repro.par engine.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8340,
                        help="listen port; 0 picks a free one "
                             "(default 8340)")
    parser.add_argument("--store", default="serve-store", metavar="DIR",
                        help="persistent job + checkpoint root "
                             "(default serve-store/)")
    parser.add_argument("--workers", type=int, default=2,
                        help="global shard-worker budget shared by all "
                             "running jobs (default 2)")
    parser.add_argument("--max-concurrent-jobs", type=int, default=2,
                        help="jobs executing at once (default 2)")
    parser.add_argument("--max-queued", type=int, default=8,
                        help="per-tenant queued-job bound; full queues "
                             "get 429 + Retry-After (default 8)")
    parser.add_argument("--max-running", type=int, default=2,
                        help="per-tenant running-job cap (default 2)")
    parser.add_argument("--tenant-weight", action="append",
                        metavar="NAME=WEIGHT",
                        help="weighted-fair share override, repeatable")
    parser.add_argument("--kinds",
                        help="comma-separated campaign kinds to accept "
                             "(default: all)")
    parser.add_argument("--supervise", action="store_true",
                        help="run the server as a supervised child; "
                             "abnormal exits restart it against the "
                             "same store with exponential backoff")
    parser.add_argument("--restart-backoff", type=float, default=0.5,
                        metavar="SECONDS",
                        help="supervisor restart backoff base "
                             "(default 0.5, doubles per crash streak)")
    parser.add_argument("--max-restarts", type=int, default=0,
                        help="supervisor restart budget "
                             "(default 0 = unbounded)")
    parser.add_argument("--pid-file", metavar="PATH",
                        help="write the server process's pid here "
                             "(the child's, under --supervise)")
    parser.add_argument("--quiet", "-q", action="store_true")
    args = parser.parse_args(argv)

    log = (lambda message: None) if args.quiet else print
    if args.supervise:
        from repro.serve.supervisor import supervise
        return supervise(list(argv) if argv is not None
                         else sys.argv[1:],
                         backoff_base=args.restart_backoff,
                         max_restarts=args.max_restarts, log=log)
    if args.pid_file:
        from repro.serve.supervisor import write_pid_file
        write_pid_file(args.pid_file)
    weights = _parse_weights(args.tenant_weight)
    default_quota = TenantQuota(max_queued=args.max_queued,
                                max_running=args.max_running)
    quotas = {name: TenantQuota(weight=weight,
                                max_queued=args.max_queued,
                                max_running=args.max_running)
              for name, weight in weights.items()}
    kinds = [k.strip() for k in args.kinds.split(",")
             if k.strip()] if args.kinds else None

    bus = EventBus()
    if not args.quiet:
        def narrate(event) -> None:
            if isinstance(event, JobEvent):
                log(f"[repro.serve] {event.job_id} "
                    f"({event.campaign}, tenant {event.tenant}) "
                    f"-> {event.status}")
            elif isinstance(event, QueueRejectEvent):
                log(f"[repro.serve] rejected submission from tenant "
                    f"{event.tenant}: {event.reason}")
        bus.subscribe(narrate)

    service = CampaignService(
        args.store, workers_total=args.workers,
        max_concurrent_jobs=args.max_concurrent_jobs,
        default_quota=default_quota, quotas=quotas, kinds=kinds,
        bus=bus, log=log)
    return asyncio.run(_serve(service, args.host, args.port, log))


async def _serve(service, host: str, port: int, log) -> int:
    server = CampaignServer(service, host, port)
    bound = await server.start()
    log(f"[repro.serve] listening on http://{host}:{bound} "
        f"(store: {service.store.root})")
    shutdown = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, shutdown.set)
    await shutdown.wait()
    log("[repro.serve] shutdown requested; draining")
    await server.stop()
    # drain blocks on in-flight campaigns checkpointing; keep it off
    # the event loop thread
    await loop.run_in_executor(None, service.drain)
    log("[repro.serve] drained; unfinished jobs parked for resume")
    return 0


if __name__ == "__main__":
    sys.exit(main())
