"""On-disk persistence for the campaign service.

One store directory holds everything a service instance needs to
survive a kill -9::

    <root>/jobs/job-000001.json      one JSON document per job record
    <root>/checkpoints/job-000001/   that job's repro.par checkpoint
    <root>/events/job-000001.jsonl   that job's spilled event ring

Job records are written through :func:`repro.hostio.atomic_write_json`
(temp file + ``os.replace``), the same discipline — and the same
chaos-injection seam — as the checkpoint manifests one level down, so
a crash mid-write can never leave a half-record: the restarted service
sees either the previous state or the new one.  Opening a store sweeps
the stale ``.tmp`` debris such a crash leaves behind.  Campaign
*results* live in the checkpoint layer (per-shard result files), which
is what makes a restart resume mid-campaign instead of restarting it;
the event spill is what lets ``GET /jobs/<id>/events`` page past the
bounded in-memory ring after a restart.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List

from repro.errors import UnknownJob
from repro.hostio import atomic_write_json, sweep_stale_tmp
from repro.serve.jobs import JobRecord

_JOB_FILE = re.compile(r"^job-(\d{6})\.json$")


class JobStore:
    """Job records + per-job checkpoint directories under one root."""

    def __init__(self, root: str):
        self.root = root
        self.jobs_dir = os.path.join(root, "jobs")
        self.checkpoints_dir = os.path.join(root, "checkpoints")
        self.events_dir = os.path.join(root, "events")
        sweep_stale_tmp(self.jobs_dir)
        sweep_stale_tmp(self.events_dir)
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.checkpoints_dir, exist_ok=True)
        os.makedirs(self.events_dir, exist_ok=True)
        self._next_index = 1 + max(
            (int(match.group(1))
             for name in os.listdir(self.jobs_dir)
             if (match := _JOB_FILE.match(name))), default=0)

    # -- identity -----------------------------------------------------------

    def next_job_id(self) -> str:
        job_id = f"job-{self._next_index:06d}"
        self._next_index += 1
        return job_id

    def job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def checkpoint_dir(self, job_id: str) -> str:
        return os.path.join(self.checkpoints_dir, job_id)

    def events_path(self, job_id: str) -> str:
        """The job's event spill: one JSON line per service/shard
        event, appended as emitted (plain append — each line is small
        enough that a torn tail line is just skipped on read)."""
        return os.path.join(self.events_dir, f"{job_id}.jsonl")

    # -- records ------------------------------------------------------------

    def save(self, record: JobRecord) -> None:
        atomic_write_json(self.job_path(record.job_id),
                          record.to_dict(), op="job_record")

    def load(self, job_id: str) -> JobRecord:
        try:
            with open(self.job_path(job_id)) as handle:
                return JobRecord.from_dict(json.load(handle))
        except (OSError, ValueError, KeyError):
            raise UnknownJob(job_id) from None

    def load_all(self) -> List[JobRecord]:
        records: List[JobRecord] = []
        for name in sorted(os.listdir(self.jobs_dir)):
            if not _JOB_FILE.match(name):
                continue
            try:
                with open(os.path.join(self.jobs_dir, name)) as handle:
                    records.append(JobRecord.from_dict(
                        json.load(handle)))
            except (OSError, ValueError, KeyError):
                continue    # a torn record never existed (atomic write)
        return records

    # -- event spill ----------------------------------------------------------

    def append_event(self, job_id: str, entry: Dict[str, Any]) -> None:
        """Append one event entry to the job's spill file.

        Best-effort by design: the spill is an observability artifact,
        so a full disk degrades event history, never the job itself —
        the caller guards with ``except OSError``.
        """
        with open(self.events_path(job_id), "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")

    def load_events(self, job_id: str, after: int = 0
                    ) -> List[Dict[str, Any]]:
        """Read the job's spilled events with ``seq > after``, in
        order.  Missing spill → empty; a torn final line (the crash
        window of a plain append) is skipped."""
        entries: List[Dict[str, Any]] = []
        try:
            with open(self.events_path(job_id)) as handle:
                for line in handle:
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(entry, dict) \
                            and entry.get("seq", 0) > after:
                        entries.append(entry)
        except OSError:
            return []
        return entries

    def last_event_seq(self, job_id: str) -> int:
        """Highest spilled sequence number (0 when no spill) — how a
        restarted service resumes its per-job event numbering without
        replaying rings into memory."""
        seq = 0
        for entry in self.load_events(job_id):
            seq = max(seq, int(entry.get("seq", 0)))
        return seq
