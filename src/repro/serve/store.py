"""On-disk persistence for the campaign service.

One store directory holds everything a service instance needs to
survive a kill -9::

    <root>/jobs/job-000001.json      one JSON document per job record
    <root>/checkpoints/job-000001/   that job's repro.par checkpoint

Job records are written atomically (temp file + ``os.replace``), the
same discipline as the checkpoint manifests one level down, so a crash
mid-write can never leave a half-record: the restarted service sees
either the previous state or the new one.  Campaign *results* live in
the checkpoint layer (per-shard result files), which is what makes a
restart resume mid-campaign instead of restarting it.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List

from repro.errors import UnknownJob
from repro.serve.jobs import JobRecord

_JOB_FILE = re.compile(r"^job-(\d{6})\.json$")


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


class JobStore:
    """Job records + per-job checkpoint directories under one root."""

    def __init__(self, root: str):
        self.root = root
        self.jobs_dir = os.path.join(root, "jobs")
        self.checkpoints_dir = os.path.join(root, "checkpoints")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.checkpoints_dir, exist_ok=True)
        self._next_index = 1 + max(
            (int(match.group(1))
             for name in os.listdir(self.jobs_dir)
             if (match := _JOB_FILE.match(name))), default=0)

    # -- identity -----------------------------------------------------------

    def next_job_id(self) -> str:
        job_id = f"job-{self._next_index:06d}"
        self._next_index += 1
        return job_id

    def job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def checkpoint_dir(self, job_id: str) -> str:
        return os.path.join(self.checkpoints_dir, job_id)

    # -- records ------------------------------------------------------------

    def save(self, record: JobRecord) -> None:
        _atomic_write_json(self.job_path(record.job_id),
                           record.to_dict())

    def load(self, job_id: str) -> JobRecord:
        try:
            with open(self.job_path(job_id)) as handle:
                return JobRecord.from_dict(json.load(handle))
        except (OSError, ValueError, KeyError):
            raise UnknownJob(job_id) from None

    def load_all(self) -> List[JobRecord]:
        records: List[JobRecord] = []
        for name in sorted(os.listdir(self.jobs_dir)):
            if not _JOB_FILE.match(name):
                continue
            try:
                with open(os.path.join(self.jobs_dir, name)) as handle:
                    records.append(JobRecord.from_dict(
                        json.load(handle)))
            except (OSError, ValueError, KeyError):
                continue    # a torn record never existed (atomic write)
        return records
