"""Transport-independent HTTP API dispatch for the campaign service.

:func:`dispatch` maps ``(method, target, body)`` onto service calls
and renders ``(status, headers, body bytes)`` — the asyncio server is a
thin socket loop around it, and tests can drive the full API without a
socket.

Routes::

    POST   /jobs              submit a job spec       -> 201 record
    GET    /jobs[?tenant=t]   list jobs               -> 200 {"jobs": []}
    GET    /jobs/<id>         one job record          -> 200 record
    GET    /jobs/<id>/events[?after=N]  correlated event stream
                                                      -> 200 NDJSON
    DELETE /jobs/<id>         cancel                  -> 200 record
    GET    /metrics           Prometheus exposition   -> 200 text
    GET    /metrics?format=json   schema-v2 document  -> 200 JSON
    GET    /healthz           liveness + job counts   -> 200 JSON

The events endpoint returns one JSON object per line (NDJSON), each
carrying ``seq`` plus the job's (tenant, job, shard, seed)
correlation ids; ``?after=N`` resumes past the last ``seq`` a client
has seen, so polling the endpoint while a job runs observes its event
stream live and loss-free.

Every error is a typed :class:`~repro.errors.ServiceError`: the status
code comes from ``http_status``, the body is the error's ``to_dict``
form (so clients can rebuild the typed exception with ``from_dict``),
and errors carrying ``retry_after`` — the 429/503 backpressure family —
additionally produce a ``Retry-After`` header.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import InvalidJobSpec, ServiceError, UnknownJob
from repro.obs.metrics import to_prometheus

Response = Tuple[int, List[Tuple[str, str]], bytes]

_REASONS = {200: "OK", 201: "Created", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


def reason_phrase(status: int) -> str:
    return _REASONS.get(status, "Unknown")


def _json_response(status: int, payload: Any,
                   extra_headers: List[Tuple[str, str]] = []) -> Response:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n") \
        .encode("utf-8")
    headers = [("Content-Type", "application/json")] + extra_headers
    return status, headers, body


def _error_response(exc: ServiceError) -> Response:
    headers: List[Tuple[str, str]] = []
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        headers.append(("Retry-After", f"{retry_after:g}"))
    return _json_response(exc.http_status, {"error": exc.to_dict()},
                          headers)


def _parse_body(body: bytes) -> Any:
    if not body:
        raise InvalidJobSpec("request body is empty", field="body")
    try:
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise InvalidJobSpec(f"request body is not valid JSON: {exc}",
                             field="body") from None


def dispatch(service, method: str, target: str,
             body: bytes = b"") -> Response:
    """Route one request; never raises — every failure renders as a
    typed JSON error response."""
    try:
        return _route(service, method.upper(), target, body)
    except ServiceError as exc:
        return _error_response(exc)
    except Exception as exc:  # noqa: BLE001 — last-resort 500
        return _json_response(500, {"error": {
            "type": type(exc).__name__, "message": str(exc),
            "fields": {}}})


def _route(service, method: str, target: str, body: bytes) -> Response:
    parts = urlsplit(target)
    path = parts.path.rstrip("/") or "/"
    query: Dict[str, List[str]] = parse_qs(parts.query)

    if path == "/healthz":
        if method != "GET":
            return _method_not_allowed(method, path)
        return _json_response(200, service.healthz())

    if path == "/metrics":
        if method != "GET":
            return _method_not_allowed(method, path)
        document = service.metrics()
        if query.get("format", ["prometheus"])[0] == "json":
            return _json_response(200, document)
        text = to_prometheus(document).encode("utf-8")
        return 200, [("Content-Type",
                      "text/plain; version=0.0.4")], text

    if path == "/jobs":
        if method == "POST":
            record = service.submit(_parse_body(body))
            return _json_response(201, record.to_dict())
        if method == "GET":
            tenant = query.get("tenant", [None])[0]
            return _json_response(200, {
                "jobs": [record.to_dict()
                         for record in service.list_jobs(tenant)]})
        return _method_not_allowed(method, path)

    if path.startswith("/jobs/") and path.endswith("/events"):
        job_id = path[len("/jobs/"):-len("/events")]
        if not job_id or "/" in job_id:
            raise UnknownJob(job_id)
        if method != "GET":
            return _method_not_allowed(method, path)
        after = _parse_after(query)
        lines = [json.dumps(entry, sort_keys=True)
                 for entry in service.job_events(job_id, after=after)]
        body = ("\n".join(lines) + ("\n" if lines else "")) \
            .encode("utf-8")
        return 200, [("Content-Type", "application/x-ndjson")], body

    if path.startswith("/jobs/"):
        job_id = path[len("/jobs/"):]
        if "/" in job_id:
            raise UnknownJob(job_id)
        if method == "GET":
            return _json_response(200, service.get(job_id).to_dict())
        if method == "DELETE":
            return _json_response(200,
                                  service.cancel(job_id).to_dict())
        return _method_not_allowed(method, path)

    return _json_response(404, {"error": {
        "type": "NotFound", "message": f"no route for {path}",
        "fields": {}}})


def _parse_after(query: Dict[str, List[str]]) -> int:
    raw = query.get("after", ["0"])[0]
    try:
        return int(raw)
    except ValueError:
        raise InvalidJobSpec(
            f"expected an integer cursor, got {raw!r}",
            field="after") from None


def _method_not_allowed(method: str, path: str) -> Response:
    return _json_response(405, {"error": {
        "type": "MethodNotAllowed",
        "message": f"{method} not allowed on {path}", "fields": {}}})
