"""Weighted-fair job scheduling with bounded-queue backpressure.

Stride scheduling over tenants: each tenant carries a *pass value*,
advanced by ``STRIDE / weight`` every time one of its jobs dispatches,
and the eligible tenant with the lowest pass value goes next (ties
break on tenant name, so the schedule is fully deterministic given the
submission order).  A weight-2 tenant therefore dispatches twice as
often as a weight-1 tenant under contention, and an idle tenant's
first job never starves — its pass value is pulled up to the current
minimum on first use so old idleness earns no unbounded credit.

Admission is bounded per tenant: a full queue raises a typed
:class:`~repro.errors.QueueFull` (HTTP 429 + ``Retry-After``), which is
the service's backpressure signal — clients resubmit after the hint
rather than the service buffering unboundedly.

The scheduler is not thread-safe on its own; the owning
:class:`~repro.serve.service.CampaignService` serializes access under
its lock.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import QueueFull
from repro.serve.tenants import TenantQuota, TenantState

#: stride-scheduling numerator; pass increments are STRIDE / weight
STRIDE = 1 << 16


class WeightedFairScheduler:
    """Per-tenant FIFO queues multiplexed by stride scheduling."""

    def __init__(self, *, default_quota: Optional[TenantQuota] = None,
                 quotas: Optional[Dict[str, TenantQuota]] = None):
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self.tenants: Dict[str, TenantState] = {}

    def tenant(self, name: str) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            state = TenantState(
                name, self.quotas.get(name, self.default_quota))
            # A newly-seen (or long-idle) tenant starts at the current
            # minimum pass value: fairness is about share from now on,
            # not retroactive credit for time spent idle.
            floor = min((t.pass_value
                         for t in self.tenants.values()), default=0.0)
            state.pass_value = floor
            self.tenants[name] = state
        return state

    # -- admission ----------------------------------------------------------

    def submit(self, record: Any, *, force: bool = False) -> None:
        """Enqueue one job record; raises :class:`QueueFull` when the
        tenant's bounded queue is at capacity.

        ``force`` bypasses the bound — used only for crash-recovery
        re-admission, where every persisted job was admitted before the
        restart and must not be dropped for exceeding a limit it
        already passed.
        """
        state = self.tenant(record.tenant)
        if state.queue_full and not force:
            state.rejected += 1
            raise QueueFull(record.tenant, depth=len(state.queue),
                            limit=state.quota.max_queued,
                            retry_after=state.quota.retry_after)
        state.queue.append(record)
        state.submitted += 1

    # -- dispatch -----------------------------------------------------------

    def next_job(self) -> Optional[Any]:
        """Pop the next job to run, advancing its tenant's pass value;
        ``None`` when no tenant is eligible (empty queues or all at
        their ``max_running`` cap)."""
        eligible = [state for state in self.tenants.values()
                    if state.eligible]
        if not eligible:
            return None
        state = min(eligible, key=lambda t: (t.pass_value, t.name))
        record = state.queue.popleft()
        state.pass_value += STRIDE / state.quota.weight
        state.running += 1
        return record

    def release(self, tenant_name: str, outcome: str) -> None:
        """A dispatched job reached a terminal (or requeued) state."""
        state = self.tenant(tenant_name)
        state.running = max(0, state.running - 1)
        if outcome == "done":
            state.completed += 1
        elif outcome == "failed":
            state.failed += 1
        elif outcome == "cancelled":
            state.cancelled += 1

    def cancel_queued(self, job_id: str) -> bool:
        """Remove a still-queued job; False if it is not queued here."""
        for state in self.tenants.values():
            for record in state.queue:
                if record.job_id == job_id:
                    state.queue.remove(record)
                    state.cancelled += 1
                    return True
        return False

    # -- introspection ------------------------------------------------------

    def queued(self) -> List[Any]:
        records: List[Any] = []
        for state in self.tenants.values():
            records.extend(state.queue)
        return sorted(records, key=lambda r: r.job_id)

    def depth(self) -> int:
        return sum(len(state.queue) for state in self.tenants.values())

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant counters for the /metrics document."""
        return {name: state.counters()
                for name, state in sorted(self.tenants.items())}
