"""Per-tenant circuit breakers for the campaign service.

A tenant whose jobs keep failing — or whose campaign just dead-lettered
a poison shard — stops being allowed to hammer the queue: its breaker
opens, submissions bounce with a typed
:class:`~repro.errors.CircuitOpen` (HTTP 429 + ``Retry-After``), and
``/healthz`` reports the service ``degraded`` until the breaker closes
again.  The state machine is the classic three-state one:

* ``closed`` — normal operation; consecutive job failures are counted,
  and hitting ``failure_threshold`` (or a single quarantine, which is
  a stronger signal: the shard *already* exhausted a retry budget)
  opens the breaker;
* ``open`` — submissions rejected until the cooldown elapses; the
  cooldown doubles on every consecutive trip (capped) so a persistently
  poisonous tenant backs off exponentially;
* ``half_open`` — after cooldown, exactly one probe job is admitted;
  its success closes the breaker, its failure re-opens it with a
  doubled cooldown.

The clock is injectable (``monotonic``) so tests and the service drive
time explicitly; nothing here sleeps or threads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import CircuitOpen

#: breaker states, healthiest first
BREAKER_STATES = ("closed", "open", "half_open")


@dataclass
class TenantBreaker:
    """One tenant's breaker state."""

    tenant: str
    state: str = "closed"
    failures: int = 0           #: consecutive failures while closed
    trips: int = 0              #: consecutive opens (drives cooldown)
    opened_at: float = 0.0
    cooldown: float = 0.0
    reason: str = ""
    probing: bool = False       #: the half-open probe is in flight

    def to_dict(self) -> Dict[str, object]:
        return {"tenant": self.tenant, "state": self.state,
                "failures": self.failures, "trips": self.trips,
                "cooldown": self.cooldown, "reason": self.reason}


class BreakerBoard:
    """All tenants' breakers plus the transition log hook.

    ``on_transition(tenant, state, reason)`` fires on every state
    change — the service turns these into
    :class:`~repro.obs.events.BreakerEvent` records.
    """

    def __init__(self, *, failure_threshold: int = 3,
                 base_cooldown: float = 2.0,
                 max_cooldown: float = 120.0,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[
                     Callable[[str, str, str], None]] = None):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got "
                             f"{failure_threshold}")
        self.failure_threshold = failure_threshold
        self.base_cooldown = base_cooldown
        self.max_cooldown = max_cooldown
        self.clock = clock
        self.on_transition = on_transition
        self._tenants: Dict[str, TenantBreaker] = {}

    def _breaker(self, tenant: str) -> TenantBreaker:
        if tenant not in self._tenants:
            self._tenants[tenant] = TenantBreaker(tenant=tenant)
        return self._tenants[tenant]

    def _transition(self, breaker: TenantBreaker, state: str,
                    reason: str) -> None:
        breaker.state = state
        breaker.reason = reason
        if self.on_transition is not None:
            self.on_transition(breaker.tenant, state, reason)

    def _trip(self, breaker: TenantBreaker, reason: str) -> None:
        breaker.trips += 1
        breaker.cooldown = min(
            self.max_cooldown,
            self.base_cooldown * (2 ** (breaker.trips - 1)))
        breaker.opened_at = self.clock()
        breaker.failures = 0
        breaker.probing = False
        self._transition(breaker, "open", reason)

    # -- admission -----------------------------------------------------------

    def admit(self, tenant: str) -> None:
        """Gate one submission; raises :class:`CircuitOpen` when the
        tenant's breaker is open (or half-open with the probe already
        taken).  An elapsed cooldown moves open → half_open and admits
        the caller as the probe."""
        breaker = self._breaker(tenant)
        if breaker.state == "closed":
            return
        now = self.clock()
        if breaker.state == "open":
            remaining = breaker.opened_at + breaker.cooldown - now
            if remaining > 0:
                raise CircuitOpen(tenant, retry_after=max(0.1, remaining),
                                  reason=breaker.reason)
            self._transition(breaker, "half_open",
                             "cooldown elapsed; probing")
        # half_open: exactly one probe at a time
        if breaker.probing:
            raise CircuitOpen(tenant, retry_after=max(
                0.1, breaker.cooldown), reason="probe in flight")
        breaker.probing = True

    # -- outcomes ------------------------------------------------------------

    def record_success(self, tenant: str) -> None:
        breaker = self._breaker(tenant)
        breaker.failures = 0
        breaker.probing = False
        if breaker.state != "closed":
            breaker.trips = 0
            self._transition(breaker, "closed", "probe succeeded")

    def record_failure(self, tenant: str, reason: str = "") -> None:
        breaker = self._breaker(tenant)
        if breaker.state == "half_open":
            self._trip(breaker, f"probe failed: {reason}"
                       if reason else "probe failed")
            return
        if breaker.state == "open":
            return
        breaker.failures += 1
        if breaker.failures >= self.failure_threshold:
            self._trip(breaker,
                       f"{breaker.failures} consecutive failures"
                       + (f": {reason}" if reason else ""))

    def record_quarantine(self, tenant: str, detail: str = "") -> None:
        """A quarantined shard trips immediately: the pool already
        burned a full retry budget proving the work is poison."""
        breaker = self._breaker(tenant)
        if breaker.state == "open":
            return
        self._trip(breaker, "shard quarantined"
                   + (f": {detail}" if detail else ""))

    # -- introspection --------------------------------------------------------

    def state(self, tenant: str) -> str:
        breaker = self._tenants.get(tenant)
        return breaker.state if breaker is not None else "closed"

    def open_breakers(self) -> List[Dict[str, object]]:
        """Every tenant not in ``closed`` — the detail block
        ``/healthz`` exposes while degraded."""
        return [breaker.to_dict()
                for tenant, breaker in sorted(self._tenants.items())
                if breaker.state != "closed"]

    def degraded(self) -> bool:
        return any(breaker.state != "closed"
                   for breaker in self._tenants.values())
