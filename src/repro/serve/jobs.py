"""Job specs, validation, and plan construction for the campaign
service.

A *job spec* is the JSON body of ``POST /jobs``::

    {"tenant": "alice", "kind": "fuzz", "workers": 1,
     "params": {"iterations": 50, "seed": 7}}

Validation resolves every omitted parameter to its default **at submit
time** and persists the fully-resolved set in the job record, so the
:class:`~repro.par.plan.ShardPlan` rebuilt for execution — or for a
resume after a service restart — always fingerprints identically to the
plan fingerprint captured at submission.  That stability is what lets a
restarted service reuse the job's checkpoint directory instead of
re-running completed shards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidJobSpec
from repro.par.plan import ShardPlan, plan_indices

#: campaign kinds a service accepts (``selftest`` is the deterministic
#: toy campaign the tests and the latency benchmark submit)
JOB_KINDS: Tuple[str, ...] = (
    "fuzz", "resil", "juliet", "bench", "selftest",
)

#: job lifecycle states (terminal: done / failed / cancelled)
JOB_STATUSES: Tuple[str, ...] = (
    "queued", "running", "done", "failed", "cancelled",
)

MAX_WORKERS_PER_JOB = 8


# ---------------------------------------------------------------------------
# Field checkers — each returns the normalized value or raises a typed
# InvalidJobSpec naming the offending field
# ---------------------------------------------------------------------------

def _require_int(name: str, value: Any, minimum: int,
                 maximum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidJobSpec(
            f"expected integer, got {type(value).__name__}", field=name)
    if value < minimum or (maximum is not None and value > maximum):
        bound = f">= {minimum}" if maximum is None \
            else f"in [{minimum}, {maximum}]"
        raise InvalidJobSpec(f"expected {bound}, got {value}",
                             field=name)
    return value


def _require_number(name: str, value: Any, minimum: float = 0.0,
                    nullable: bool = False) -> Optional[float]:
    if value is None and nullable:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidJobSpec(
            f"expected number, got {type(value).__name__}", field=name)
    if value < minimum:
        raise InvalidJobSpec(f"expected >= {minimum:g}, got {value}",
                             field=name)
    return float(value)


def _require_bool(name: str, value: Any) -> bool:
    if not isinstance(value, bool):
        raise InvalidJobSpec(
            f"expected boolean, got {type(value).__name__}", field=name)
    return value


def _require_str(name: str, value: Any,
                 choices: Sequence[str] = ()) -> str:
    if not isinstance(value, str):
        raise InvalidJobSpec(
            f"expected string, got {type(value).__name__}", field=name)
    if choices and value not in choices:
        raise InvalidJobSpec(
            f"unknown value {value!r}; expected one of {tuple(choices)}",
            field=name)
    return value


def _require_str_list(name: str, value: Any,
                      choices: Sequence[str]) -> List[str]:
    if isinstance(value, str):
        value = [item.strip() for item in value.split(",")
                 if item.strip()]
    if not isinstance(value, list) or not value:
        raise InvalidJobSpec("expected a non-empty list of strings",
                             field=name)
    unknown = [item for item in value
               if not isinstance(item, str) or item not in choices]
    if unknown:
        raise InvalidJobSpec(
            f"unknown value(s) {unknown!r}; expected from "
            f"{tuple(choices)}", field=name)
    return list(value)


def _require_int_list(name: str, value: Any) -> List[int]:
    if not isinstance(value, list) or any(
            isinstance(item, bool) or not isinstance(item, int)
            for item in value):
        raise InvalidJobSpec("expected a list of integers", field=name)
    return list(value)


# ---------------------------------------------------------------------------
# Per-kind parameter schemas
# ---------------------------------------------------------------------------

def _fuzz_params(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.eval.configs import CONFIG_NAMES
    from repro.fuzz.driver import DEFAULT_CONFIGS
    return {
        "iterations": _require_int(
            "params.iterations", params.get("iterations", 20),
            1, 1_000_000),
        "seed": _require_int("params.seed", params.get("seed", 0), 0),
        "configs": _require_str_list(
            "params.configs",
            params.get("configs", list(DEFAULT_CONFIGS)), CONFIG_NAMES),
        "start": _require_int("params.start", params.get("start", 0), 0),
        "clean": _require_bool("params.clean",
                               params.get("clean", True)),
        "inject": _require_bool("params.inject",
                                params.get("inject", True)),
        "corpus_dir": _require_str("params.corpus_dir",
                                   params.get("corpus_dir", "corpus")),
        "minimize": _require_bool("params.minimize",
                                  params.get("minimize", True)),
        "max_attacks": _require_int(
            "params.max_attacks", params.get("max_attacks", 2), 0, 16),
        "plant_bug": _require_bool("params.plant_bug",
                                   params.get("plant_bug", False)),
        "timeout_seconds": _require_number(
            "params.timeout_seconds",
            params.get("timeout_seconds"), nullable=True),
        "retries": _require_int("params.retries",
                                params.get("retries", 2), 0, 16),
        "backoff_base": _require_number(
            "params.backoff_base", params.get("backoff_base", 0.1)),
        "engine": _require_str(
            "params.engine", params.get("engine", "auto"),
            ("auto", "fastpath", "superblock", "reference")),
        "temporal": _require_str(
            "params.temporal", params.get("temporal", "off"),
            ("off", "check", "quarantine")),
        "shard_size": _require_int("params.shard_size",
                                   params.get("shard_size", 0), 0),
    }


def _resil_params(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.resil.faults import FAULT_CLASSES
    from repro.resil.matrix import DEFAULT_WORKLOADS, SCHEMES
    from repro.workloads import WORKLOADS
    return {
        "workloads": _require_str_list(
            "params.workloads",
            params.get("workloads", list(DEFAULT_WORKLOADS)),
            tuple(WORKLOADS)),
        "schemes": _require_str_list(
            "params.schemes", params.get("schemes", list(SCHEMES)),
            SCHEMES),
        "faults": _require_str_list(
            "params.faults", params.get("faults", list(FAULT_CLASSES)),
            FAULT_CLASSES),
        "seed": _require_int("params.seed", params.get("seed", 0), 0),
        "scale": _require_int("params.scale",
                              params.get("scale", 1), 1, 64),
        "timeout_seconds": _require_number(
            "params.timeout_seconds",
            params.get("timeout_seconds", 120.0), nullable=True),
        "strict": _require_bool("params.strict",
                                params.get("strict", False)),
        "shard_size": _require_int("params.shard_size",
                                   params.get("shard_size", 0), 0),
    }


def _juliet_params(params: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "seed": _require_int("params.seed", params.get("seed", 0), 0),
        "allocator": _require_str(
            "params.allocator", params.get("allocator", "wrapped"),
            ("wrapped", "subheap")),
        "temporal": _require_str(
            "params.temporal", params.get("temporal", "off"),
            ("off", "check", "quarantine")),
        "shard_size": _require_int("params.shard_size",
                                   params.get("shard_size", 0), 0),
    }


def _bench_params(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.eval.configs import CONFIG_NAMES
    from repro.workloads import WORKLOADS
    return {
        "workloads": _require_str_list(
            "params.workloads",
            params.get("workloads", ["treeadd", "anagram"]),
            tuple(WORKLOADS)),
        "configs": _require_str_list(
            "params.configs",
            params.get("configs", ["baseline", "wrapped", "subheap"]),
            CONFIG_NAMES),
        "scale": _require_int("params.scale",
                              params.get("scale", 1), 1, 64),
        "timeout_seconds": _require_number(
            "params.timeout_seconds",
            params.get("timeout_seconds"), nullable=True),
        "seed": _require_int("params.seed", params.get("seed", 0), 0),
        "shard_size": _require_int("params.shard_size",
                                   params.get("shard_size", 0), 0),
    }


def _selftest_params(params: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "total": _require_int("params.total",
                              params.get("total", 8), 1, 10_000),
        "seed": _require_int("params.seed", params.get("seed", 0), 0),
        "shards": _require_int("params.shards",
                               params.get("shards", 4), 1, 256),
        "sleep_seconds": _require_number(
            "params.sleep_seconds", params.get("sleep_seconds", 0.0)),
        "fail_shards": _require_int_list(
            "params.fail_shards", params.get("fail_shards", [])),
        "mode": _require_str(
            "params.mode", params.get("mode", "ok"),
            ("ok", "raise", "flaky", "crash", "hang", "marker")),
        "succeed_attempt": _require_int(
            "params.succeed_attempt",
            params.get("succeed_attempt", 1), 0, 16),
        "marker": _require_str("params.marker",
                               params.get("marker", "")),
    }


_PARAM_SCHEMAS = {
    "fuzz": _fuzz_params,
    "resil": _resil_params,
    "juliet": _juliet_params,
    "bench": _bench_params,
    "selftest": _selftest_params,
}


def validate_spec(body: Any, *,
                  allowed_kinds: Sequence[str] = JOB_KINDS
                  ) -> Tuple[str, str, int, Dict[str, Any]]:
    """Validate a job submission body into
    ``(tenant, kind, workers, resolved_params)``.

    Every unknown or malformed entry raises a typed
    :class:`~repro.errors.InvalidJobSpec` whose ``field`` names the
    offending key — the 400 body the API layer returns.
    """
    if not isinstance(body, dict):
        raise InvalidJobSpec(
            f"expected a JSON object, got {type(body).__name__}",
            field="body")
    tenant = _require_str("tenant", body.get("tenant", ""))
    if not tenant or len(tenant) > 64 or not all(
            ch.isalnum() or ch in "-_." for ch in tenant):
        raise InvalidJobSpec(
            "expected 1-64 chars from [a-zA-Z0-9._-]", field="tenant")
    kind = _require_str("kind", body.get("kind", ""), JOB_KINDS)
    if kind not in allowed_kinds:
        raise InvalidJobSpec(
            f"kind {kind!r} is disabled on this service "
            f"(enabled: {tuple(allowed_kinds)})", field="kind")
    workers = _require_int("workers", body.get("workers", 1), 1,
                           MAX_WORKERS_PER_JOB)
    params = body.get("params", {})
    if not isinstance(params, dict):
        raise InvalidJobSpec(
            f"expected a JSON object, got {type(params).__name__}",
            field="params")
    known = _PARAM_SCHEMAS[kind](params)
    unknown = sorted(set(params) - set(known))
    if unknown:
        raise InvalidJobSpec(
            f"unknown parameter(s) for kind {kind!r}: "
            f"{', '.join(unknown)}", field="params")
    extra = sorted(set(body) - {"tenant", "kind", "workers", "params"})
    if extra:
        raise InvalidJobSpec(
            f"unknown field(s): {', '.join(extra)}", field="body")
    return tenant, kind, workers, known


def build_plan(kind: str, params: Dict[str, Any],
               workers: int) -> ShardPlan:
    """Rebuild the deterministic shard plan for a resolved spec.

    Pure function of ``(kind, params, workers)`` — submit, execute, and
    restart-resume all derive the identical plan (and therefore the
    identical checkpoint fingerprint) from the persisted record.
    """
    if kind == "fuzz":
        from repro.par.engine import plan_fuzz
        p = dict(params)
        return plan_fuzz(
            p.pop("iterations"), p.pop("seed"),
            configs=p.pop("configs"), start=p.pop("start"),
            clean=p.pop("clean"), inject=p.pop("inject"),
            corpus_dir=p.pop("corpus_dir"), minimize=p.pop("minimize"),
            max_attacks=p.pop("max_attacks"),
            plant_bug=p.pop("plant_bug"),
            timeout_seconds=p.pop("timeout_seconds"),
            retries=p.pop("retries"),
            backoff_base=p.pop("backoff_base"),
            jobs=workers, shard_size=p.pop("shard_size"),
            engine=p.pop("engine"),
            # specs persisted before the temporal policy existed
            # resolve to "off", which plan_fuzz keeps out of the plan
            # params — the fingerprint stays stable either way
            temporal=p.pop("temporal", "off"))
    if kind == "resil":
        from repro.par.engine import plan_resil
        return plan_resil(
            workloads=params["workloads"], schemes=params["schemes"],
            faults=params["faults"], seed=params["seed"],
            scale=params["scale"],
            timeout_seconds=params["timeout_seconds"],
            strict=params["strict"], jobs=workers,
            shard_size=params["shard_size"])
    if kind == "juliet":
        from repro.par.engine import plan_juliet
        return plan_juliet(
            seed=params["seed"], allocator=params["allocator"],
            temporal=params.get("temporal", "off"),
            jobs=workers, shard_size=params["shard_size"])
    if kind == "bench":
        from repro.par.engine import plan_bench
        return plan_bench(
            workloads=params["workloads"], configs=params["configs"],
            scale=params["scale"],
            timeout_seconds=params["timeout_seconds"],
            seed=params["seed"], jobs=workers,
            shard_size=params["shard_size"])
    if kind == "selftest":
        runner_params = {
            "sleep_seconds": params["sleep_seconds"],
            "fail_shards": params["fail_shards"],
            "mode": params["mode"],
            "succeed_attempt": params["succeed_attempt"],
            "marker": params["marker"],
        }
        return plan_indices(
            "selftest", params["seed"],
            list(range(params["total"])), params=runner_params,
            shards=params["shards"])
    raise InvalidJobSpec(f"unknown kind {kind!r}", field="kind")


# ---------------------------------------------------------------------------
# Job records
# ---------------------------------------------------------------------------

@dataclass
class JobRecord:
    """One job's full persisted state (the ``GET /jobs/<id>`` body)."""

    job_id: str
    tenant: str
    kind: str
    workers: int
    params: Dict[str, Any]
    status: str = "queued"
    created: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    fingerprint: str = ""
    #: shard-level completion counters, updated live off the event bus
    progress: Dict[str, int] = field(default_factory=dict)
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    cancel_requested: bool = False

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id, "tenant": self.tenant,
            "kind": self.kind, "workers": self.workers,
            "params": dict(self.params), "status": self.status,
            "created": self.created, "started": self.started,
            "finished": self.finished,
            "fingerprint": self.fingerprint,
            "progress": dict(self.progress), "result": self.result,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        return cls(
            job_id=data["job_id"], tenant=data["tenant"],
            kind=data["kind"], workers=data["workers"],
            params=dict(data["params"]), status=data["status"],
            created=data.get("created", 0.0),
            started=data.get("started"),
            finished=data.get("finished"),
            fingerprint=data.get("fingerprint", ""),
            progress=dict(data.get("progress", {})),
            result=data.get("result"), error=data.get("error"),
            cancel_requested=data.get("cancel_requested", False))


def new_record(job_id: str, tenant: str, kind: str, workers: int,
               params: Dict[str, Any], fingerprint: str,
               shards_total: int) -> JobRecord:
    return JobRecord(
        job_id=job_id, tenant=tenant, kind=kind, workers=workers,
        params=params, created=time.time(), fingerprint=fingerprint,
        progress={"shards_total": shards_total, "shards_done": 0,
                  "shards_restored": 0, "retries": 0})
