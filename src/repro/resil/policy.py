"""Degradation policy: what the runtime does when a fixed-size
architectural resource runs out (paper Section 3.3.3 / Section 6).

The paper's metadata schemes are capacity-limited by construction — 4096
global-table rows, 16 subheap control registers — and its stated answer
to exhaustion is that the runtime "can always fall back to legacy
pointers": an object that cannot be registered simply receives an
untagged pointer and loses (only) its own bounds protection, while the
program keeps running.  The seed reproduction instead hard-trapped with
:class:`~repro.errors.ResourceExhausted`, killing the whole workload.

:class:`DegradationPolicy` makes that choice explicit and per-resource:

* ``degrade`` — fall back gracefully (untagged legacy pointer for the
  global table; global-table fallback, then legacy, for subheap register
  pressure), emitting a typed ``repro.obs`` degradation event and
  counting the downgrade in ``RunStats.degraded_allocs``;
* ``strict`` — preserve the trap, for evaluations that want exhaustion
  to be loud (e.g. the global-table-only capacity ablation).

The policy lives on :class:`~repro.vm.machine.MachineConfig` so every
layer (allocators, builtins, the campaign runner) reads one source of
truth.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fall back to a weaker scheme / untagged pointer and keep running.
DEGRADE = "degrade"
#: Preserve the seed behaviour: raise ResourceExhausted.
STRICT = "strict"

_MODES = (DEGRADE, STRICT)


@dataclass(frozen=True)
class DegradationPolicy:
    """Per-resource exhaustion behaviour (``degrade`` | ``strict``)."""

    #: global metadata table out of rows
    global_table_exhaustion: str = DEGRADE
    #: all subheap control registers in use when a new pool is created
    subheap_register_exhaustion: str = DEGRADE

    def validate(self) -> None:
        for name in ("global_table_exhaustion",
                     "subheap_register_exhaustion"):
            value = getattr(self, name)
            if value not in _MODES:
                raise ValueError(
                    f"{name} must be one of {_MODES}, got {value!r}")

    @property
    def name(self) -> str:
        """Compact label for reports ('degrade', 'strict', or 'mixed')."""
        modes = {self.global_table_exhaustion,
                 self.subheap_register_exhaustion}
        return modes.pop() if len(modes) == 1 else "mixed"


#: Default: degrade gracefully (the paper's legacy-pointer fallback).
DEFAULT_POLICY = DegradationPolicy()
#: Every resource exhaustion traps (the seed repo's behaviour).
STRICT_POLICY = DegradationPolicy(global_table_exhaustion=STRICT,
                                  subheap_register_exhaustion=STRICT)
