"""The resilience campaign: fault class × scheme → outcome matrix.

For every (workload, scheme, fault class) cell the campaign runs the
workload with a seeded :class:`~repro.resil.faults.FaultPlan` armed and
classifies the run against a fault-free reference execution of the same
(workload, scheme):

==================  =====================================================
outcome             meaning
==================  =====================================================
detected_by_mac     the 48-bit metadata MAC rejected corrupted metadata
                    (``mac_failures`` grew over the reference)
detected_by_bounds  a :class:`PoisonTrap`/:class:`BoundsTrap` fired —
                    the tag/bounds machinery caught the fault
degraded            the run completed with the right answer but some
                    allocations were downgraded (legacy fallback) or
                    metadata lookups failed soft
trapped             some other trap ended the run (e.g. a NULL-deref
                    after an injected malloc failure, or
                    ``ResourceExhausted`` under the strict policy)
timeout             the wall-clock watchdog killed the run
silent_corruption   the run completed with a *different answer* and no
                    detection — the outcome the defense must prevent
                    for MAC-protected metadata faults
unaffected          output and counters match the reference
==================  =====================================================

The headline acceptance property: for the MAC-protected fault classes
(``metadata_corrupt``, ``mac_corrupt``) on the MAC-carrying schemes
(``local_offset``, ``subheap``) the ``silent_corruption`` count must be
zero — corrupted metadata is either caught or harmless, never silently
trusted (paper Section 3.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler import CompilerOptions, compile_source
from repro.errors import (
    BoundsTrap, PoisonTrap, SimTrap, TemporalViolation, WorkloadTimeout,
)
from repro.ifp.config import IFPConfig
from repro.resil.faults import FAULT_CLASSES, FaultInjector, FaultPlan
from repro.resil.policy import (
    DEFAULT_POLICY, STRICT_POLICY, DegradationPolicy,
)
from repro.resil.retry import derive_seed
from repro.vm import Machine, MachineConfig
from repro.workloads import Workload, get as get_workload

OUTCOMES: Tuple[str, ...] = (
    "detected_by_mac", "detected_by_bounds", "detected_by_temporal",
    "degraded", "trapped", "timeout", "silent_corruption", "unaffected",
)

#: metadata schemes the campaign exercises, and how: compiler options
#: plus the IFPConfig restriction that funnels allocations there
SCHEMES: Tuple[str, ...] = ("local_offset", "subheap", "global_table")

#: fault classes × schemes whose silent_corruption count must be zero
#: (metadata under MAC protection)
MAC_PROTECTED_CELLS: Tuple[Tuple[str, str], ...] = tuple(
    (fault, scheme)
    for fault in ("metadata_corrupt", "mac_corrupt")
    for scheme in ("local_offset", "subheap"))

#: per-class default FaultSpec arguments (periods are primes so the
#: injection pattern does not phase-lock with loop bodies)
DEFAULT_SPECS: Dict[str, dict] = {
    "tag_bit_flip": {"period": 997, "bits": 1},
    "metadata_corrupt": {"period": 503, "bits": 1},
    "mac_corrupt": {"period": 251, "bits": 1},
    "layout_corrupt": {"period": 31, "bits": 1},
    "global_table_exhaust": {"payload": 0},
    "subheap_register_pressure": {"payload": 0},
    "alloc_oom": {"start": 64, "period": 1},
    "temporal_lock_corrupt": {"start": 2, "period": 7},
}

#: fault classes that need the lock-and-key policy armed on the faulted
#: machine (the reference run stays policy-off; the policy is output-
#: transparent, so the comparison is still apples-to-apples)
_TEMPORAL_FAULTS = ("temporal_lock_corrupt",)

#: fast workloads covering the three schemes' interesting paths —
#: ``health`` is the one that exercises subobject narrowing (so
#: ``layout_corrupt`` has layout-table fetches to corrupt)
DEFAULT_WORKLOADS: Tuple[str, ...] = ("treeadd", "anagram", "ks",
                                      "health")


def scheme_setup(scheme: str) -> Tuple[CompilerOptions, IFPConfig]:
    """(compiler options, IFP config) that funnel heap objects into
    ``scheme``."""
    if scheme == "local_offset":
        return (CompilerOptions.wrapped(),
                IFPConfig(schemes_enabled=("local_offset",
                                           "global_table")))
    if scheme == "subheap":
        return (CompilerOptions.subheap(),
                IFPConfig(schemes_enabled=("local_offset", "subheap",
                                           "global_table")))
    if scheme == "global_table":
        # Wrapped allocator with local_offset disabled: every heap
        # object takes the global-table fallback path.
        return (CompilerOptions.wrapped(),
                IFPConfig(schemes_enabled=("global_table",)))
    raise ValueError(f"unknown scheme {scheme!r}; expected one of "
                     f"{SCHEMES}")


@dataclass
class CellResult:
    """One (workload, scheme, fault) execution, classified."""

    workload: str
    scheme: str
    fault: str
    outcome: str
    detail: str = ""
    injections: int = 0
    seed: int = 0

    def row(self) -> str:
        return (f"{self.workload:10s} {self.scheme:13s} "
                f"{self.fault:25s} {self.outcome:18s} "
                f"inj={self.injections:<4d} {self.detail}")

    def to_dict(self) -> dict:
        return {
            "workload": self.workload, "scheme": self.scheme,
            "fault": self.fault, "outcome": self.outcome,
            "detail": self.detail, "injections": self.injections,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        return cls(workload=data["workload"], scheme=data["scheme"],
                   fault=data["fault"], outcome=data["outcome"],
                   detail=data.get("detail", ""),
                   injections=data.get("injections", 0),
                   seed=data.get("seed", 0))


@dataclass
class _Reference:
    """Fault-free execution of one (workload, scheme)."""

    output: str
    exit_code: Optional[int]
    mac_failures: int
    degraded_allocs: int
    metadata_invalid: int
    narrow_walk_failures: int


@dataclass
class CampaignResult:
    """All cells of one campaign plus the aggregated matrix."""

    seed: int
    policy_name: str
    workloads: List[str]
    schemes: List[str]
    faults: List[str]
    cells: List[CellResult] = field(default_factory=list)

    @property
    def matrix(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """fault -> scheme -> outcome -> count (over workloads)."""
        table: Dict[str, Dict[str, Dict[str, int]]] = {}
        for cell in self.cells:
            by_scheme = table.setdefault(cell.fault, {})
            by_outcome = by_scheme.setdefault(cell.scheme, {})
            by_outcome[cell.outcome] = by_outcome.get(cell.outcome, 0) + 1
        return table

    def outcome_totals(self) -> Dict[str, int]:
        totals = {outcome: 0 for outcome in OUTCOMES}
        for cell in self.cells:
            totals[cell.outcome] += 1
        return totals

    def mac_protected_silent_corruptions(self) -> List[CellResult]:
        """Cells violating the zero-silent-corruption property."""
        return [cell for cell in self.cells
                if (cell.fault, cell.scheme) in MAC_PROTECTED_CELLS
                and cell.outcome == "silent_corruption"]

    def temporal_silent_corruptions(self) -> List[CellResult]:
        """Lock-corruption cells that diverged silently — the outcome
        the lock-and-key gate forbids: a flipped lock generation must
        surface as a typed TemporalViolation or be harmless."""
        return [cell for cell in self.cells
                if cell.fault in _TEMPORAL_FAULTS
                and cell.outcome == "silent_corruption"]

    @property
    def ok(self) -> bool:
        return not self.mac_protected_silent_corruptions() \
            and not self.temporal_silent_corruptions()

    def metrics(self) -> dict:
        """Schema-v1 ``metrics`` payload (numbers / nested dicts only)."""
        totals = self.outcome_totals()
        return {
            "cells": len(self.cells),
            "workloads": len(self.workloads),
            "schemes": len(self.schemes),
            "fault_classes": len(self.faults),
            "injections_total": sum(c.injections for c in self.cells),
            "mac_protected_silent_corruption":
                len(self.mac_protected_silent_corruptions()),
            "temporal_silent_corruption":
                len(self.temporal_silent_corruptions()),
            "outcomes": totals,
            "matrix": {
                fault: {scheme: dict(outcomes)
                        for scheme, outcomes in by_scheme.items()}
                for fault, by_scheme in self.matrix.items()},
        }

    def to_dict(self) -> dict:
        return {
            "seed": self.seed, "policy_name": self.policy_name,
            "workloads": list(self.workloads),
            "schemes": list(self.schemes),
            "faults": list(self.faults),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        return cls(seed=data["seed"], policy_name=data["policy_name"],
                   workloads=list(data["workloads"]),
                   schemes=list(data["schemes"]),
                   faults=list(data["faults"]),
                   cells=[CellResult.from_dict(cell)
                          for cell in data["cells"]])

    def render(self) -> str:
        """Human-readable matrix + per-cell rows."""
        lines = [
            f"repro.resil: {len(self.cells)} cells, seed {self.seed}, "
            f"policy {self.policy_name}",
            f"  workloads: {', '.join(self.workloads)}",
            "",
            f"  {'fault class':25s} " + " ".join(
                f"{scheme:>22s}" for scheme in self.schemes),
        ]
        matrix = self.matrix
        for fault in self.faults:
            row = [f"  {fault:25s}"]
            for scheme in self.schemes:
                outcomes = matrix.get(fault, {}).get(scheme, {})
                compact = ",".join(
                    f"{_ABBREV[outcome]}x{count}"
                    for outcome, count in sorted(outcomes.items()))
                row.append(f"{compact or '-':>22s}")
            lines.append(" ".join(row))
        lines.append("")
        lines.append("  legend: " + ", ".join(
            f"{_ABBREV[outcome]}={outcome}" for outcome in OUTCOMES))
        totals = self.outcome_totals()
        lines.append("  totals: " + ", ".join(
            f"{outcome}={count}" for outcome, count in totals.items()
            if count))
        violations = self.mac_protected_silent_corruptions()
        if violations:
            lines.append("  MAC-PROTECTED SILENT CORRUPTION:")
            for cell in violations:
                lines.append("    " + cell.row())
        else:
            lines.append("  MAC-protected metadata faults: "
                         "zero silent corruption ✓")
        temporal_violations = self.temporal_silent_corruptions()
        if temporal_violations:
            lines.append("  TEMPORAL-LOCK SILENT CORRUPTION:")
            for cell in temporal_violations:
                lines.append("    " + cell.row())
        elif any(fault in _TEMPORAL_FAULTS for fault in self.faults):
            lines.append("  temporal lock corruption: "
                         "zero silent corruption ✓")
        return "\n".join(lines)


_ABBREV = {
    "detected_by_mac": "mac",
    "detected_by_bounds": "bnd",
    "detected_by_temporal": "tmp",
    "degraded": "deg",
    "trapped": "trp",
    "timeout": "tmo",
    "silent_corruption": "SIL",
    "unaffected": "ok",
}


def enumerate_cells(faults: Tuple[str, ...],
                    schemes: Tuple[str, ...],
                    workload_names: Tuple[str, ...]
                    ) -> List[Tuple[str, str, str]]:
    """The campaign's cell order: ``(fault, scheme, workload)`` tuples
    with fault outermost.  Cell *i* always runs with seed
    ``derive_seed(campaign_seed, i + 1)`` — the sequential loop and the
    ``repro.par`` shard runners both index into this list, which is
    what makes a sharded campaign byte-identical to a sequential one.
    """
    return [(fault, scheme, name)
            for fault in faults
            for scheme in schemes
            for name in workload_names]


class CampaignRunner:
    """Executes campaign cells with per-(workload, scheme) compile and
    reference-run caches."""

    def __init__(self, scale: int = 1,
                 timeout_seconds: Optional[float] = 120.0,
                 policy: DegradationPolicy = DEFAULT_POLICY,
                 engine: str = "auto"):
        self.scale = scale
        self.timeout_seconds = timeout_seconds
        self.policy = policy
        #: execution engine for every run.  The default "auto" runs
        #: both the clean reference runs and the faulted runs (which
        #: arm an injector) on the fastpath — armed runs get an
        #: instrumented translation with inline guarded emits;
        #: "reference" forces the slow path everywhere.
        self.engine = engine
        self._programs: Dict[Tuple[str, str], object] = {}
        self._references: Dict[Tuple[str, str], _Reference] = {}

    # -- plumbing -------------------------------------------------------------

    def _program(self, workload: Workload, scheme: str):
        key = (workload.name, scheme)
        if key not in self._programs:
            options, _ifp = scheme_setup(scheme)
            self._programs[key] = compile_source(
                workload.source(self.scale), options)
        return self._programs[key]

    def _machine(self, workload: Workload, scheme: str,
                 temporal: str = "off") -> Machine:
        _options, ifp = scheme_setup(scheme)
        config = MachineConfig(ifp=ifp, policy=self.policy,
                               wall_clock_timeout=self.timeout_seconds,
                               engine=self.engine, temporal=temporal)
        return Machine(self._program(workload, scheme), config)

    def _reference(self, workload: Workload, scheme: str) -> _Reference:
        key = (workload.name, scheme)
        if key not in self._references:
            machine = self._machine(workload, scheme)
            result = machine.run()
            if result.trap is not None:
                raise SimTrap(
                    f"reference run {workload.name}/{scheme} trapped: "
                    f"{result.trap}")
            stats = result.stats
            self._references[key] = _Reference(
                output=result.output, exit_code=result.exit_code,
                mac_failures=stats.ifp.mac_failures,
                degraded_allocs=stats.degraded_allocs,
                metadata_invalid=stats.ifp.promotes_metadata_invalid,
                narrow_walk_failures=stats.ifp.narrow_walk_failures)
        return self._references[key]

    # -- one cell -------------------------------------------------------------

    def run_cell(self, workload: Workload, scheme: str, fault: str,
                 seed: int) -> CellResult:
        reference = self._reference(workload, scheme)
        plan = FaultPlan.single(fault, seed,
                                **DEFAULT_SPECS.get(fault, {}))
        machine = self._machine(
            workload, scheme,
            temporal="check" if fault in _TEMPORAL_FAULTS else "off")
        injector = FaultInjector(plan)
        injector.arm(machine)
        cell = CellResult(workload=workload.name, scheme=scheme,
                          fault=fault, outcome="unaffected", seed=seed)
        try:
            result = machine.run()
        except WorkloadTimeout as exc:
            cell.outcome = "timeout"
            cell.detail = f"{exc.seconds:g}s budget"
            cell.injections = len(injector.injections)
            return cell
        cell.injections = len(injector.injections)
        stats = result.stats
        mac_hits = stats.ifp.mac_failures - reference.mac_failures
        degraded = (
            (stats.degraded_allocs - reference.degraded_allocs)
            + (stats.ifp.promotes_metadata_invalid
               - reference.metadata_invalid)
            + (stats.ifp.narrow_walk_failures
               - reference.narrow_walk_failures))
        if result.trap is not None:
            trap_name = type(result.trap).__name__
            cell.detail = f"{trap_name}: {result.trap}"
            if mac_hits > 0:
                cell.outcome = "detected_by_mac"
            elif isinstance(result.trap, TemporalViolation):
                cell.outcome = "detected_by_temporal"
            elif isinstance(result.trap, (PoisonTrap, BoundsTrap)):
                cell.outcome = "detected_by_bounds"
            else:
                cell.outcome = "trapped"
            return cell
        if (result.output, result.exit_code) != (reference.output,
                                                 reference.exit_code):
            # Completed with the wrong answer.  If the MAC flagged the
            # corruption it is still a detection miss at the output
            # level — classify by the worse verdict.
            cell.outcome = "silent_corruption"
            cell.detail = (f"exit {result.exit_code} vs "
                           f"{reference.exit_code}, output "
                           f"{'differs' if result.output != reference.output else 'same'}")
            return cell
        if mac_hits > 0:
            cell.outcome = "detected_by_mac"
            cell.detail = f"{mac_hits} MAC rejections, output intact"
        elif degraded > 0:
            cell.outcome = "degraded"
            cell.detail = (f"{stats.degraded_allocs} degraded allocs, "
                           f"output intact")
        return cell

    # -- the whole campaign ---------------------------------------------------

    def run(self, workload_names: Tuple[str, ...] = DEFAULT_WORKLOADS,
            schemes: Tuple[str, ...] = SCHEMES,
            faults: Tuple[str, ...] = FAULT_CLASSES,
            seed: int = 0, log=None) -> CampaignResult:
        campaign = CampaignResult(
            seed=seed, policy_name=self.policy.name,
            workloads=list(workload_names), schemes=list(schemes),
            faults=list(faults))
        cells = enumerate_cells(faults, schemes, workload_names)
        for index, (fault, scheme, name) in enumerate(cells):
            cell_seed = derive_seed(seed, index + 1)
            cell = self.run_cell(get_workload(name), scheme, fault,
                                 cell_seed)
            campaign.cells.append(cell)
            if log is not None:
                log("  " + cell.row())
        return campaign


def run_campaign(workloads: Tuple[str, ...] = DEFAULT_WORKLOADS,
                 schemes: Tuple[str, ...] = SCHEMES,
                 faults: Tuple[str, ...] = FAULT_CLASSES,
                 seed: int = 0, scale: int = 1,
                 timeout_seconds: Optional[float] = 120.0,
                 strict: bool = False, log=None,
                 engine: str = "auto") -> CampaignResult:
    """Convenience wrapper used by the CLI and the chaos-smoke CI job."""
    runner = CampaignRunner(
        scale=scale, timeout_seconds=timeout_seconds,
        policy=STRICT_POLICY if strict else DEFAULT_POLICY,
        engine=engine)
    return runner.run(workloads, schemes, faults, seed=seed, log=log)
