"""CLI entry point: ``python -m repro.resil``.

Runs a resilience campaign — every selected workload under every
selected fault class and metadata scheme — and writes the resulting
fault class × scheme matrix as a ``repro.obs.metrics/v1`` document.

Examples::

    # the standard campaign: 3 workloads x 3 schemes x 7 fault classes
    python -m repro.resil --out resil-matrix.json

    # quick smoke (one workload, the MAC-protected fault classes)
    python -m repro.resil --workloads treeadd \\
        --faults metadata_corrupt,mac_corrupt --out matrix.json

    # strict policy: resource exhaustion traps instead of degrading
    python -m repro.resil --strict --faults global_table_exhaust

    # host-fault chaos campaign (worker kills, torn writes, ENOSPC):
    # the gate fails on any silent divergence from a fault-free run
    python -m repro.resil chaos --check --out chaos-matrix.json

    # the full matrix sharded across 4 worker processes, resumable
    python -m repro.resil --jobs 4 --checkpoint ckpt-resil \\
        --out resil-matrix.json

The exit code is non-zero when any MAC-protected metadata fault ended
in silent corruption — the property CI enforces.
"""

from __future__ import annotations

import argparse
import sys

from repro.resil.faults import FAULT_CLASSES
from repro.workloads import WORKLOADS


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "chaos":
        # host-fault chaos campaign: its own CLI, imported lazily so
        # the package root stays light (repro.vm.machine imports it)
        from repro.resil.chaos import main as chaos_main
        return chaos_main(argv[1:])
    from repro.resil.matrix import (
        DEFAULT_WORKLOADS, SCHEMES, run_campaign,
    )
    parser = argparse.ArgumentParser(
        prog="python -m repro.resil",
        description="Fault-injection resilience campaign for the IFP "
                    "pipeline.")
    parser.add_argument("--workloads", type=str,
                        default=",".join(DEFAULT_WORKLOADS),
                        help="comma-separated workload list "
                             f"(default: {','.join(DEFAULT_WORKLOADS)})")
    parser.add_argument("--schemes", type=str, default=",".join(SCHEMES),
                        help="comma-separated scheme list "
                             f"(available: {', '.join(SCHEMES)})")
    parser.add_argument("--faults", type=str,
                        default=",".join(FAULT_CLASSES),
                        help="comma-separated fault-class list "
                             f"(available: {', '.join(FAULT_CLASSES)})")
    parser.add_argument("--seed", "-s", type=int, default=0,
                        help="campaign master seed (default 0)")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        metavar="SECONDS",
                        help="wall-clock watchdog per run (default 120)")
    parser.add_argument("--strict", action="store_true",
                        help="strict degradation policy: resource "
                             "exhaustion traps instead of degrading")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes; >1 shards the campaign "
                             "via repro.par (default 1, sequential)")
    parser.add_argument("--shard-size", type=int, default=0,
                        help="cells per shard when sharded (default: "
                             "auto, 4 shards per worker)")
    parser.add_argument("--checkpoint", type=str, metavar="DIR",
                        help="resumable checkpoint directory (implies "
                             "the sharded path even at --jobs 1)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per shard attempt "
                             "(sharded path only)")
    parser.add_argument("--shard-retries", type=int, default=2,
                        help="requeues per failed shard (default 2)")
    parser.add_argument("--engine", type=str, default="auto",
                        choices=("auto", "fastpath", "superblock", "reference"),
                        help="execution engine; 'auto' runs clean "
                             "reference runs on the fastpath and "
                             "fault-injected runs on the reference "
                             "interpreter (default auto)")
    parser.add_argument("--out", type=str, metavar="JSON",
                        help="write the matrix as a repro.obs "
                             "schema-v1 metrics document")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress per-cell progress lines")
    args = parser.parse_args(argv)

    workloads = tuple(w.strip() for w in args.workloads.split(",")
                      if w.strip())
    schemes = tuple(s.strip() for s in args.schemes.split(",")
                    if s.strip())
    faults = tuple(f.strip() for f in args.faults.split(",") if f.strip())
    unknown = [w for w in workloads if w not in WORKLOADS]
    if unknown:
        parser.error(f"unknown workload(s): {', '.join(unknown)}")
    unknown = [s for s in schemes if s not in SCHEMES]
    if unknown:
        parser.error(f"unknown scheme(s): {', '.join(unknown)}")
    unknown = [f for f in faults if f not in FAULT_CLASSES]
    if unknown:
        parser.error(f"unknown fault class(es): {', '.join(unknown)}")

    log = (lambda message: None) if args.quiet else print
    timeout = args.timeout if args.timeout > 0 else None
    pool_ok = True
    if args.jobs > 1 or args.checkpoint:
        from repro.par.engine import parallel_resil, plan_resil
        plan = plan_resil(
            workloads=list(workloads), schemes=list(schemes),
            faults=list(faults), seed=args.seed, scale=args.scale,
            timeout_seconds=timeout, strict=args.strict,
            jobs=args.jobs, shard_size=args.shard_size,
            engine=args.engine)
        campaign, outcome = parallel_resil(
            plan, jobs=args.jobs, checkpoint_dir=args.checkpoint,
            shard_timeout=args.shard_timeout,
            shard_retries=args.shard_retries, log=log)
        if not args.quiet:
            print(outcome.summary())
        pool_ok = outcome.ok
    else:
        campaign = run_campaign(
            workloads=workloads, schemes=schemes, faults=faults,
            seed=args.seed, scale=args.scale, timeout_seconds=timeout,
            strict=args.strict, log=log, engine=args.engine)
    print(campaign.render())

    if args.out:
        from repro.obs.metrics import metrics_document, write_metrics
        # config/payload exclude jobs and pool accounting so --jobs N
        # output compares equal to --jobs 1 for the same seed (the CI
        # determinism gate)
        path = write_metrics(args.out, metrics_document(
            "resil",
            {"seed": args.seed, "scale": args.scale,
             "policy": campaign.policy_name,
             "workloads": ",".join(workloads),
             "schemes": ",".join(schemes),
             "faults": ",".join(faults)},
            campaign.metrics()))
        print(f"matrix written to {path}")
    return 0 if campaign.ok and pool_ok else 1


if __name__ == "__main__":
    sys.exit(main())
