"""Deterministic retry with exponential backoff.

Transient harness failures — above all :class:`WorkloadTimeout` — are
retried a bounded number of times.  Two properties matter for a
reproduction harness:

* **Determinism**: a retried attempt must not silently re-run the same
  seed (a genuinely deterministic hang would just hang again) nor draw
  from global randomness (the campaign would stop being replayable).
  :func:`derive_seed` folds the attempt number into the base seed with
  a splitmix64-style mix, so attempt *k* of seed *s* is a pure function
  of ``(s, k)``.
* **Bounded, predictable backoff**: delays grow as
  ``base_delay * 2**attempt`` with no jitter — jitter buys nothing
  single-process and costs reproducibility.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, Type

from repro.errors import WorkloadTimeout

_MASK64 = (1 << 64) - 1


def derive_seed(seed: int, attempt: int) -> int:
    """Deterministically derive the seed for retry ``attempt``.

    Attempt 0 returns ``seed`` unchanged (the first run is the plain
    run); later attempts mix the attempt index in with the splitmix64
    finalizer so nearby seeds diverge completely.
    """
    if attempt == 0:
        return seed
    z = (seed + attempt * 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def call_with_retry(fn: Callable[[int], object], *,
                    attempts: int = 3,
                    base_delay: float = 0.1,
                    transient: Tuple[Type[BaseException], ...] = (
                        WorkloadTimeout,),
                    sleep: Optional[Callable[[float], None]] = None,
                    on_retry: Optional[
                        Callable[[int, BaseException, float], None]] = None):
    """Call ``fn(attempt)`` until it succeeds or attempts are exhausted.

    ``fn`` receives the 0-based attempt number (so it can re-derive its
    seed via :func:`derive_seed`).  Only exceptions in ``transient`` are
    retried; everything else propagates immediately.  After the last
    attempt the final transient exception propagates.

    ``sleep`` is injectable for tests (defaults to :func:`time.sleep`);
    ``on_retry(attempt, exc, delay)`` observes each retry decision.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    do_sleep = time.sleep if sleep is None else sleep
    for attempt in range(attempts):
        try:
            return fn(attempt)
        except transient as exc:
            if attempt == attempts - 1:
                raise
            delay = base_delay * (2 ** attempt)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                do_sleep(delay)
    raise AssertionError("unreachable")
