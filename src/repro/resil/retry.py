"""Deterministic retry with exponential backoff.

Transient harness failures — above all :class:`WorkloadTimeout` — are
retried a bounded number of times.  Two properties matter for a
reproduction harness:

* **Determinism**: a retried attempt must not silently re-run the same
  seed (a genuinely deterministic hang would just hang again) nor draw
  from global randomness (the campaign would stop being replayable).
  :func:`repro.par.seeds.derive_seed` (re-exported here) folds the
  attempt number into the base seed with the splitmix64 finalizer, so
  attempt *k* of seed *s* is a pure function of ``(s, k)``.
* **Bounded, predictable backoff**: delays grow as
  ``base_delay * 2**attempt`` (:func:`repro.par.seeds.backoff_delay`).
  Passing ``jitter_seed`` de-synchronizes concurrent retry loops with
  *seeded* jitter (:func:`repro.par.seeds.jittered_backoff`): the
  delay becomes a pure function of ``(jitter_seed, attempt)``, so two
  campaigns retrying in lockstep spread out while each one stays
  exactly replayable.  Jitter only moves when a retry runs, never what
  it computes.

Seed derivation and the backoff schedule live in
:mod:`repro.par.seeds` so the parallel campaign engine shares the
exact same sequences; this module keeps its historical names as
re-exports.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, Type

from repro.errors import WorkloadTimeout
from repro.par.seeds import backoff_delay, derive_seed, jittered_backoff

__all__ = ["backoff_delay", "call_with_retry", "derive_seed",
           "jittered_backoff"]


def call_with_retry(fn: Callable[[int], object], *,
                    attempts: int = 3,
                    base_delay: float = 0.1,
                    transient: Tuple[Type[BaseException], ...] = (
                        WorkloadTimeout,),
                    sleep: Optional[Callable[[float], None]] = None,
                    jitter_seed: Optional[int] = None,
                    on_retry: Optional[
                        Callable[[int, BaseException, float], None]] = None):
    """Call ``fn(attempt)`` until it succeeds or attempts are exhausted.

    ``fn`` receives the 0-based attempt number (so it can re-derive its
    seed via :func:`derive_seed`).  Only exceptions in ``transient`` are
    retried; everything else propagates immediately.  After the last
    attempt the final transient exception propagates.

    ``jitter_seed`` (when given) draws each delay from
    :func:`jittered_backoff` instead of the plain schedule — the
    caller's seed keeps the jitter deterministic per call site.

    ``sleep`` is injectable for tests (defaults to :func:`time.sleep`);
    ``on_retry(attempt, exc, delay)`` observes each retry decision.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    do_sleep = time.sleep if sleep is None else sleep
    for attempt in range(attempts):
        try:
            return fn(attempt)
        except transient as exc:
            if attempt == attempts - 1:
                raise
            if jitter_seed is None:
                delay = backoff_delay(base_delay, attempt)
            else:
                delay = jittered_backoff(base_delay, attempt,
                                         jitter_seed)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                do_sleep(delay)
    raise AssertionError("unreachable")
