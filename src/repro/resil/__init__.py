"""Resilience engineering for the IFP pipeline: ``repro.resil``.

Four layers, each usable alone:

==============  ======================================================
module          role
==============  ======================================================
`policy`        :class:`DegradationPolicy` — per-resource exhaustion
                behaviour (degrade to legacy pointers vs. trap),
                installed on ``MachineConfig``
`faults`        deterministic, seeded fault injector: declarative
                :class:`FaultPlan` applied to a machine via hooks in
                the IFP unit, the metadata port, and the allocators
`retry`         deterministic-reseed retry with exponential backoff
                for transient failures (``WorkloadTimeout``)
`matrix`        the resilience campaign: run workloads under each
                fault class and classify the outcome into a
                fault class × scheme resilience matrix
==============  ======================================================

``python -m repro.resil`` runs a campaign and writes the matrix as a
``repro.obs.metrics/v1`` document.

Import discipline: this package root must stay importable from
``repro.vm.machine`` (which carries the policy), so it only pulls in
the leaf modules — ``matrix`` (which imports the eval harness, hence
the vm) is imported lazily by the CLI.
"""

from repro.resil.faults import (
    FAULT_CLASSES, FaultInjector, FaultPlan, FaultSpec,
)
from repro.resil.policy import (
    DEFAULT_POLICY, DEGRADE, STRICT, STRICT_POLICY, DegradationPolicy,
)
from repro.resil.retry import call_with_retry, derive_seed

__all__ = [
    "DEFAULT_POLICY", "DEGRADE", "FAULT_CLASSES", "FaultInjector",
    "FaultPlan", "FaultSpec", "STRICT", "STRICT_POLICY",
    "DegradationPolicy", "call_with_retry", "derive_seed",
]
