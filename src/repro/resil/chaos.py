"""Host-level chaos harness: seeded crash/IO fault schedules with
self-healing campaigns.

Where :mod:`repro.resil.faults` perturbs the *guest* (pointer tags,
metadata records, MAC bits), this module perturbs the *host* the
harness itself runs on: worker processes die at seeded dispatch
indices, atomic JSON writes raise ENOSPC/EIO or tear between the tmp
write and the rename, stale ``.tmp`` debris appears, and persisted
shard results rot on disk.  The campaign's claim is the same one the
guest-fault matrix makes, one level up: **no silent divergence**.
Every chaos cell either

* **converges** — after bounded crash/resume rounds the run's shard
  payloads are byte-identical (timing aside) to a fault-free reference
  run of the same plan;
* **quarantines** — a shard the chaos schedule hounded past its retry
  budget is dead-lettered as a typed
  :class:`~repro.par.pool.ShardQuarantined` record and every other
  shard still matches the reference; or
* **fails typed** — the run ends in a :class:`~repro.errors.ReproError`
  / :class:`OSError` the harness *reports* rather than absorbs.

A cell that completes with silently different payloads is **diverged**
— the one verdict the gate (``python -m repro.resil chaos --check``)
refuses.

Determinism
===========

A :class:`ChaosSchedule` is a pure function: fault class ``f`` fires at
its ``index``-th opportunity iff
``splitmix64((seed ^ salt(f)) + (index + 1) * GOLDEN_GAMMA)`` lands on
the schedule's period.  The :class:`HostFaultInjector` keeps one
monotonic opportunity counter per fault class **across resume rounds**,
and each class stops firing after ``max_injections`` — so a campaign
under chaos is (a) replayable from its seed and (b) guaranteed to run
out of faults, which is what makes the crash/resume loop self-healing
rather than livelocked.

The injector plugs into two seams:

* :func:`repro.hostio.atomic_write_json` consults it on every
  persistence write (``before_write`` / ``torn_write`` /
  ``after_write``) — arm with :func:`repro.hostio.inject_faults`;
* the :mod:`repro.par` pool consults it at shard dispatch
  (``worker_kill``) — arm with ``run_plan(..., chaos=injector)``.
"""

from __future__ import annotations

import errno as errno_mod
import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import InjectedIOFault, ReproError
from repro.hostio import TMP_SUFFIX, inject_faults
from repro.par.seeds import GOLDEN_GAMMA, derive_seed, splitmix64

_MASK64 = (1 << 64) - 1

#: every host fault class the harness can inject
HOST_FAULT_CLASSES: Tuple[str, ...] = (
    "worker_kill",      # SIGKILL a worker right after shard dispatch
    "torn_write",       # crash between tmp write and os.replace
    "enospc",           # ENOSPC raised from the atomic-write open
    "eio",              # EIO raised from the atomic-write open
    "stale_tmp",        # drop .tmp debris beside a persisted file
    "corrupt_result",   # bit-flip a persisted shard result payload
)

#: cell verdicts, in decreasing order of health
CELL_VERDICTS = ("converged", "quarantined", "typed_failure", "diverged")


def _fault_salt(fault: str) -> int:
    """Per-fault-class salt: fold the class name through splitmix64 so
    distinct classes sample independent fire sequences from one seed."""
    salt = len(fault)
    for byte in fault.encode("utf-8"):
        salt = splitmix64((salt ^ (byte * GOLDEN_GAMMA)) & _MASK64)
    return salt


@dataclass(frozen=True)
class ChaosSchedule:
    """A pure, seeded description of *when* each fault class fires.

    ``fires(fault, index)`` is a function of nothing but
    ``(seed, fault, index)``: the ``index``-th opportunity for ``fault``
    fires iff the derived splitmix64 word is ``0 mod period`` — on
    average one injection per ``period`` opportunities, at
    seed-reproducible positions.  ``max_injections`` bounds firings
    *per fault class* (enforced by the injector, which owns the
    counters); the schedule itself stays stateless.
    """

    seed: int
    faults: Tuple[str, ...] = HOST_FAULT_CLASSES
    period: int = 3
    max_injections: int = 2

    def __post_init__(self) -> None:
        unknown = [f for f in self.faults if f not in HOST_FAULT_CLASSES]
        if unknown:
            raise ValueError(
                f"unknown host fault class(es): {', '.join(unknown)}; "
                f"expected a subset of {HOST_FAULT_CLASSES}")
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if self.max_injections < 0:
            raise ValueError(f"max_injections must be >= 0, got "
                             f"{self.max_injections}")

    def fires(self, fault: str, index: int) -> bool:
        if fault not in self.faults:
            return False
        word = splitmix64(
            ((self.seed ^ _fault_salt(fault))
             + (index + 1) * GOLDEN_GAMMA) & _MASK64)
        return word % self.period == 0

    def to_config(self) -> Dict[str, Any]:
        """Flat, string/number-only rendering for metrics-document
        config blocks."""
        return {"seed": self.seed, "faults": ",".join(self.faults),
                "period": self.period,
                "max_injections": self.max_injections}


@dataclass(frozen=True)
class Injection:
    """One fault that actually fired."""

    fault: str
    op: str         #: persistence op tag or 'dispatch'
    index: int      #: the opportunity index it fired at
    detail: str


class HostFaultInjector:
    """Stateful executor of a :class:`ChaosSchedule`.

    One injector spans *all* resume rounds of a chaos cell: opportunity
    counters and fired counts are never reset, so the bounded injection
    budget is global to the cell and the crash/resume loop provably
    drains it.  Implements the :mod:`repro.hostio` seam
    (``before_write`` / ``torn_write`` / ``after_write``) and the
    pool's ``fire('worker_kill', ...)`` probe.
    """

    def __init__(self, schedule: ChaosSchedule):
        self.schedule = schedule
        self._indices: Counter = Counter()
        self._fired: Counter = Counter()
        self.injections: List[Injection] = []

    def fire(self, fault: str, *, op: str = "",
             detail: str = "") -> Optional[Injection]:
        """Consume one opportunity for ``fault``; returns the
        :class:`Injection` iff the schedule fires and budget remains."""
        index = self._indices[fault]
        self._indices[fault] += 1
        if self._fired[fault] >= self.schedule.max_injections:
            return None
        if not self.schedule.fires(fault, index):
            return None
        self._fired[fault] += 1
        injection = Injection(fault=fault, op=op, index=index,
                              detail=detail)
        self.injections.append(injection)
        return injection

    def counts(self) -> Dict[str, int]:
        """Fired injections per fault class (zero-count classes
        included, so matrices stay shape-stable)."""
        return {fault: self._fired.get(fault, 0)
                for fault in self.schedule.faults}

    def exhausted(self) -> bool:
        """True once every scheduled fault class hit its budget."""
        return all(self._fired.get(fault, 0)
                   >= self.schedule.max_injections
                   for fault in self.schedule.faults)

    # -- repro.hostio seam ---------------------------------------------------

    def before_write(self, op: str, path: str) -> None:
        if self.fire("enospc", op=op, detail=path) is not None:
            raise InjectedIOFault(
                f"chaos: ENOSPC writing {path}", fault="enospc", op=op,
                path=path, errno_code=errno_mod.ENOSPC)
        if self.fire("eio", op=op, detail=path) is not None:
            raise InjectedIOFault(
                f"chaos: EIO writing {path}", fault="eio", op=op,
                path=path, errno_code=errno_mod.EIO)

    def torn_write(self, op: str, path: str) -> bool:
        return self.fire("torn_write", op=op, detail=path) is not None

    def after_write(self, op: str, path: str) -> None:
        if self.fire("stale_tmp", op=op, detail=path) is not None:
            # Debris from "some other" interrupted write: must end in
            # .tmp (so sweeps collect it) but must not collide with the
            # live tmp name a concurrent atomic write would use.
            with open(path + ".stale" + TMP_SUFFIX, "w") as handle:
                handle.write('{"torn": ')
        if op == "shard_result" \
                and self.fire("corrupt_result", op=op,
                              detail=path) is not None:
            with open(path, "r+b") as handle:
                data = handle.read()
                mid = len(data) // 2
                handle.seek(mid)
                handle.write(bytes([data[mid] ^ 0x01]))


# ---------------------------------------------------------------------------
# Chaos campaign: plan cells, run each under a schedule, gate on
# convergence
# ---------------------------------------------------------------------------

#: campaign kinds a chaos cell can exercise (the poison cell is always
#: appended — it proves quarantine keeps a hostile shard typed)
CHAOS_KINDS = ("fuzz", "juliet", "selftest")
DEFAULT_KINDS = ("fuzz", "juliet")

FUZZ_CONFIGS = ("baseline", "wrapped")
POISON_SHARD = 3


def _plan_for_cell(kind: str, seed: int, work_dir: str,
                   tag: str) -> "ShardPlan":
    """The (small, CI-sized) campaign plan one chaos cell runs.  A pure
    function of ``(kind, seed)`` modulo the scratch directories."""
    from repro.par.engine import plan_fuzz, plan_juliet
    from repro.par.plan import plan_indices

    if kind == "fuzz":
        return plan_fuzz(6, seed, configs=list(FUZZ_CONFIGS),
                         corpus_dir=os.path.join(work_dir,
                                                 f"corpus-{tag}"),
                         plant_bug=False, jobs=2, shard_size=2)
    if kind == "juliet":
        return plan_juliet(seed=seed, jobs=2, shard_size=0)
    if kind == "selftest":
        # the poison cell: one shard raises on every attempt
        return plan_indices(
            "selftest", seed, list(range(8)),
            params={"fail_shards": [POISON_SHARD], "mode": "raise"},
            shards=8)
    raise ValueError(f"no chaos cell for campaign kind {kind!r}")


@dataclass
class CellOutcome:
    """Everything one chaos cell produced."""

    name: str
    verdict: str                #: one of CELL_VERDICTS
    rounds: int = 0             #: chaos-run rounds (1 = no crash)
    crashes: int = 0            #: rounds ended by a typed crash
    io_errors: int = 0          #: degraded checkpoint writes (final round)
    restored: int = 0           #: shards restored on the final resume
    swept_tmp: int = 0          #: stale .tmp files swept across rounds
    quarantined: List[Dict[str, Any]] = field(default_factory=list)
    injections: Dict[str, int] = field(default_factory=dict)
    diffs: List[str] = field(default_factory=list)
    failure: str = ""           #: typed failure detail, if any

    def metrics(self) -> Dict[str, Any]:
        """Numbers-only fragment for the chaos matrix payload."""
        row: Dict[str, Any] = {v: int(self.verdict == v)
                               for v in CELL_VERDICTS}
        row.update({
            "rounds": self.rounds, "crashes": self.crashes,
            "io_errors": self.io_errors, "restored": self.restored,
            "swept_tmp": self.swept_tmp,
            "quarantined_shards": len(self.quarantined),
            "diff_lines": len(self.diffs),
            "injections": dict(self.injections),
            "injections_total": sum(self.injections.values()),
        })
        return row


def _masked(payloads: List[Optional[Dict[str, Any]]],
            mask: set) -> List[Optional[Dict[str, Any]]]:
    return [None if index in mask else payload
            for index, payload in enumerate(payloads)]


def _comparable(kind: str, payloads: List[Optional[Dict[str, Any]]]
                ) -> List[Optional[Dict[str, Any]]]:
    """Project shard payloads down to their content for comparison.

    The selftest runner deliberately records which ``attempt`` it
    succeeded on (the flaky-mode crash-recovery tests read it), and a
    chaos worker kill retries an innocent shard — making that field
    scheduling-dependent, like wall-clock.  Its content is ``value``;
    drop ``attempt`` the way :func:`canonical_metrics` drops timing.
    """
    if kind != "selftest":
        return payloads
    return [None if payload is None
            else {key: value for key, value in payload.items()
                  if key != "attempt"}
            for payload in payloads]


def run_chaos_cell(kind: str, seed: int, *, work_dir: str,
                   schedule: ChaosSchedule, jobs: int = 2,
                   retries: int = 2,
                   log: Callable[[str], None] = lambda m: None
                   ) -> CellOutcome:
    """Run one chaos cell: fault-free reference, then the same plan
    under ``schedule`` with bounded crash/resume rounds, then classify.

    The resume loop is the self-healing claim made executable: a round
    that dies of an injected crash (torn write, inline worker kill, an
    unguarded injected IO error during checkpoint open) simply resumes
    against the same checkpoint; because the injector's budget spans
    rounds, the schedule eventually runs dry and a round completes.
    """
    from repro.hostio import sweep_stale_tmp
    from repro.par.campaigns import runner_for
    from repro.par.checkpoint import Checkpoint
    from repro.par.merge import diff_documents
    from repro.par.pool import run_plan

    name = f"{kind}-poison" if kind == "selftest" else kind
    runner = runner_for(kind)

    # -- fault-free reference ------------------------------------------------
    ref_plan = _plan_for_cell(kind, seed, work_dir, f"{name}-ref")
    reference = run_plan(ref_plan, runner, jobs=jobs, retries=retries,
                         backoff_base=0.0, quarantine=True)
    ref_payloads = reference.ordered_results(ref_plan)
    ref_quarantined = {q.shard_id for q in reference.quarantined}

    # -- chaos-armed run with bounded resume rounds ---------------------------
    plan = _plan_for_cell(kind, seed, work_dir, name)
    ckpt_dir = os.path.join(work_dir, f"ckpt-{name}")
    injector = HostFaultInjector(schedule)
    outcome = CellOutcome(name=name, verdict="typed_failure")
    # every crash round consumes at least the injection that caused it,
    # so the budget bounds the loop; +2 covers the first and the final
    # clean round
    max_rounds = (len(schedule.faults) * schedule.max_injections) + 2
    result = None
    for round_index in range(max_rounds):
        outcome.rounds = round_index + 1
        outcome.swept_tmp += sweep_stale_tmp(ckpt_dir)
        try:
            with inject_faults(injector):
                result = run_plan(
                    plan, runner, jobs=jobs, retries=retries,
                    backoff_base=0.0,
                    checkpoint=Checkpoint(ckpt_dir),
                    quarantine=True, chaos=injector)
        except (ReproError, OSError) as exc:
            outcome.crashes += 1
            outcome.failure = f"{type(exc).__name__}: {exc}"
            log(f"[repro.chaos] {name}: round {round_index + 1} "
                f"crashed typed ({outcome.failure}); resuming")
            result = None
            continue
        break
    outcome.injections = injector.counts()

    if result is None:
        # injections bounded ==> unreachable unless a real bug keeps
        # crashing the run; surface it typed rather than diverged
        log(f"[repro.chaos] {name}: no clean round in {max_rounds} "
            f"attempts; last failure: {outcome.failure}")
        return outcome

    outcome.io_errors = result.io_errors
    outcome.restored = len(result.restored)
    outcome.quarantined = [q.to_dict() for q in result.quarantined]
    outcome.failure = ""

    # -- classification -------------------------------------------------------
    ref_payloads = _comparable(kind, ref_payloads)
    chaos_payloads = _comparable(kind, result.ordered_results(plan))
    diffs = diff_documents(ref_payloads, chaos_payloads)
    if not diffs and {q.shard_id for q in result.quarantined} \
            == ref_quarantined:
        outcome.verdict = "converged"
        return outcome
    # tolerate *typed* quarantine divergence: shards the schedule
    # hounded past their retry budget may be dead-lettered — every
    # other shard must still match the reference byte-for-byte
    extra = {q.shard_id for q in result.quarantined} - ref_quarantined
    masked_diffs = diff_documents(_masked(ref_payloads, extra),
                                  chaos_payloads)
    if extra and not masked_diffs:
        outcome.verdict = "quarantined"
        return outcome
    outcome.verdict = "diverged"
    outcome.diffs = diffs[:20]
    return outcome


def run_chaos_campaign(*, seed: int = 0,
                       kinds: Tuple[str, ...] = DEFAULT_KINDS,
                       faults: Tuple[str, ...] = HOST_FAULT_CLASSES,
                       period: int = 3, max_injections: int = 2,
                       jobs: int = 2, work_dir: str = "chaos-work",
                       log: Callable[[str], None] = lambda m: None
                       ) -> Dict[str, Any]:
    """Run the chaos matrix: one cell per campaign kind plus the
    selftest poison cell; returns the schema-v1 chaos matrix document.

    The matrix's ``ok`` criterion — zero ``diverged`` cells — is the
    whole harness's contract: under seeded host faults every campaign
    either converges to its fault-free reference or surfaces a typed
    failure/quarantine.
    """
    from repro.obs.metrics import metrics_document

    os.makedirs(work_dir, exist_ok=True)
    cells = list(kinds) + ["selftest"]
    outcomes: List[CellOutcome] = []
    for index, kind in enumerate(cells):
        cell_seed = derive_seed(seed, index + 1)
        schedule = ChaosSchedule(seed=derive_seed(cell_seed, 1),
                                 faults=tuple(faults), period=period,
                                 max_injections=max_injections)
        log(f"[repro.chaos] cell {kind} (seed {cell_seed:#x}): "
            f"running reference + chaos rounds")
        outcome = run_chaos_cell(kind, cell_seed, work_dir=work_dir,
                                 schedule=schedule, jobs=jobs, log=log)
        log(f"[repro.chaos] cell {outcome.name}: {outcome.verdict} "
            f"after {outcome.rounds} round(s), "
            f"{sum(outcome.injections.values())} injection(s), "
            f"{outcome.crashes} crash(es)")
        outcomes.append(outcome)

    totals = {verdict: sum(1 for o in outcomes if o.verdict == verdict)
              for verdict in CELL_VERDICTS}
    payload: Dict[str, Any] = {
        "cells": {o.name: o.metrics() for o in outcomes},
        "totals": {
            **totals,
            "cells": len(outcomes),
            "rounds": sum(o.rounds for o in outcomes),
            "crashes": sum(o.crashes for o in outcomes),
            "injections": sum(sum(o.injections.values())
                              for o in outcomes),
            "quarantined_shards": sum(len(o.quarantined)
                                      for o in outcomes),
        },
    }
    config = {"seed": seed, "kinds": ",".join(cells), "jobs": jobs,
              "faults": ",".join(faults), "period": period,
              "max_injections": max_injections}
    return metrics_document("chaos", config, payload)


def check_matrix(doc: Dict[str, Any]) -> List[str]:
    """The chaos gate: return violations (empty = pass).

    * no cell diverged (zero silent divergence);
    * every cell carries exactly one verdict;
    * totals are consistent with the cells.
    """
    violations: List[str] = []
    metrics = doc.get("metrics", {})
    cells = metrics.get("cells", {})
    totals = metrics.get("totals", {})
    for name, row in sorted(cells.items()):
        flags = [v for v in CELL_VERDICTS if row.get(v)]
        if len(flags) > 1:
            violations.append(f"{name}: multiple verdicts {flags}")
        if not flags:
            violations.append(f"{name}: no verdict recorded")
        if row.get("diverged"):
            violations.append(
                f"{name}: DIVERGED — {row.get('diff_lines', 0)} "
                f"difference(s) vs the fault-free reference")
    for verdict in CELL_VERDICTS:
        recomputed = sum(1 for row in cells.values()
                         if row.get(verdict))
        if totals.get(verdict) != recomputed:
            violations.append(
                f"totals.{verdict}: {totals.get(verdict)} != "
                f"recomputed {recomputed}")
    if totals.get("cells") != len(cells):
        violations.append(f"totals.cells: {totals.get('cells')} != "
                          f"{len(cells)}")
    return violations


# ---------------------------------------------------------------------------
# CLI: python -m repro.resil chaos
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.resil chaos",
        description="Host-fault chaos campaign: run small campaigns "
                    "under seeded crash/IO fault schedules and gate on "
                    "convergence with a fault-free reference.")
    parser.add_argument("--seed", "-s", type=int, default=0,
                        help="campaign master seed (default 0)")
    parser.add_argument("--kinds", type=str,
                        default=",".join(DEFAULT_KINDS),
                        help="comma-separated campaign kinds "
                             f"(available: {', '.join(DEFAULT_KINDS)}; "
                             "a selftest poison cell is always added)")
    parser.add_argument("--faults", type=str,
                        default=",".join(HOST_FAULT_CLASSES),
                        help="comma-separated host fault classes "
                             f"(available: "
                             f"{', '.join(HOST_FAULT_CLASSES)})")
    parser.add_argument("--jobs", "-j", type=int, default=2,
                        help="worker processes per cell (default 2)")
    parser.add_argument("--period", type=int, default=3,
                        help="average opportunities between injections "
                             "(default 3)")
    parser.add_argument("--max-injections", type=int, default=2,
                        help="injection budget per fault class "
                             "(default 2)")
    parser.add_argument("--work-dir", type=str, default="chaos-work",
                        metavar="DIR",
                        help="scratch directory for checkpoints and "
                             "corpora (default chaos-work)")
    parser.add_argument("--out", type=str, metavar="JSON",
                        help="write the chaos matrix as a repro.obs "
                             "metrics document")
    parser.add_argument("--check", action="store_true",
                        help="enforce the gate: exit non-zero unless "
                             "every cell converged or surfaced a typed "
                             "failure/quarantine")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress per-cell progress lines")
    args = parser.parse_args(argv)

    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    unknown = [k for k in kinds if k not in DEFAULT_KINDS]
    if unknown:
        parser.error(f"unknown campaign kind(s): {', '.join(unknown)}")
    faults = tuple(f.strip() for f in args.faults.split(",")
                   if f.strip())
    unknown = [f for f in faults if f not in HOST_FAULT_CLASSES]
    if unknown:
        parser.error(f"unknown host fault class(es): "
                     f"{', '.join(unknown)}")

    log = (lambda message: None) if args.quiet else print
    doc = run_chaos_campaign(
        seed=args.seed, kinds=kinds, faults=faults, period=args.period,
        max_injections=args.max_injections, jobs=args.jobs,
        work_dir=args.work_dir, log=log)

    totals = doc["metrics"]["totals"]
    print(f"repro.chaos: {totals['cells']} cells — "
          f"{totals['converged']} converged, "
          f"{totals['quarantined']} quarantined, "
          f"{totals['typed_failure']} typed failures, "
          f"{totals['diverged']} diverged "
          f"({totals['injections']} injections, "
          f"{totals['crashes']} crash/resume rounds)")

    if args.out:
        from repro.obs.metrics import write_metrics
        path = write_metrics(args.out, doc)
        print(f"chaos matrix written to {path}")

    violations = check_matrix(doc)
    if violations:
        for violation in violations:
            print(f"repro.chaos: GATE: {violation}")
        return 1
    if args.check:
        print("repro.chaos: gate passed — zero silent divergence")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
