"""Deterministic, seeded fault injection for the IFP pipeline.

A :class:`FaultPlan` is a declarative description of *what* to corrupt
and *how often*; :class:`FaultInjector` applies it to one machine by
installing hooks at three choke points:

* the promote engine (``IFPUnit.promote``) — pointer-tag bit flips as
  the pointer enters the unit, modelling an attacker (or soft error)
  forging the 16-bit tag;
* the metadata port (``MetadataPort.load``) — corruption of metadata
  words, MAC fields, and layout-table entries *as fetched*, modelling
  heap sprays over metadata regions (the paper's Section 3.3.2 threat);
* the allocators — resource-exhaustion faults (global-table drain,
  subheap-register pressure, malloc returning NULL), modelling hostile
  or merely unlucky allocation patterns.

Everything is a pure function of ``FaultPlan.seed``: the injector draws
from its own :class:`random.Random` and never touches global state, so
a campaign cell can be replayed bit-for-bit from its plan.

Fault classes
=============

===========================  ===========================================
class                        effect
===========================  ===========================================
``tag_bit_flip``             flip ``bits`` random bits among pointer
                             bits 48–61 (scheme + payload) at promote
``metadata_corrupt``         flip ``bits`` random bits in any metadata
                             word fetched during a scheme lookup
``mac_corrupt``              flip ``bits`` random bits in 6-byte (MAC)
                             fields fetched during a scheme lookup
``layout_corrupt``           flip ``bits`` random bits in layout-table
                             words fetched during subobject narrowing
``global_table_exhaust``     drain the global table at arm time,
                             leaving ``payload`` rows free
``subheap_register_pressure``fill subheap control registers at arm
                             time, leaving ``payload`` registers free
``alloc_oom``                after ``start`` successful allocations,
                             every ``period``-th malloc returns NULL
``temporal_lock_corrupt``    re-key a live lock in the temporal
                             registry at every ``period``-th mint,
                             modelling corruption of the lock table's
                             generation field (requires the machine's
                             ``temporal`` policy armed; a no-op
                             otherwise)
===========================  ===========================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.ifp.schemes.subheap import SubheapRegion

FAULT_CLASSES: Tuple[str, ...] = (
    "tag_bit_flip",
    "metadata_corrupt",
    "mac_corrupt",
    "layout_corrupt",
    "global_table_exhaust",
    "subheap_register_pressure",
    "alloc_oom",
    "temporal_lock_corrupt",
)

#: fault classes applied once when the injector is armed (the rest are
#: event-driven and gated by (start, period))
_ARM_TIME = ("global_table_exhaust", "subheap_register_pressure")


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``start`` skips the first N opportunities (so the workload gets off
    the ground before faults begin); ``period`` then injects at every
    Nth opportunity.  ``bits`` is the number of bits flipped per
    injection; ``payload`` is class-specific (resources left free for
    the exhaustion classes).
    """

    fault: str
    period: int = 1
    start: int = 0
    bits: int = 1
    payload: int = 0

    def validate(self) -> None:
        if self.fault not in FAULT_CLASSES:
            raise ValueError(f"unknown fault class {self.fault!r}; "
                             f"expected one of {FAULT_CLASSES}")
        if self.period < 1:
            raise ValueError("period must be >= 1")
        if self.start < 0 or self.bits < 1 or self.payload < 0:
            raise ValueError("start/payload must be >= 0, bits >= 1")

    def to_dict(self) -> dict:
        return {"fault": self.fault, "period": self.period,
                "start": self.start, "bits": self.bits,
                "payload": self.payload}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(fault=data["fault"],
                   period=data.get("period", 1),
                   start=data.get("start", 0),
                   bits=data.get("bits", 1),
                   payload=data.get("payload", 0))


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the specs to apply — the unit of campaign replay."""

    seed: int
    specs: Tuple[FaultSpec, ...] = ()

    def validate(self) -> None:
        for spec in self.specs:
            spec.validate()

    @classmethod
    def single(cls, fault: str, seed: int, **kwargs) -> "FaultPlan":
        return cls(seed=seed, specs=(FaultSpec(fault=fault, **kwargs),))

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(seed=data["seed"],
                   specs=tuple(FaultSpec.from_dict(spec)
                               for spec in data["specs"]))


@dataclass
class _Injection:
    """Log record of one applied fault (feeds reports and tests)."""

    fault: str
    target: str
    detail: str


class FaultInjector:
    """Applies a :class:`FaultPlan` to one machine.

    Create one injector per run; ``arm(machine)`` installs the hooks
    and applies arm-time faults.  The injector keeps a log of every
    injection in :attr:`injections`.
    """

    def __init__(self, plan: FaultPlan):
        plan.validate()
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.machine = None
        self.injections: List[_Injection] = []
        #: per-spec opportunity counters (index-aligned with plan.specs)
        self._counts = [0] * len(plan.specs)
        self._by_class = {}
        for index, spec in enumerate(plan.specs):
            self._by_class.setdefault(spec.fault, []).append((index, spec))

    # -- wiring ---------------------------------------------------------------

    def arm(self, machine) -> None:
        """Install hooks on ``machine`` and apply arm-time faults."""
        self.machine = machine
        if any(f in self._by_class for f in
               ("tag_bit_flip", "metadata_corrupt", "mac_corrupt",
                "layout_corrupt")):
            machine.ifp.faults = self
            machine.ifp.port.faults = self
        for _index, spec in self._by_class.get("global_table_exhaust", ()):
            self._drain_global_table(machine, spec)
        for _index, spec in self._by_class.get(
                "subheap_register_pressure", ()):
            self._fill_subheap_registers(machine, spec)
        for index, spec in self._by_class.get("alloc_oom", ()):
            self._wrap_allocators_oom(machine, index, spec)
        for index, spec in self._by_class.get("temporal_lock_corrupt", ()):
            self._hook_temporal_registry(machine, index, spec)

    # -- event-driven hooks (called from the IFP unit) -------------------------

    def on_promote(self, pointer: int) -> int:
        """Called as a tagged pointer enters the promote engine."""
        for index, spec in self._by_class.get("tag_bit_flip", ()):
            if pointer == 0:
                continue
            if not self._due(index, spec):
                continue
            flipped = pointer
            for _ in range(spec.bits):
                bit = self.rng.randrange(48, 62)
                flipped ^= 1 << bit
            self._record(spec, "promote",
                         f"pointer 0x{pointer:016x} -> 0x{flipped:016x}")
            pointer = flipped
        return pointer

    def on_metadata_load(self, address: int, size: int, value: int,
                         phase: Optional[str]) -> int:
        """Called for every metadata-port load; may corrupt the value."""
        for fault, is_target in (
                ("metadata_corrupt", phase == "metadata"),
                ("mac_corrupt", phase == "metadata" and size == 6),
                ("layout_corrupt", phase == "layout")):
            for index, spec in self._by_class.get(fault, ()):
                if not is_target or not self._due(index, spec):
                    continue
                corrupted = value
                for _ in range(spec.bits):
                    corrupted ^= 1 << self.rng.randrange(size * 8)
                self._record(
                    spec, f"port.load[{phase}]",
                    f"0x{address:x}/{size}B "
                    f"0x{value:x} -> 0x{corrupted:x}")
                value = corrupted
        return value

    # -- arm-time faults ------------------------------------------------------

    def _drain_global_table(self, machine, spec: FaultSpec) -> None:
        table = machine.global_table
        drained = 0
        while table.free_rows > spec.payload:
            table._free_rows.pop()
            drained += 1
        self._record(spec, "global_table",
                     f"drained {drained} rows, {table.free_rows} left")

    def _fill_subheap_registers(self, machine, spec: FaultSpec) -> None:
        registers = machine.ifp.control._subheap
        filled = 0
        for index in range(len(registers)):
            free = sum(1 for r in registers if r is None)
            if free <= spec.payload:
                break
            if registers[index] is None:
                # Distinct dummy regions (block_log2 26 is outside every
                # real size class, so no allocation ever matches one).
                registers[index] = SubheapRegion(26, index)
                filled += 1
        self._record(spec, "subheap_registers",
                     f"occupied {filled} control registers")

    def _wrap_allocators_oom(self, machine, index: int,
                             spec: FaultSpec) -> None:
        freelist_malloc = machine.freelist.malloc
        buddy_alloc = machine.buddy.alloc

        def faulty_malloc(size):
            if self._due(index, spec):
                self._record(spec, "freelist.malloc", f"size={size} -> NULL")
                return 0, 4, 4
            return freelist_malloc(size)

        def faulty_buddy_alloc(order):
            if self._due(index, spec):
                self._record(spec, "buddy.alloc",
                             f"order={order} -> NULL")
                return 0, 4
            return buddy_alloc(order)

        machine.freelist.malloc = faulty_malloc
        machine.heap_freelist_malloc = faulty_malloc
        machine.buddy.alloc = faulty_buddy_alloc

    def _hook_temporal_registry(self, machine, index: int,
                                spec: FaultSpec) -> None:
        """Re-key a live lock at every due mint opportunity.

        The corrupted entry stays live with a different key, so every
        later lock==key comparison of a legitimately-minted pointer
        mismatches.  The resilience gate is that this surfaces as a
        typed :class:`repro.errors.TemporalViolation` (or is harmless
        when the allocation is never touched again) — never as silent
        output divergence, which the registry cannot cause: corruption
        only changes *check* outcomes, not data.
        """
        registry = getattr(machine, "temporal", None)
        if registry is None:
            # Policy off: there is no lock table to corrupt.  Leave the
            # machine untouched so the cell classifies as unaffected.
            return
        original_mint = registry.mint

        def faulty_mint(base, size):
            key = original_mint(base, size)
            if self._due(index, spec):
                target = registry.any_live_base()
                if target is not None and registry.corrupt(target):
                    entry = registry.probe(target)
                    self._record(
                        spec, "temporal.registry",
                        f"lock for base 0x{target:x} re-keyed to "
                        f"{entry[0]}")
            return key

        registry.mint = faulty_mint

    # -- internals ------------------------------------------------------------

    def _due(self, index: int, spec: FaultSpec) -> bool:
        """Gate one opportunity for spec ``index`` through (start, period)."""
        count = self._counts[index]
        self._counts[index] = count + 1
        if count < spec.start:
            return False
        return (count - spec.start) % spec.period == 0

    def _record(self, spec: FaultSpec, target: str, detail: str) -> None:
        self.injections.append(_Injection(spec.fault, target, detail))
        machine = self.machine
        if machine is not None and machine.obs is not None:
            machine.obs.fault_injected(spec.fault, target, detail)
