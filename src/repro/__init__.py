"""In-Fat Pointer (ASPLOS 2021) — a full-system reproduction in Python.

Public API tour:

>>> from repro import compile_source, CompilerOptions, Machine
>>> program = compile_source(SOURCE, CompilerOptions.subheap())
>>> result = Machine(program).run()
>>> result.ok, result.stats.total_instructions

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.ifp` — the paper's contribution: pointer tags, the three
  object-metadata schemes, layout tables, promote;
* :mod:`repro.lang` / :mod:`repro.compiler` — the mini-C frontend and the
  instrumenting compiler;
* :mod:`repro.vm` — the cycle-approximate machine (CVA6 stand-in);
* :mod:`repro.runtime` — allocators and modelled libc;
* :mod:`repro.juliet` — Juliet-style functional evaluation;
* :mod:`repro.workloads` — the 18 application benchmarks;
* :mod:`repro.eval` — Table 4 / Figures 10-13 harnesses;
* :mod:`repro.hwmodel` — the FPGA-area model.
"""

from repro.compiler import CompilerOptions, compile_source
from repro.ifp import (
    Bounds, IFPConfig, IFPUnit, LayoutEntry, LayoutTable, Poison,
    PointerTag, Scheme,
)
from repro.vm import Machine, MachineConfig, RunResult, RunStats

__version__ = "1.0.0"

__all__ = [
    "CompilerOptions", "compile_source",
    "Bounds", "IFPConfig", "IFPUnit", "LayoutEntry", "LayoutTable",
    "Poison", "PointerTag", "Scheme",
    "Machine", "MachineConfig", "RunResult", "RunStats",
    "__version__",
]
