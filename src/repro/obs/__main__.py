"""CLI entry point: ``python -m repro.obs``.

Examples::

    # hot-site profile of one workload under one configuration
    python -m repro.obs report --workload ft --config wrapped --top 10

    # same run, exporting metrics JSON (and Prometheus text)
    python -m repro.obs report --workload ft --metrics-out ft.json \\
        --prometheus

    # rank workload cells by IFP-unit cache hit/miss/elision counters
    python -m repro.obs report --workload treeadd,coremark --hotpath

    # trap forensics demo: a forced intra-object overflow
    python -m repro.obs forensics

    # per-worker utilization of a sharded campaign (repro.par)
    python -m repro.obs report --par-events ckpt/events.jsonl

    # validate metrics JSON against the schema (CI does this)
    python -m repro.obs validate BENCH_fuzz_throughput.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import WorkloadTrapped
from repro.eval.configs import CONFIG_NAMES
from repro.obs.metrics import (
    load_metrics, metrics_document, stats_to_dict, to_prometheus,
    write_metrics,
)

#: paper Listing 1 shape: a nested struct whose sibling member an
#: off-by-one subobject write would clobber
OVERFLOW_DEMO = """
struct Inner { int v3; int v4; };
struct S { int v1; struct Inner array[2]; int v5; };
int *g_escape;
int main(void) {
    struct S *s = (struct S*)malloc(sizeof(struct S));
    s->v5 = 99;
    g_escape = &s->array[1].v3;  /* subobject pointer escapes */
    int *q = g_escape;           /* reload: promote + narrowing */
    q[1] = 7;                    /* intra-object overflow into v4 */
    printf("v5 = %d\\n", s->v5);
    return 0;
}
"""


def render_pool_events(records) -> str:
    """Per-worker utilization from a repro.par / repro.serve event
    stream.

    ``records`` is an iterable of event dicts (``events.jsonl`` rows a
    checkpointed/evented pool run writes, or a serve job's NDJSON event
    stream): ``shard_start``, ``shard_done``, ``shard_retry``,
    ``steal``, ``job`` and ``queue_reject`` kinds are consumed,
    anything else is ignored so the stream can be mixed.

    Correlated streams (events carrying a ``ctx`` dict with a
    ``job_id``) are grouped per job: each job gets its own per-worker
    utilization section headed by its (tenant, job) correlation ids.
    Uncorrelated streams render as one flat pool section, so
    plain-batch ``events.jsonl`` files keep their historical output.
    """
    jobs: dict = {}         # job key (None = uncorrelated) -> state
    job_status: dict = {}   # job_id -> last lifecycle status
    job_tenants: dict = {}  # job_id -> tenant
    rejects: dict = {}      # tenant -> queue_reject count

    def group(record) -> dict:
        ctx = record.get("ctx") or {}
        key = ctx.get("job_id")
        if key is not None and ctx.get("tenant") is not None:
            job_tenants.setdefault(key, ctx["tenant"])
        return jobs.setdefault(key, {
            "workers": {}, "wall": 0.0, "done": 0, "failures": 0,
            "retries": 0, "steals": 0})

    def slot(state: dict, worker: int) -> dict:
        return state["workers"].setdefault(
            worker, {"busy": 0.0, "done": 0, "steals": 0, "retries": 0})

    for record in records:
        kind = record.get("kind")
        if kind == "job":
            job_status[record.get("job_id")] = record.get("status")
            if record.get("tenant") is not None:
                job_tenants.setdefault(record.get("job_id"),
                                       record.get("tenant"))
            continue
        if kind == "queue_reject":
            tenant = record.get("tenant", "?")
            rejects[tenant] = rejects.get(tenant, 0) + 1
            continue
        if kind not in ("shard_start", "shard_done", "shard_retry",
                        "steal"):
            continue
        state = group(record)
        state["wall"] = max(state["wall"], float(record.get("t", 0.0)))
        if kind == "shard_done":
            entry = slot(state, record["worker"])
            entry["busy"] += float(record.get("seconds", 0.0))
            if record.get("status") == "ok":
                entry["done"] += 1
                state["done"] += 1
            else:
                state["failures"] += 1
        elif kind == "shard_retry":
            state["retries"] += 1
            if record.get("worker", -1) >= 0:
                slot(state, record["worker"])["retries"] += 1
        elif kind == "steal":
            state["steals"] += 1
            slot(state, record["worker"])["steals"] += 1

    if not any(state["workers"] for state in jobs.values()):
        if job_status or rejects:
            lines = []
            for job_id in sorted(job_status):
                tenant = job_tenants.get(job_id, "?")
                lines.append(f"job {job_id} [tenant {tenant}]: "
                             f"{job_status[job_id]} (no shard events)")
            for tenant in sorted(rejects):
                lines.append(f"tenant {tenant}: {rejects[tenant]} "
                             f"queue rejection(s)")
            return "\n".join(lines)
        return "no shard events found"

    correlated = any(key is not None for key in jobs)
    lines = []
    for key in sorted(jobs, key=lambda k: (k is not None, k or "")):
        state = jobs[key]
        if not state["workers"]:
            continue
        label = "pool"
        if key is not None:
            tenant = job_tenants.get(key, "?")
            status = job_status.get(key)
            label = f"job {key} [tenant {tenant}]"
            if status:
                label += f" ({status})"
        elif correlated:
            label = "uncorrelated"
        lines.append(
            f"{label}: {state['done']} shards ok, "
            f"{state['failures']} failed attempts, "
            f"{state['retries']} retries, {state['steals']} steals "
            f"({state['wall']:.1f}s wall)")
        denominator = state["wall"] or 1e-9
        for worker in sorted(state["workers"]):
            entry = state["workers"][worker]
            lines.append(
                f"  worker {worker}: {entry['done']} shards, "
                f"busy {entry['busy']:.1f}s "
                f"({100.0 * entry['busy'] / denominator:.0f}%), "
                f"{entry['steals']} steals, {entry['retries']} retries")
    for tenant in sorted(rejects):
        lines.append(f"tenant {tenant}: {rejects[tenant]} "
                     f"queue rejection(s)")
    return "\n".join(lines)


def render_hotpath(cells: "dict[str, object]") -> str:
    """Rank workload cells by residual promote-path host work.

    ``cells`` maps ``"<workload>/<config>"`` to that run's
    :class:`~repro.ifp.unit.IFPUnitStats`.  Cells are ranked by
    promote-cache misses — the promotes that still walk metadata on the
    host after the promote-result cache and the check-elision memo have
    taken their share — so the top row is where IFP-unit host time
    concentrates.
    """
    def rate(hits: int, misses: int) -> str:
        total = hits + misses
        return f"{100.0 * hits / total:5.1f}%" if total else "    —"

    ranked = sorted(cells.items(),
                    key=lambda item: item[1].promote_cache_misses,
                    reverse=True)
    header = (f"{'cell':24s} {'promotes':>9s} {'elided':>7s} "
              f"{'cache':>6s} {'mac':>6s} {'walk':>6s} "
              f"{'miss':>8s} {'inval':>6s}")
    lines = [header, "-" * len(header)]
    for key, ifp in ranked:
        valid = ifp.promotes_valid or 0
        elided = (f"{100.0 * ifp.promote_elisions / valid:5.1f}%"
                  if valid else "    —")
        lines.append(
            f"{key:24s} {valid:9d} {elided:>7s} "
            f"{rate(ifp.promote_cache_hits, ifp.promote_cache_misses):>6s} "
            f"{rate(ifp.mac_cache_hits, ifp.mac_cache_misses):>6s} "
            f"{rate(ifp.layout_cache_hits, ifp.layout_cache_misses):>6s} "
            f"{ifp.promote_cache_misses:8d} "
            f"{ifp.promote_cache_invalidations:6d}")
    lines.append(
        "elided = promotes served by the check-elision memo; cache/mac/"
        "walk = hit rates of the promote-result, MAC, and layout-walk "
        "caches; miss = promotes still walking metadata on the host; "
        "inval = store-snoop invalidations")
    return "\n".join(lines)


def _cmd_hotpath(args) -> int:
    from repro.eval.harness import run_workload
    from repro.workloads import WORKLOADS
    workloads = [w.strip() for w in args.workload.split(",")
                 if w.strip()]
    configs = [c.strip() for c in args.hotpath.split(",") if c.strip()]
    unknown = [w for w in workloads if w not in WORKLOADS]
    if unknown:
        print(f"unknown workload(s): {', '.join(unknown)} "
              f"(available: {', '.join(sorted(WORKLOADS))})",
              file=sys.stderr)
        return 2
    unknown = [c for c in configs if c not in CONFIG_NAMES]
    if unknown:
        print(f"unknown configuration(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    cells = {}
    for name in workloads:
        for config in configs:
            try:
                run = run_workload(WORKLOADS[name], config,
                                   scale=args.scale)
            except WorkloadTrapped as exc:
                print(f"workload trapped: {exc}", file=sys.stderr)
                return 1
            cells[f"{name}/{config}"] = run.stats.ifp
    print(f"IFP-unit promote-path cache ranking (scale={args.scale})")
    print(render_hotpath(cells))
    return 0


def _cmd_report(args) -> int:
    if args.hotpath:
        return _cmd_hotpath(args)
    if args.par_events:
        try:
            with open(args.par_events) as handle:
                records = [json.loads(line) for line in handle
                           if line.strip()]
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {args.par_events}: {exc}",
                  file=sys.stderr)
            return 2
        print(render_pool_events(records))
        return 0
    from repro.eval.harness import run_workload
    from repro.workloads import WORKLOADS
    workload = WORKLOADS.get(args.workload)
    if workload is None:
        print(f"unknown workload {args.workload!r} "
              f"(available: {', '.join(sorted(WORKLOADS))})",
              file=sys.stderr)
        return 2
    try:
        run = run_workload(workload, args.config, scale=args.scale,
                           observe=True)
    except WorkloadTrapped as exc:
        print(f"workload trapped: {exc}", file=sys.stderr)
        return 1
    profiler = run.observer.profiler
    print(f"{workload.name} [{args.config}] scale={args.scale}")
    print(run.stats.summary())
    print()
    print(profiler.report(top=args.top))
    if args.metrics_out or args.prometheus:
        metrics = stats_to_dict(run.stats)
        metrics["profile"] = profiler.metrics(top=args.top)
        engine = getattr(run.observer, "engine", None)
        doc = metrics_document(
            f"{workload.name}", args.config, metrics,
            labels={"engine": engine} if engine else None)
        if args.metrics_out:
            path = write_metrics(args.metrics_out, doc)
            print(f"\nmetrics written to {path}")
        if args.prometheus:
            print()
            print(to_prometheus(doc), end="")
    return 0


def _cmd_forensics(args) -> int:
    from repro.compiler import compile_source
    from repro.eval.configs import build_machine_config, build_options
    from repro.obs.observer import attach_observer
    from repro.vm import Machine
    program = compile_source(OVERFLOW_DEMO, build_options(args.config))
    machine = Machine(program, build_machine_config(args.config))
    obs = attach_observer(machine, profile=False, forensics=True)
    result = machine.run()
    if result.trap is None:
        print(f"[{args.config}] the overflow ran silently — "
              "no layout table or narrowing in this configuration",
              file=sys.stderr)
        return 1
    report = obs.last_report
    print(report.render())
    if args.out:
        report.write(args.out)
        print(f"\nreport written to {args.out}")
    return 0


def _cmd_validate(args) -> int:
    status = 0
    for path in args.files:
        try:
            load_metrics(path)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"INVALID {path}: {exc}")
            status = 1
        else:
            print(f"ok      {path}")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Telemetry, hot-site profiling, and trap forensics "
                    "for the IFP pipeline.")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="run a workload with profiling; print hot sites")
    report.add_argument("--workload", "-w", default="ft",
                        help="workload name (default: ft)")
    report.add_argument("--config", "-c", default="wrapped",
                        choices=CONFIG_NAMES,
                        help="configuration (default: wrapped)")
    report.add_argument("--scale", type=int, default=1)
    report.add_argument("--top", type=int, default=10,
                        help="sites to show (default 10)")
    report.add_argument("--metrics-out", metavar="JSON",
                        help="write schema-v1 metrics JSON here")
    report.add_argument("--prometheus", action="store_true",
                        help="also print Prometheus text format")
    report.add_argument("--par-events", metavar="JSONL",
                        help="instead of running a workload, render "
                             "per-worker utilization from a repro.par "
                             "events.jsonl stream")
    report.add_argument("--hotpath", metavar="CONFIGS", nargs="?",
                        const="baseline,subheap",
                        help="instead of the hot-site profile, run "
                             "--workload (comma list allowed) under "
                             "these configs (default baseline,subheap) "
                             "and rank the cells by IFP-unit promote-"
                             "path cache hit/miss/elision counters")
    report.set_defaults(func=_cmd_report)

    forensics = sub.add_parser(
        "forensics",
        help="force an intra-object overflow; print its trap forensics")
    forensics.add_argument("--config", "-c", default="wrapped",
                           choices=CONFIG_NAMES)
    forensics.add_argument("--out", metavar="TXT",
                           help="also write the report to a file")
    forensics.set_defaults(func=_cmd_forensics)

    validate = sub.add_parser(
        "validate", help="validate metrics JSON against the schema")
    validate.add_argument("files", nargs="+", metavar="JSON")
    validate.set_defaults(func=_cmd_validate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
