"""Hot-site profiler: per-``(function, instr_index)`` cost attribution.

The paper's overhead story (Figures 10–11, Table 4) is a story about
*sites*: a handful of promote sites and checked accesses dominate each
benchmark.  This profiler is an event-bus sink that attributes promote,
check, and bounds-load/store counts — plus promote and metadata-port
cycles — to the emitting code site, split by tag scheme, and renders a
``top-N`` flamegraph-style text report with per-function rollups.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.events import (
    AllocEvent, BoundsSpillEvent, CheckEvent, Event, MacVerifyEvent,
    MetadataFetchEvent, NarrowEvent, PromoteEvent, SchemeAssignEvent,
    TrapEvent,
)

_UNATTRIBUTED = ("<runtime>", -1)


@dataclass
class SiteStats:
    """Everything attributed to one ``(function, instr_index)`` site."""

    function: str
    index: int
    promotes: int = 0
    promote_cycles: int = 0
    checks: int = 0
    check_failures: int = 0
    explicit_checks: int = 0
    bounds_loads: int = 0
    bounds_stores: int = 0
    metadata_loads: int = 0
    metadata_cycles: int = 0
    narrows: int = 0
    narrow_success: int = 0
    by_scheme: Counter = field(default_factory=Counter)
    by_outcome: Counter = field(default_factory=Counter)

    @property
    def events(self) -> int:
        return (self.promotes + self.checks
                + self.bounds_loads + self.bounds_stores)

    @property
    def cycles(self) -> int:
        return self.promote_cycles + self.checks \
            + self.bounds_loads + self.bounds_stores

    @property
    def label(self) -> str:
        if self.index < 0:
            return self.function
        return f"{self.function}:{self.index}"

    def to_dict(self) -> dict:
        return {
            "function": self.function, "index": self.index,
            "promotes": self.promotes,
            "promote_cycles": self.promote_cycles,
            "checks": self.checks,
            "check_failures": self.check_failures,
            "explicit_checks": self.explicit_checks,
            "bounds_loads": self.bounds_loads,
            "bounds_stores": self.bounds_stores,
            "metadata_loads": self.metadata_loads,
            "metadata_cycles": self.metadata_cycles,
            "narrows": self.narrows,
            "narrow_success": self.narrow_success,
            "by_scheme": dict(self.by_scheme),
            "by_outcome": dict(self.by_outcome),
        }


class HotSiteProfiler:
    """Event-bus sink aggregating per-site and global counters."""

    def __init__(self) -> None:
        self.sites: Dict[Tuple[str, int], SiteStats] = {}
        #: (region, scheme) -> object count, from SchemeAssignEvents
        self.scheme_assignments: Counter = Counter()
        #: (allocator, action) -> count, from AllocEvents
        self.alloc_actions: Counter = Counter()
        self.mac_verifies = 0
        self.mac_failures = 0
        self.traps: List[TrapEvent] = []

    # -- sink ----------------------------------------------------------------

    def _site(self, event: Event) -> SiteStats:
        key = event.site or _UNATTRIBUTED
        stats = self.sites.get(key)
        if stats is None:
            stats = self.sites[key] = SiteStats(key[0], key[1])
        return stats

    def on_event(self, event: Event) -> None:
        kind = event.kind
        if kind == "promote":
            site = self._site(event)
            site.promotes += 1
            site.promote_cycles += event.cycles
            site.by_scheme[event.scheme] += 1
            site.by_outcome[event.outcome] += 1
        elif kind == "check":
            site = self._site(event)
            site.checks += 1
            if event.explicit:
                site.explicit_checks += 1
            if not event.passed:
                site.check_failures += 1
        elif kind == "bounds_spill":
            site = self._site(event)
            if event.store:
                site.bounds_stores += 1
            else:
                site.bounds_loads += 1
        elif kind == "metadata_fetch":
            site = self._site(event)
            site.metadata_loads += event.loads
            site.metadata_cycles += event.cycles
        elif kind == "narrow":
            site = self._site(event)
            site.narrows += 1
            if event.result == "ok":
                site.narrow_success += 1
        elif kind == "mac_verify":
            self.mac_verifies += 1
            if not event.ok:
                self.mac_failures += 1
        elif kind == "scheme_assign":
            self.scheme_assignments[(event.region, event.scheme)] += 1
        elif kind == "alloc":
            self.alloc_actions[(event.allocator, event.action)] += 1
        elif kind == "trap":
            self.traps.append(event)

    # -- queries -------------------------------------------------------------

    def top_sites(self, count: int = 10,
                  key: str = "cycles") -> List[SiteStats]:
        """Hottest sites, by attributed ``cycles`` (default) or ``events``."""
        if key not in ("cycles", "events"):
            raise ValueError(f"unknown sort key {key!r}")
        ranked = sorted(self.sites.values(),
                        key=lambda s: (getattr(s, key), s.events),
                        reverse=True)
        return ranked[:count] if count > 0 else ranked

    def function_rollup(self) -> Dict[str, SiteStats]:
        """Aggregate all sites of each function into one pseudo-site."""
        rollup: Dict[str, SiteStats] = {}
        for site in self.sites.values():
            agg = rollup.get(site.function)
            if agg is None:
                agg = rollup[site.function] = SiteStats(site.function, -1)
            agg.promotes += site.promotes
            agg.promote_cycles += site.promote_cycles
            agg.checks += site.checks
            agg.check_failures += site.check_failures
            agg.explicit_checks += site.explicit_checks
            agg.bounds_loads += site.bounds_loads
            agg.bounds_stores += site.bounds_stores
            agg.metadata_loads += site.metadata_loads
            agg.metadata_cycles += site.metadata_cycles
            agg.narrows += site.narrows
            agg.narrow_success += site.narrow_success
            agg.by_scheme.update(site.by_scheme)
            agg.by_outcome.update(site.by_outcome)
        return rollup

    @property
    def total_promotes(self) -> int:
        return sum(s.promotes for s in self.sites.values())

    @property
    def total_checks(self) -> int:
        return sum(s.checks for s in self.sites.values())

    # -- reports -------------------------------------------------------------

    def report(self, top: int = 10, width: int = 78) -> str:
        """Flamegraph-style text report of the hottest sites."""
        lines: List[str] = []
        sites = self.top_sites(top)
        if not sites:
            return "no observability events recorded"
        peak = max(s.cycles for s in sites) or 1
        bar_width = max(8, width - 64)  # bars end inside the clamp
        lines.append(f"hot sites (top {len(sites)} by attributed cycles)")
        lines.append(f"  {'site':28s} {'cycles':>9s} {'prom':>7s} "
                     f"{'chk':>7s} {'bls':>5s}  profile")
        for site in sites:
            bar = "#" * max(1, round(site.cycles / peak * bar_width))
            lines.append(
                f"  {site.label:28s} {site.cycles:9d} {site.promotes:7d} "
                f"{site.checks:7d} "
                f"{site.bounds_loads + site.bounds_stores:5d}  {bar}")
            detail = self._site_detail(site)
            if detail:
                lines.append(f"  {'':28s} {detail}")
        rollup = sorted(self.function_rollup().values(),
                        key=lambda s: s.cycles, reverse=True)
        lines.append("")
        lines.append("per-function rollup")
        for agg in rollup[:top]:
            lines.append(
                f"  {agg.function:28s} cycles={agg.cycles:<9d} "
                f"promotes={agg.promotes:<7d} checks={agg.checks:<7d} "
                f"fails={agg.check_failures}")
        if self.scheme_assignments:
            lines.append("")
            lines.append("scheme assignments (region/scheme -> objects)")
            for (region, scheme), count in sorted(
                    self.scheme_assignments.items()):
                lines.append(f"  {region:8s} {scheme:14s} {count:7d}")
        if self.alloc_actions:
            lines.append("")
            lines.append("allocator decisions")
            for (allocator, action), count in sorted(
                    self.alloc_actions.items()):
                lines.append(f"  {allocator:12s} {action:12s} {count:7d}")
        return "\n".join(line[:width] if len(line) > width else line
                         for line in lines)

    @staticmethod
    def _site_detail(site: SiteStats) -> str:
        parts = []
        if site.by_scheme:
            parts.append("schemes: " + ", ".join(
                f"{scheme}={count}"
                for scheme, count in site.by_scheme.most_common()))
        if site.narrows:
            parts.append(f"narrow {site.narrow_success}/{site.narrows}")
        if site.check_failures:
            parts.append(f"{site.check_failures} check failures")
        return "; ".join(parts)

    def metrics(self, top: int = 10) -> dict:
        """Numeric-only nested dict, valid as schema-v1 ``metrics``."""
        return {
            "hot_sites": {s.label: s.cycles for s in self.top_sites(top)},
            "hot_site_promotes": {s.label: s.promotes
                                  for s in self.top_sites(top)},
            "scheme_assignments": {
                f"{region}/{scheme}": count
                for (region, scheme), count
                in sorted(self.scheme_assignments.items())},
            "alloc_actions": {
                f"{allocator}/{action}": count
                for (allocator, action), count
                in sorted(self.alloc_actions.items())},
            "sites_profiled": len(self.sites),
            "total_promotes": self.total_promotes,
            "total_checks": self.total_checks,
            "mac_verifies": self.mac_verifies,
            "mac_failures": self.mac_failures,
            "traps": len(self.traps),
        }

    def to_dict(self, top: int = 25) -> dict:
        return {
            "sites": [s.to_dict() for s in self.top_sites(top)],
            "functions": {name: agg.to_dict()
                          for name, agg in self.function_rollup().items()},
            "scheme_assignments": {
                f"{region}/{scheme}": count
                for (region, scheme), count
                in sorted(self.scheme_assignments.items())},
            "alloc_actions": {
                f"{allocator}/{action}": count
                for (allocator, action), count
                in sorted(self.alloc_actions.items())},
            "mac_verifies": self.mac_verifies,
            "mac_failures": self.mac_failures,
            "traps": len(self.traps),
        }
