"""The observer: one object bundling bus, profiler, and forensics.

A :class:`Machine` carries ``machine.obs`` (default ``None``); every
instrumented site in the interpreter, the IFP unit, and the runtime
allocators guards its emission with a single ``obs is not None`` test,
so the disabled path costs one pointer comparison and allocates nothing.

:func:`attach_observer` wires an observer into a machine before ``run``:
it subscribes the requested sinks, mirrors itself onto the IFP unit (so
metadata/MAC/narrow events flow without a machine back-reference), and —
when forensics is requested — attaches a small instruction tracer so
trap reports include the last executed instructions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.obs.events import (
    AllocEvent, DegradeEvent, Event, EventBus, FaultEvent, MacVerifyEvent,
    MetadataFetchEvent, NarrowEvent, SchemeAssignEvent, TrapEvent,
)
from repro.obs.forensics import ForensicsReport, capture_forensics
from repro.obs.profile import HotSiteProfiler

_SCHEME_NAMES = ("LEGACY", "LOCAL_OFFSET", "SUBHEAP", "GLOBAL_TABLE")


class Observer:
    """Aggregates observability state for one machine run."""

    def __init__(self, profile: bool = False, forensics: bool = False,
                 event_tail: int = 64,
                 sinks: Optional[List] = None) -> None:
        self.bus = EventBus()
        self.profiler: Optional[HotSiteProfiler] = None
        if profile:
            self.profiler = HotSiteProfiler()
            self.bus.subscribe(self.profiler.on_event)
        #: ring of the most recent events (feeds forensics reports)
        self.recent: Optional[Deque[Event]] = None
        if event_tail > 0:
            self.recent = deque(maxlen=event_tail)
            self.bus.subscribe(self.recent.append)
        for sink in sinks or ():
            self.bus.subscribe(sink)
        self.forensics_enabled = forensics
        self.reports: List[ForensicsReport] = []
        #: code site of the instruction currently observed, set by the
        #: interpreter so unit-level events inherit the attribution
        self.site: Optional[Tuple[str, int]] = None
        #: engine that produced the observed run ("fastpath" |
        #: "superblock" | "reference"), stamped by Machine.run; exporters label
        #: profiles/forensics/metrics with it
        self.engine: Optional[str] = None

    # -- generic emission ----------------------------------------------------

    def emit(self, event: Event) -> None:
        self.bus.emit(event)

    # -- helpers for instrumented sites (one-liners at the call site) -------

    def scheme_assigned(self, region: str, pointer: int, size: int,
                        layout_table: bool) -> None:
        scheme = _SCHEME_NAMES[(pointer >> 60) & 3]
        self.bus.emit(SchemeAssignEvent(self.site, region, scheme, size,
                                        layout_table))

    def alloc_decision(self, allocator: str, action: str, size: int,
                       address: int) -> None:
        self.bus.emit(AllocEvent(self.site, allocator, action, size,
                                 address))

    def metadata_fetch(self, scheme: str, loads: int, cycles: int,
                       hit: bool) -> None:
        self.bus.emit(MetadataFetchEvent(self.site, scheme, loads,
                                         cycles, hit))

    def mac_verify(self, scheme: str, ok: bool) -> None:
        self.bus.emit(MacVerifyEvent(self.site, scheme, ok))

    def narrow(self, result: str) -> None:
        self.bus.emit(NarrowEvent(self.site, result))

    def degrade(self, resource: str, action: str, size: int,
                address: int) -> None:
        self.bus.emit(DegradeEvent(self.site, resource, action, size,
                                   address))

    def fault_injected(self, fault: str, target: str, detail: str) -> None:
        self.bus.emit(FaultEvent(self.site, fault, target, detail))

    # -- trap hook (called by Machine.run) -----------------------------------

    def on_trap(self, machine, trap) -> Optional[ForensicsReport]:
        self.bus.emit(TrapEvent(
            trap.pc if isinstance(trap.pc, tuple) else None,
            type(trap).__name__, str(trap),
            getattr(trap, "pointer", None)))
        if not self.forensics_enabled:
            return None
        report = capture_forensics(machine, trap)
        self.reports.append(report)
        return report

    @property
    def last_report(self) -> Optional[ForensicsReport]:
        return self.reports[-1] if self.reports else None


def attach_observer(machine, profile: bool = True, forensics: bool = True,
                    event_tail: int = 64,
                    tracer_capacity: int = 256) -> Observer:
    """Create an observer and wire it into ``machine`` (before ``run``)."""
    obs = Observer(profile=profile, forensics=forensics,
                   event_tail=event_tail)
    machine.obs = obs
    machine.ifp.obs = obs
    if forensics and machine.tracer is None and tracer_capacity > 0:
        from repro.debug.trace import attach_tracer
        attach_tracer(machine, capacity=tracer_capacity)
    return obs
