"""Trap forensics: turn a memory-safety trap into a diagnosis report.

When an observed run ends in a :class:`~repro.errors.SimTrap`, this
module captures everything the machine still knows at delivery time —
the faulting site, the offending pointer's full tag anatomy (scheme,
poison, payload fields, dry-run promote via :mod:`repro.debug.anatomy`),
the bounds that tripped the check, a compact :class:`RunStats` snapshot,
the last K :class:`~repro.debug.trace.Tracer` events, and the most
recent observability events — and renders a self-contained report.

The fuzz driver writes these next to minimized corpus entries so a
failure ships with its own diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import BoundsTrap, PoisonTrap, SimTrap, TemporalViolation


@dataclass
class ForensicsReport:
    """One diagnosed trap, self-contained and renderable."""

    trap_type: str
    message: str
    pc: Optional[Tuple[str, int]] = None
    pointer: Optional[int] = None
    scheme: Optional[str] = None
    poison: Optional[str] = None
    tag_fields: dict = field(default_factory=dict)
    #: (lower, upper) of the bounds that tripped the check, if any
    bounds: Optional[Tuple[int, int]] = None
    metadata_path: Optional[str] = None
    promote_outcome: Optional[str] = None
    anatomy_text: Optional[str] = None
    stats_snapshot: str = ""
    trace_tail: List[str] = field(default_factory=list)
    recent_events: List[str] = field(default_factory=list)
    #: correlation ids (tenant/job/shard/seed dict) when the trapping
    #: run belonged to a correlated campaign (repro.par / repro.serve)
    context: Optional[dict] = None

    def render(self) -> str:
        lines = ["=== trap forensics ==="]
        lines.append(f"trap      : {self.trap_type}: {self.message}")
        if self.context:
            ids = " ".join(f"{key}={value}"
                           for key, value in self.context.items()
                           if value is not None)
            lines.append(f"context   : {ids}")
        if self.pc is not None:
            lines.append(f"site      : {self.pc[0]}:{self.pc[1]}")
        if self.pointer is not None:
            lines.append(f"pointer   : 0x{self.pointer:016x}")
        if self.scheme is not None:
            lines.append(f"scheme    : {self.scheme}")
        if self.poison is not None:
            lines.append(f"poison    : {self.poison}")
        for name, value in self.tag_fields.items():
            lines.append(f"tag field : {name} = {value}")
        if self.bounds is not None:
            lower, upper = self.bounds
            lines.append(f"bounds    : [0x{lower:x}, 0x{upper:x}) "
                         f"({upper - lower} bytes)")
        if self.metadata_path is not None:
            lines.append(f"metadata  : {self.metadata_path}")
        if self.promote_outcome is not None:
            lines.append(f"promote   : {self.promote_outcome}")
        if self.anatomy_text:
            lines.append("--- pointer anatomy ---")
            lines.append(self.anatomy_text)
        if self.stats_snapshot:
            lines.append(f"stats     : {self.stats_snapshot}")
        if self.recent_events:
            lines.append(f"--- last {len(self.recent_events)} "
                         "observability events ---")
            lines.extend(self.recent_events)
        if self.trace_tail:
            lines.append(f"--- last {len(self.trace_tail)} "
                         "traced instructions ---")
            lines.extend(self.trace_tail)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "trap_type": self.trap_type, "message": self.message,
            "pc": list(self.pc) if self.pc else None,
            "pointer": self.pointer, "scheme": self.scheme,
            "poison": self.poison, "tag_fields": dict(self.tag_fields),
            "bounds": list(self.bounds) if self.bounds else None,
            "metadata_path": self.metadata_path,
            "promote_outcome": self.promote_outcome,
            "stats_snapshot": self.stats_snapshot,
            "trace_tail": list(self.trace_tail),
            "recent_events": list(self.recent_events),
            "context": dict(self.context) if self.context else None,
        }

    def write(self, path: str) -> str:
        with open(path, "w") as handle:
            handle.write(self.render() + "\n")
        return path


#: temporal violation kind -> one-line lock-state diagnosis
_TEMPORAL_VERDICTS = {
    "stale_key": ("lock is LIVE with a different key: the allocation "
                  "was freed and its base reused; this pointer belongs "
                  "to the previous incarnation"),
    "freed_lock": ("lock is DEAD: the allocation was freed and never "
                   "reallocated (dangling-pointer dereference)"),
    "double_free": ("free through a pointer whose lock is already "
                    "dead (double free)"),
    "stale_free": ("free through a stale-generation pointer into a "
                   "reused allocation"),
}


def _temporal_anatomy(trap: TemporalViolation) -> str:
    """Render the lock-and-key anatomy of a temporal violation —
    the temporal counterpart of the spatial pointer anatomy."""
    lock_state = (f"{trap.lock} (live, mismatched)"
                  if trap.lock else "dead (no live lock)")
    verdict = _TEMPORAL_VERDICTS.get(trap.kind, trap.kind)
    return "\n".join([
        f"check origin  : {trap.origin or 'unknown'}",
        f"allocation    : base 0x{trap.address:x}",
        f"pointer key   : {trap.key}",
        f"registry lock : {lock_state}",
        f"verdict       : {trap.kind} — {verdict}",
    ])


def _metadata_path(anatomy) -> str:
    """Describe the route promote took to this pointer's metadata."""
    if anatomy.granule_offset is not None:
        path = (f"local-offset record {anatomy.granule_offset} granules "
                f"({anatomy.granule_offset * 16} bytes) below the pointer")
    elif anatomy.register_index is not None:
        path = f"subheap control register {anatomy.register_index}"
    elif anatomy.table_index is not None:
        path = f"global metadata table row {anatomy.table_index}"
    else:
        path = "no metadata (legacy pointer)"
    if anatomy.subobject_index:
        suffix = f"; layout-table walk to subobject #{anatomy.subobject_index}"
        if anatomy.narrowed:
            suffix += " (narrowed)"
        path += suffix
    return path


def capture_forensics(machine, trap: SimTrap,
                      trace_tail: int = 16,
                      event_tail: int = 16) -> ForensicsReport:
    """Build a report from a live machine that just delivered ``trap``.

    Must run before the machine is discarded: the dry-run promote in the
    pointer anatomy reads the guest's still-mapped metadata.
    """
    report = ForensicsReport(
        trap_type=type(trap).__name__, message=str(trap),
        pc=trap.pc if isinstance(trap.pc, tuple) else None,
        stats_snapshot=machine.stats.compact())
    if machine.obs is not None:
        # inherit the campaign correlation ids riding on the bus
        ambient = getattr(machine.obs.bus, "context", None)
        if ambient is not None:
            report.context = ambient.to_dict()

    pointer = getattr(trap, "pointer", None)
    if pointer is not None and isinstance(trap, (PoisonTrap, BoundsTrap)):
        from repro.debug.anatomy import explain_pointer
        anatomy = explain_pointer(machine, pointer)
        report.pointer = pointer
        report.scheme = anatomy.scheme
        report.poison = anatomy.poison
        report.tag_fields = {"payload": f"0x{anatomy.payload:03x}"}
        if anatomy.granule_offset is not None:
            report.tag_fields["granule_offset"] = anatomy.granule_offset
        if anatomy.register_index is not None:
            report.tag_fields["register_index"] = anatomy.register_index
        if anatomy.table_index is not None:
            report.tag_fields["table_index"] = anatomy.table_index
        if anatomy.subobject_index is not None:
            report.tag_fields["subobject_index"] = anatomy.subobject_index
        report.metadata_path = _metadata_path(anatomy)
        report.promote_outcome = anatomy.promote_outcome
        report.anatomy_text = anatomy.describe()
        if anatomy.bounds is not None:
            # For poison traps the dry-run promote recovers the (possibly
            # subobject-narrowed) bounds the pointer was checked against.
            report.bounds = (anatomy.bounds.lower, anatomy.bounds.upper)
    if isinstance(trap, BoundsTrap):
        report.bounds = (trap.lower, trap.upper)
    if isinstance(trap, TemporalViolation):
        # Temporal traps get the lock-and-key anatomy instead of the
        # spatial dry-run promote: what matters is the registry's view
        # of the allocation base, not the tag's bounds route.
        report.pointer = trap.pointer or report.pointer
        report.tag_fields = {"temporal_key": trap.key,
                             "lock": trap.lock,
                             "kind": trap.kind,
                             "origin": trap.origin}
        report.metadata_path = (f"temporal registry lock for base "
                                f"0x{trap.address:x}")
        report.anatomy_text = _temporal_anatomy(trap)

    tracer = machine.tracer
    if tracer is not None and trace_tail > 0:
        report.trace_tail = [str(e) for e in tracer.tail(trace_tail)]
    obs = machine.obs
    if obs is not None and obs.recent is not None and event_tail > 0:
        report.recent_events = [
            _format_event(e) for e in list(obs.recent)[-event_tail:]]
    return report


def _format_event(event) -> str:
    record = event.to_dict()
    site = record.pop("site", None)
    kind = record.pop("kind")
    where = f"{site[0]}:{site[1]} " if site else ""
    body = " ".join(f"{key}={value}" for key, value in record.items())
    return f"  {where}{kind} {body}"
