"""Typed observability events and the event bus they flow through.

Every instrumented site in the VM, the IFP unit, and the runtime
allocators describes what happened with one of the frozen dataclasses
below.  Events only exist when someone is listening: emit sites are
guarded by a single ``machine.obs is not None`` test (and, one level
down, :attr:`EventBus.enabled`), so a run without an observer allocates
nothing and pays one pointer comparison per instrumented operation.

Event classes mirror the paper's accounting categories:

==================  =====================================================
event               paper concept
==================  =====================================================
PromoteEvent        one ``promote`` execution (Figure 5; Figure 11's
                    "promote" instruction class)
CheckEvent          implicit load/store bounds check or explicit
                    ``ifpchk`` (the zero-/one-instruction check paths)
BoundsSpillEvent    ``ldbnd``/``stbnd`` (Figure 11's "bounds ls" class)
MetadataFetchEvent  the metadata port's memory traffic for one promote
MacVerifyEvent      MAC check over a metadata record (Section 4.3)
NarrowEvent         subobject bounds narrowing attempt (Figure 9)
SchemeAssignEvent   an object receiving its tag scheme at registration
                    (Table 4's per-kind object instrumentation)
AllocEvent          allocator decision (pool bump/reuse, fallback, free)
TrapEvent           a delivered memory-safety trap
==================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Callable, ClassVar, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceContext:
    """Correlation ids threading one campaign's telemetry end to end.

    Minted once per job by :mod:`repro.serve` (tenant + job id), refined
    per shard by the :mod:`repro.par` pool (shard id + shard seed), and
    stamped onto every event, forensics bundle, and metrics rollup the
    run produces — so a single VM-level trap can be joined back to the
    HTTP job that caused it.  All fields but ``tenant`` are optional:
    a batch CLI run has no job, a job-level event has no shard.
    """

    tenant: str
    job_id: Optional[str] = None
    shard_id: Optional[int] = None
    seed: Optional[int] = None

    def with_shard(self, shard_id: int, seed: int) -> "TraceContext":
        return replace(self, shard_id=shard_id, seed=seed)

    def to_dict(self) -> Dict[str, object]:
        return {"tenant": self.tenant, "job_id": self.job_id,
                "shard_id": self.shard_id, "seed": self.seed}

    def labels(self) -> Dict[str, str]:
        """Flat string labels (metrics documents, Prometheus)."""
        return {key: str(value)
                for key, value in self.to_dict().items()
                if value is not None}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceContext":
        return cls(tenant=data["tenant"], job_id=data.get("job_id"),
                   shard_id=data.get("shard_id"),
                   seed=data.get("seed"))


@dataclass(frozen=True)
class Event:
    """Base class: every event may carry a code site attribution."""

    kind: ClassVar[str] = "event"

    #: emitting code site, ``(function, instr_index)``; None when the
    #: event happened outside interpreted code (e.g. inside a builtin)
    site: Optional[Tuple[str, int]]

    #: correlation ids (tenant/job/shard/seed); stamped by the emitter
    #: or ambiently by :attr:`EventBus.context` — None for standalone
    #: runs, so serialized events only grow a ``ctx`` key when one is
    #: actually set
    ctx: Optional[TraceContext] = field(default=None, kw_only=True)

    def to_dict(self) -> dict:
        record = {"kind": self.kind}
        for f in fields(self):
            if f.name == "ctx":
                continue
            record[f.name] = getattr(self, f.name)
        if self.ctx is not None:
            record["ctx"] = self.ctx.to_dict()
        return record


@dataclass(frozen=True)
class PromoteEvent(Event):
    kind: ClassVar[str] = "promote"

    pointer: int        #: input pointer value
    scheme: str         #: tag scheme of the input pointer
    outcome: str        #: PromoteOutcome.value
    narrowed: bool      #: subobject narrowing succeeded
    cycles: int         #: full cost of this promote


@dataclass(frozen=True)
class CheckEvent(Event):
    kind: ClassVar[str] = "check"

    op: str             #: 'load' | 'store' | 'ifpchk'
    explicit: bool      #: True for ifpchk, False for the implicit path
    address: int        #: effective address checked
    size: int           #: access size in bytes
    passed: bool


@dataclass(frozen=True)
class BoundsSpillEvent(Event):
    kind: ClassVar[str] = "bounds_spill"

    store: bool         #: True for stbnd, False for ldbnd


@dataclass(frozen=True)
class MetadataFetchEvent(Event):
    kind: ClassVar[str] = "metadata_fetch"

    scheme: str         #: scheme whose lookup drove the traffic
    loads: int          #: metadata-port loads for this promote
    cycles: int         #: metadata-port cycles for this promote
    hit: bool           #: a valid metadata record was found


@dataclass(frozen=True)
class MacVerifyEvent(Event):
    kind: ClassVar[str] = "mac_verify"

    scheme: str
    ok: bool


@dataclass(frozen=True)
class NarrowEvent(Event):
    kind: ClassVar[str] = "narrow"

    #: 'ok' | 'no_layout_table' | 'walk_failure' | 'disabled'
    result: str


@dataclass(frozen=True)
class SchemeAssignEvent(Event):
    kind: ClassVar[str] = "scheme_assign"

    region: str         #: 'heap' | 'local' | 'global'
    scheme: str         #: tag scheme the object was given
    size: int
    layout_table: bool  #: object metadata references a layout table


@dataclass(frozen=True)
class AllocEvent(Event):
    kind: ClassVar[str] = "alloc"

    allocator: str      #: 'wrapped' | 'subheap' | 'global_table' | ...
    action: str         #: 'malloc' | 'free' | 'pool_bump' | 'fallback' ...
    size: int
    address: int


@dataclass(frozen=True)
class TrapEvent(Event):
    kind: ClassVar[str] = "trap"

    trap_type: str      #: exception class name (PoisonTrap, ...)
    message: str
    pointer: Optional[int]


@dataclass(frozen=True)
class DegradeEvent(Event):
    kind: ClassVar[str] = "degrade"

    #: exhausted resource: 'global_table' | 'subheap_registers'
    resource: str
    #: fallback taken: 'legacy_pointer' | 'global_table_fallback'
    action: str
    size: int           #: size of the allocation that was downgraded
    address: int        #: address handed out untagged (0 if none yet)


@dataclass(frozen=True)
class FaultEvent(Event):
    kind: ClassVar[str] = "fault"

    fault: str          #: fault class (repro.resil.faults.FAULT_CLASSES)
    target: str         #: perturbed object ('pointer', 'metadata', ...)
    detail: str         #: human-readable description of the perturbation


@dataclass(frozen=True)
class ShardStartEvent(Event):
    """A worker began executing one campaign shard (repro.par)."""

    kind: ClassVar[str] = "shard_start"

    shard_id: int
    worker: int         #: worker slot executing the shard
    attempt: int        #: 0-based execution attempt
    t: float            #: seconds since the pool started


@dataclass(frozen=True)
class ShardDoneEvent(Event):
    """One shard reached a terminal state for this attempt."""

    kind: ClassVar[str] = "shard_done"

    shard_id: int
    worker: int
    attempt: int
    t: float
    status: str         #: 'ok' | 'error' | 'timeout' | 'crash' | 'failed'
    seconds: float      #: wall-clock spent on this attempt


@dataclass(frozen=True)
class ShardRetryEvent(Event):
    """A failed-retryable shard was requeued with backoff."""

    kind: ClassVar[str] = "shard_retry"

    shard_id: int
    worker: int         #: worker whose attempt failed (-1 if unknown)
    attempt: int        #: the attempt that failed
    t: float
    reason: str         #: 'error' | 'timeout' | 'crash'
    delay: float        #: backoff before the shard re-enters the queue


@dataclass(frozen=True)
class StealEvent(Event):
    """A worker took a shard preferred to a different worker slot."""

    kind: ClassVar[str] = "steal"

    shard_id: int
    worker: int         #: the thief
    preferred: int      #: the slot the plan assigned the shard to
    t: float


@dataclass(frozen=True)
class JobEvent(Event):
    """A campaign-service job changed state (repro.serve)."""

    kind: ClassVar[str] = "job"

    job_id: str
    tenant: str
    campaign: str       #: plan kind ('fuzz' | 'resil' | 'juliet' | ...)
    #: 'queued' | 'running' | 'done' | 'failed' | 'cancelled' |
    #: 'requeued' (drained mid-run and parked for restart-resume)
    status: str
    t: float            #: seconds since the service started


@dataclass(frozen=True)
class QueueRejectEvent(Event):
    """A job submission bounced off service backpressure (repro.serve)."""

    kind: ClassVar[str] = "queue_reject"

    tenant: str
    reason: str         #: 'queue_full' | 'quota' | 'draining'
    t: float


@dataclass(frozen=True)
class ChaosEvent(Event):
    """The chaos harness injected one host fault (repro.resil.chaos)."""

    kind: ClassVar[str] = "chaos"

    fault: str          #: fault class (chaos.HOST_FAULT_CLASSES)
    op: str             #: persistence call site or 'dispatch'
    index: int          #: 0-based op index the schedule fired at
    detail: str         #: human-readable description (path, shard, …)


@dataclass(frozen=True)
class QuarantineEvent(Event):
    """A poison shard was dead-lettered instead of failing the
    campaign (repro.par)."""

    kind: ClassVar[str] = "quarantine"

    shard_id: int
    attempts: int       #: attempts burned before quarantine
    reason: str         #: 'error' | 'timeout' | 'crash'
    t: float
    detail: str


@dataclass(frozen=True)
class BreakerEvent(Event):
    """A tenant's circuit breaker changed state (repro.serve)."""

    kind: ClassVar[str] = "breaker"

    tenant: str
    state: str          #: 'closed' | 'open' | 'half_open'
    reason: str         #: what drove the transition
    t: float


EVENT_KINDS = tuple(cls.kind for cls in (
    PromoteEvent, CheckEvent, BoundsSpillEvent, MetadataFetchEvent,
    MacVerifyEvent, NarrowEvent, SchemeAssignEvent, AllocEvent, TrapEvent,
    DegradeEvent, FaultEvent, ShardStartEvent, ShardDoneEvent,
    ShardRetryEvent, StealEvent, JobEvent, QueueRejectEvent, ChaosEvent,
    QuarantineEvent, BreakerEvent))


class EventBus:
    """Fan-out of typed events to subscribed sinks.

    The disabled path is the common one: with no sinks, ``enabled`` is
    False and well-behaved emit sites never construct an event at all.
    ``emit`` itself also tolerates being called while disabled (it drops
    the event) so sinks can detach mid-run without racing emitters.

    ``context`` (when set) is an ambient :class:`TraceContext` stamped
    onto every event that doesn't already carry one, so emit sites deep
    in the VM stay ignorant of job/shard identity.
    """

    __slots__ = ("sinks", "enabled", "emitted", "context")

    def __init__(self) -> None:
        self.sinks: List[Callable[[Event], None]] = []
        self.enabled = False
        self.emitted = 0
        self.context: Optional[TraceContext] = None

    def subscribe(self, sink: Callable[[Event], None]) -> None:
        self.sinks.append(sink)
        self.enabled = True

    def unsubscribe(self, sink: Callable[[Event], None]) -> None:
        self.sinks.remove(sink)
        self.enabled = bool(self.sinks)

    def emit(self, event: Event) -> None:
        if not self.enabled:
            return
        if self.context is not None and event.ctx is None:
            event = replace(event, ctx=self.context)
        self.emitted += 1
        for sink in self.sinks:
            sink(event)
