"""Unified observability for the IFP pipeline: ``repro.obs``.

Four layers, each usable alone:

==============  ======================================================
module          role
==============  ======================================================
`events`        typed event definitions + the zero-cost-when-disabled
                event bus every instrumented site emits into
`profile`       hot-site profiler keyed by ``(function, instr_index)``
                with per-scheme breakdowns and a top-N text report
`forensics`     trap diagnosis: tag anatomy, tripping bounds, trace
                tail, recent events — rendered self-contained
`metrics`       stable JSON schema (+ Prometheus text format) for
                ``RunStats``/profiler export and ``BENCH_*.json``
==============  ======================================================

Typical use::

    from repro.obs import attach_observer
    machine = Machine(program)
    obs = attach_observer(machine, profile=True, forensics=True)
    result = machine.run()
    print(obs.profiler.report(top=10))
    if result.trap is not None:
        print(obs.last_report.render())

``python -m repro.obs report`` runs a workload with profiling and prints
the hot-site report; ``python -m repro.obs validate`` checks metrics
JSON against the schema.
"""

from repro.obs.events import (
    AllocEvent, BoundsSpillEvent, CheckEvent, DegradeEvent, Event,
    EventBus, FaultEvent, MacVerifyEvent, MetadataFetchEvent, NarrowEvent,
    PromoteEvent, SchemeAssignEvent, TraceContext, TrapEvent,
)
from repro.obs.forensics import ForensicsReport, capture_forensics
from repro.obs.metrics import (
    SCHEMA, SCHEMA_V2, load_metrics, metrics_document, stats_to_dict,
    to_prometheus, validate_document, write_bench, write_metrics,
)
from repro.obs.observer import Observer, attach_observer
from repro.obs.profile import HotSiteProfiler, SiteStats

__all__ = [
    "AllocEvent", "BoundsSpillEvent", "CheckEvent", "DegradeEvent",
    "Event", "EventBus", "FaultEvent",
    "ForensicsReport", "HotSiteProfiler", "MacVerifyEvent",
    "MetadataFetchEvent", "NarrowEvent", "Observer", "PromoteEvent",
    "SCHEMA", "SCHEMA_V2", "SchemeAssignEvent", "SiteStats",
    "TraceContext", "TrapEvent",
    "attach_observer", "capture_forensics", "load_metrics",
    "metrics_document", "stats_to_dict", "to_prometheus",
    "validate_document", "write_bench", "write_metrics",
]
