"""Metrics export: one stable JSON schema plus a Prometheus text form.

Everything the repo measures — harness runs, fuzzing campaigns, the
``BENCH_*.json`` perf trajectory — serializes through this module so
downstream tooling can rely on one shape::

    {
      "schema": "repro.obs.metrics/v1",
      "name": "<run or bench name>",
      "timestamp": <unix seconds, float>,
      "config": <str or flat dict describing the configuration>,
      "metrics": {<str>: <number> | {<str>: <number> | {...}}, ...}
    }

``metrics`` values are numbers or nested string-keyed dicts of numbers
(arbitrary depth); :func:`validate_document` enforces exactly that, and
:func:`to_prometheus` flattens the nesting with ``_`` joins into
``repro_<metric>{name=...,config=...} <value>`` exposition lines.

Schema v2 (``repro.obs.metrics/v2``) adds one optional top-level field,
``labels`` — a *flat* string-to-string mapping for identity that is not
a measurement: the engine that produced a run ("fastpath"/"superblock"/"reference")
and the :class:`~repro.obs.events.TraceContext` correlation ids
(tenant, job, shard, seed).  ``to_prometheus`` merges them into every
exposition line's label set.  v1 documents stay valid and are still
written wherever byte-stable comparison against historical artifacts
matters (the ``repro.par diff`` gates); :func:`validate_document`
accepts both versions.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import fields
from typing import Any, Dict, List, Optional, Union

SCHEMA = "repro.obs.metrics/v1"
SCHEMA_V2 = "repro.obs.metrics/v2"


# ---------------------------------------------------------------------------
# Converters
# ---------------------------------------------------------------------------

def stats_to_dict(stats) -> Dict[str, Any]:
    """Flatten a :class:`repro.vm.stats.RunStats` (plus its attached
    :class:`IFPUnitStats`) into schema-compatible metrics."""
    metrics: Dict[str, Any] = {}
    for f in fields(stats):
        value = getattr(stats, f.name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[f.name] = value
    metrics["total_instructions"] = stats.total_instructions
    metrics["new_instructions"] = stats.new_instructions
    if stats.ifp is not None:
        ifp: Dict[str, Any] = {}
        for f in fields(stats.ifp):
            value = getattr(stats.ifp, f.name)
            if isinstance(value, (int, float)):
                ifp[f.name] = value
        metrics["ifp"] = ifp
    return metrics


def metrics_document(name: str, config: Union[str, Dict[str, Any]],
                     metrics: Dict[str, Any],
                     timestamp: Optional[float] = None,
                     labels: Optional[Dict[str, str]] = None
                     ) -> Dict[str, Any]:
    """Assemble one metrics document (timestamp defaults to now).

    Without ``labels`` this is a byte-stable schema-v1 document;
    passing ``labels`` (engine, correlation ids) upgrades it to v2.
    """
    doc = {
        "schema": SCHEMA if labels is None else SCHEMA_V2,
        "name": name,
        "timestamp": time.time() if timestamp is None else timestamp,
        "config": config,
        "metrics": metrics,
    }
    if labels is not None:
        doc["labels"] = dict(labels)
    return doc


# ---------------------------------------------------------------------------
# Validation (hand-rolled: no jsonschema dependency in the container)
# ---------------------------------------------------------------------------

def _check_metrics(value: Any, path: str, errors: List[str]) -> None:
    if isinstance(value, bool) or not isinstance(
            value, (int, float, dict)):
        errors.append(f"{path}: expected number or mapping, "
                      f"got {type(value).__name__}")
        return
    if isinstance(value, dict):
        for key, nested in value.items():
            if not isinstance(key, str):
                errors.append(f"{path}: non-string key {key!r}")
                continue
            _check_metrics(nested, f"{path}.{key}", errors)


def validate_document(doc: Any) -> List[str]:
    """Return a list of schema violations; empty means valid."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"document: expected object, got {type(doc).__name__}"]
    schema = doc.get("schema")
    if schema not in (SCHEMA, SCHEMA_V2):
        errors.append(f"schema: expected {SCHEMA!r} or {SCHEMA_V2!r}, "
                      f"got {schema!r}")
    if not isinstance(doc.get("name"), str) or not doc.get("name"):
        errors.append("name: expected non-empty string")
    timestamp = doc.get("timestamp")
    if isinstance(timestamp, bool) or not isinstance(
            timestamp, (int, float)):
        errors.append("timestamp: expected number")
    config = doc.get("config")
    if not isinstance(config, (str, dict)):
        errors.append("config: expected string or object")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics: expected object")
    else:
        _check_metrics(metrics, "metrics", errors)
    allowed = {"schema", "name", "timestamp", "config", "metrics"}
    if schema == SCHEMA_V2:
        allowed.add("labels")
        labels = doc.get("labels", {})
        if not isinstance(labels, dict) or any(
                not isinstance(key, str) or not isinstance(value, str)
                for key, value in labels.items()):
            errors.append("labels: expected flat string-to-string "
                          "mapping")
    for key in doc:
        if key not in allowed:
            errors.append(f"{key}: unknown top-level field")
    return errors


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def write_metrics(path: str, doc: Dict[str, Any]) -> str:
    """Validate and write one document; returns the path."""
    errors = validate_document(doc)
    if errors:
        raise ValueError("invalid metrics document: " + "; ".join(errors))
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_metrics(path: str) -> Dict[str, Any]:
    """Load and validate one document."""
    with open(path) as handle:
        doc = json.load(handle)
    errors = validate_document(doc)
    if errors:
        raise ValueError(f"{path}: " + "; ".join(errors))
    return doc


def _flatten(metrics: Dict[str, Any], prefix: str = ""
             ) -> Dict[str, Union[int, float]]:
    flat: Dict[str, Union[int, float]] = {}
    for key, value in metrics.items():
        name = f"{prefix}_{key}" if prefix else key
        if isinstance(value, dict):
            flat.update(_flatten(value, name))
        else:
            flat[name] = value
    return flat


def _sanitize(label: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_"
                   for ch in label)


def to_prometheus(doc: Dict[str, Any]) -> str:
    """Render one document in Prometheus exposition text format.

    v2 documents' ``labels`` (engine/correlation) join the per-line
    label set after ``name`` and ``config``.
    """
    config = doc["config"]
    config_label = config if isinstance(config, str) \
        else ",".join(f"{k}={v}" for k, v in sorted(config.items()))
    pairs = [("name", doc["name"]), ("config", config_label)]
    pairs += sorted(doc.get("labels", {}).items())
    labels = "{" + ",".join(
        f'{_sanitize(key)}="{value}"' for key, value in pairs) + "}"
    lines: List[str] = []
    for key, value in sorted(_flatten(doc["metrics"]).items()):
        metric = f"repro_{_sanitize(key)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{labels} {value}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# BENCH_*.json trajectory
# ---------------------------------------------------------------------------

def bench_path(name: str, directory: Optional[str] = None) -> str:
    """Canonical location of one bench record: ``BENCH_<name>.json`` in
    ``directory``, ``$REPRO_BENCH_DIR``, or the working directory."""
    directory = directory or os.environ.get("REPRO_BENCH_DIR") or "."
    return os.path.join(directory, f"BENCH_{name}.json")


def write_bench(name: str, config: Union[str, Dict[str, Any]],
                metrics: Dict[str, Any],
                directory: Optional[str] = None) -> str:
    """Write one ``BENCH_<name>.json`` record; returns the path."""
    return write_metrics(bench_path(name, directory),
                         metrics_document(name, config, metrics))
