"""Parametric FPGA-area model (paper Section 5.3, Figure 13)."""

from repro.hwmodel.area import (
    AreaModel, Component, VANILLA_LUTS, VANILLA_FFS,
)

__all__ = ["AreaModel", "Component", "VANILLA_LUTS", "VANILLA_FFS"]
