"""FPGA LUT/FF cost model calibrated to the paper's Vivado reports.

Reported anchors (Section 5.3):

* vanilla CVA6: 37,088 LUTs / 21,993 FFs;
* modified:     59,261 LUTs / 32,545 FFs (+60 % LUTs, +48 % FFs);
* ~62 % of the LUT increase is in the execute stage — the IFP unit alone
  is 38 % and the load-store unit 19 %;
* the issue stage contributes 29 % (bounds register file, operand
  forwarding, extra writeback port);
* inside the IFP unit, the layout-table walker is 3,059 LUTs (36 %) and
  the three metadata schemes together 2,501 LUTs (30 %).

The model decomposes the growth into components carrying those anchors
and supports the paper's what-if analyses: dropping the bounds registers
(the single biggest contributor — the paper's advice for sub-30 % area
budgets), dropping the layout walker (object-granularity-only hardware),
or building fewer metadata schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Paper-reported vanilla CVA6 utilisation.
VANILLA_LUTS = 37_088
VANILLA_FFS = 21_993

#: Paper-reported modified totals.
MODIFIED_LUTS = 59_261
MODIFIED_FFS = 32_545

#: Total LUT growth implied by the anchors.
TOTAL_LUT_GROWTH = MODIFIED_LUTS - VANILLA_LUTS  # 22,173


@dataclass(frozen=True)
class Component:
    """One hardware component's vanilla size and IFP growth, in LUTs."""

    name: str
    stage: str
    vanilla: int
    growth: int


#: Growth decomposition calibrated to the reported percentages.
#: (IFP unit 8,433 = 38 %; LSU 4,551; issue total ≈ 29 %; remainder in
#: decode/control/cache plumbing.)
_COMPONENTS: Tuple[Component, ...] = (
    # execute stage
    Component("ifp_unit.layout_walker", "execute", 0, 3_059),
    Component("ifp_unit.scheme_local_offset", "execute", 0, 700),
    Component("ifp_unit.scheme_subheap", "execute", 0, 1_101),
    Component("ifp_unit.scheme_global_table", "execute", 0, 700),
    Component("ifp_unit.control", "execute", 0, 2_873),
    Component("load_store_unit", "execute", 9_028, 4_551),
    Component("execute.other", "execute", 6_030, 814),
    # issue stage
    Component("bounds_register_file", "issue", 0, 4_103),
    Component("operand_forwarding", "issue", 7_032, 1_205),
    Component("writeback_port", "issue", 2_500, 1_122),
    # everything else
    Component("frontend_decode", "frontend", 6_246, 980),
    Component("cache_subsystem", "cache", 4_201, 483),
    Component("control_registers", "other", 2_051, 482),
)

#: FF growth distributed proportionally to LUT growth.
_FF_GROWTH = MODIFIED_FFS - VANILLA_FFS


class AreaModel:
    """Compute total area under feature selections."""

    def __init__(self, bounds_registers: bool = True,
                 layout_walker: bool = True,
                 schemes: Tuple[str, ...] = ("local_offset", "subheap",
                                             "global_table")):
        self.bounds_registers = bounds_registers
        self.layout_walker = layout_walker
        self.schemes = tuple(schemes)

    # -- feature gating ---------------------------------------------------------

    def _included(self, component: Component) -> bool:
        name = component.name
        if name == "bounds_register_file":
            return self.bounds_registers
        if name == "ifp_unit.layout_walker":
            return self.layout_walker
        if name.startswith("ifp_unit.scheme_"):
            return name[len("ifp_unit.scheme_"):] in self.schemes
        return True

    # -- queries -------------------------------------------------------------------

    def components(self) -> List[Component]:
        return [c for c in _COMPONENTS if self._included(c)]

    def lut_growth(self) -> int:
        return sum(c.growth for c in self.components())

    def total_luts(self) -> int:
        return VANILLA_LUTS + self.lut_growth()

    def lut_overhead(self) -> float:
        """Fractional LUT increase over vanilla."""
        return self.lut_growth() / VANILLA_LUTS

    def ff_growth(self) -> int:
        """FF growth scaled with the included LUT growth."""
        full = sum(c.growth for c in _COMPONENTS)
        return round(_FF_GROWTH * self.lut_growth() / full)

    def ff_overhead(self) -> float:
        return self.ff_growth() / VANILLA_FFS

    def stage_breakdown(self) -> Dict[str, Tuple[int, int]]:
        """stage -> (vanilla LUTs, growth LUTs)."""
        out: Dict[str, List[int]] = {}
        for component in _COMPONENTS:
            vanilla, growth = out.setdefault(component.stage, [0, 0])
            out[component.stage][0] += component.vanilla
            if self._included(component):
                out[component.stage][1] += component.growth
        return {stage: (v, g) for stage, (v, g) in out.items()}

    def ifp_unit_luts(self) -> int:
        return sum(c.growth for c in self.components()
                   if c.name.startswith("ifp_unit"))

    # -- Figure 13 -------------------------------------------------------------------

    def figure13_rows(self) -> List[Tuple[str, str, int, int]]:
        """(component, stage, vanilla, growth) rows for the figure."""
        return [(c.name, c.stage, c.vanilla,
                 c.growth if self._included(c) else 0)
                for c in _COMPONENTS]

    def report(self) -> str:
        lines = [
            f"{'component':32s} {'stage':9s} {'vanilla':>8s} {'growth':>8s}",
        ]
        for name, stage, vanilla, growth in self.figure13_rows():
            lines.append(f"{name:32s} {stage:9s} {vanilla:8,d} {growth:8,d}")
        lines.append(
            f"TOTAL: {self.total_luts():,} LUTs "
            f"(+{self.lut_overhead() * 100:.0f}% over vanilla "
            f"{VANILLA_LUTS:,}); FFs +{self.ff_overhead() * 100:.0f}%")
        return "\n".join(lines)
