"""MPX-like defense: constants and notes.

Intel MPX keeps per-pointer bounds in bounds registers, checked by
(nearly free) ``bndcl``/``bndcu`` instructions, and spills them to an
in-memory *bounds table* indexed by the pointer's storage location
whenever a pointer round-trips through memory (``bndstx``/``bndldx`` —
the expensive part, and the dominant source of MPX's reported ~50 %
runtime and 1.9-2.1x memory overheads the paper quotes).

The reproduction models this inside the main code generator
(``CompilerOptions.mpx()``):

* allocation sites and address-taken objects create bounds with
  ``ifpbnd`` (playing ``bndmk``);
* pointer loads emit the table-index computation plus ``ldbnd``
  (``bndldx``); pointer stores emit the computation plus ``stbnd``
  (``bndstx``);
* dereferences reuse the machine's implicit bounds check (``bndcl`` +
  ``bndcu`` are single-cycle register checks);
* the flat bounds table lives at :data:`MPX_TABLE_BASE`, 16 bytes of
  bounds per 8-byte pointer slot (2x address-space ratio, like MPX's
  directory+table reaching the same asymptotics); table pages are
  allocated on first touch, modelling the kernel's on-demand BT
  allocation — which is exactly where MPX's memory overhead comes from.
"""

#: base of the flat bounds table (outside every application segment)
MPX_TABLE_BASE = 0x2_0000_0000

#: bytes of bounds stored per 8-byte pointer slot
MPX_ENTRY_BYTES = 16


def mpx_entry_address(location: int) -> int:
    """Bounds-table entry for a pointer stored at ``location``."""
    return MPX_TABLE_BASE + ((location >> 3) << 4)
