"""Comparison baselines: simplified ASan-like and MPX-like defenses.

The paper's Table 1 compares In-Fat Pointer qualitatively against the
memory-based (AddressSanitizer) and pointer-based shadow-metadata
(Intel MPX) families, and quotes their reported overheads (ASan-class
sanitizers ~2x; MPX 50 % runtime / 1.9-2.1x memory).  To make those
comparisons *measurable* on the same workloads and the same simulator,
this package implements the two families' core mechanisms:

* :mod:`repro.baselines.asan` — byte-granular shadow memory (1 shadow
  byte per 8 application bytes), heap redzones, a free quarantine, and
  inline shadow checks on every load/store, applied as an IR-to-IR pass
  over an uninstrumented compilation;
* MPX-like mode (``CompilerOptions.mpx()``) — per-pointer bounds kept in
  bounds registers, spilled to / reloaded from an in-memory bounds table
  indexed by the *pointer's location* on every pointer store/load
  (``bndstx``/``bndldx``), with compiler-known bounds created at
  allocation and address-taken sites (``bndmk``) — implemented inside
  the main code generator since it needs pointer-type information.

Both reuse the machine unchanged: ASan needs only ordinary loads/stores
plus a report builtin; MPX reuses the bounds-register file and the
implicit checking path (modelling the ~free ``bndcl``/``bndcu``).
"""

from repro.baselines.asan import (
    ASAN_SHADOW_BASE, apply_asan_pass, install_asan_runtime,
)

__all__ = ["ASAN_SHADOW_BASE", "apply_asan_pass", "install_asan_runtime"]
