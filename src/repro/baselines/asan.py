"""ASan-like defense: shadow memory + redzones + inline checks.

Faithful to AddressSanitizer's core design at the granularity this
simulator models:

* shadow mapping ``shadow(a) = SHADOW_BASE + (a >> 3)``;
* shadow byte semantics: ``0`` = all 8 bytes addressable, ``1..7`` =
  first *k* bytes addressable, ``>= 0x80`` = poisoned (redzone / freed);
* 16-byte redzones around every heap allocation; freed memory is
  poisoned and parked in a quarantine before reuse (the mechanism that
  gives ASan its probabilistic use-after-free detection);
* every application load/store is preceded by the inline check sequence
  (fast path: one shadow load + branch).

Implemented as an IR-to-IR pass over an *uninstrumented* compilation, so
it composes with nothing from the IFP machinery — exactly the separation
the paper's Table 1 taxonomy draws.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.compiler.ir import IRFunction, IRProgram, Instr, Op
from repro.errors import BoundsTrap
from repro.ifp.tag import address_of

#: shadow(a) = ASAN_SHADOW_BASE + (a >> 3); sized for the 2 GiB of
#: application address space the layout uses, placed far above it.
ASAN_SHADOW_BASE = 0x1_0000_0000
_SHADOW_SHIFT = 3

#: redzone bytes on each side of a heap allocation
REDZONE = 16
#: shadow poison values (ASan's encoding)
POISON_LEFT_RZ = 0xFA
POISON_RIGHT_RZ = 0xFB
POISON_FREED = 0xFD

#: bytes of freed memory held back before actual reuse
QUARANTINE_BYTES = 1 << 16

_ALLOC_REWRITES = {
    "malloc": "__asan_malloc",
    "calloc": "__asan_calloc",
    "realloc": "__asan_realloc",
    "free": "__asan_free",
}


# ---------------------------------------------------------------------------
# The instrumentation pass
# ---------------------------------------------------------------------------

def apply_asan_pass(program: IRProgram) -> IRProgram:
    """Insert shadow checks before every load/store; rewrite allocator
    calls.  Mutates and returns ``program``."""
    for function in program.functions.values():
        _instrument_function(function)
    program.defense = "asan"
    return program


def _instrument_function(function: IRFunction) -> None:
    original = function.instrs
    out: List[Instr] = []
    new_index: Dict[int, int] = {}
    original_branches: List[Instr] = []

    def reg() -> int:
        function.num_regs += 1
        return function.num_regs - 1

    for index, ins in enumerate(original):
        if ins.op in (Op.LOAD, Op.STORE):
            _emit_check(out, ins, reg)
        if ins.op == Op.CALL and ins.name in _ALLOC_REWRITES:
            ins.name = _ALLOC_REWRITES[ins.name]
        if ins.op in (Op.JMP, Op.BZ, Op.BNZ):
            original_branches.append(ins)
        new_index[index] = len(out)
        out.append(ins)

    for branch in original_branches:
        branch.target = new_index[branch.target]
    function.instrs = out


def _emit_check(out: List[Instr], access: Instr, reg) -> None:
    """The inline ASan check for one memory access.

    Fast path (shadow byte zero): 4 instructions + the shadow load.
    Slow path handles partial (1..7) shadow bytes; anything else reports.
    """
    size = access.size
    addr = reg()
    if access.imm:
        out.append(Instr(Op.BINI, dst=addr, a=access.a, imm=access.imm,
                         name="add"))
    else:
        out.append(Instr(Op.MV, dst=addr, a=access.a))
    shifted = reg()
    out.append(Instr(Op.BINI, dst=shifted, a=addr, imm=_SHADOW_SHIFT,
                     name="shr"))
    shadow_addr = reg()
    out.append(Instr(Op.BINI, dst=shadow_addr, a=shifted,
                     imm=ASAN_SHADOW_BASE, name="add"))
    shadow = reg()
    out.append(Instr(Op.LOAD, dst=shadow, a=shadow_addr, size=1))
    # Placeholder targets patched below once the block length is known.
    fast = Instr(Op.BZ, a=shadow)
    out.append(fast)
    low_bits = reg()
    out.append(Instr(Op.BINI, dst=low_bits, a=addr, imm=7, name="and"))
    last = reg()
    out.append(Instr(Op.BINI, dst=last, a=low_bits, imm=size - 1,
                     name="add"))
    in_partial = reg()
    out.append(Instr(Op.BIN, dst=in_partial, a=last, b=shadow, name="slt"))
    is_partial = reg()
    out.append(Instr(Op.BINI, dst=is_partial, a=shadow, imm=7, name="sle"))
    both = reg()
    out.append(Instr(Op.BIN, dst=both, a=in_partial, b=is_partial,
                     name="and"))
    slow = Instr(Op.BNZ, a=both)
    out.append(slow)
    out.append(Instr(Op.CALL, dst=-1, name="__asan_report", args=[addr]))
    after = len(out)
    fast.target = after
    slow.target = after


# ---------------------------------------------------------------------------
# Runtime support
# ---------------------------------------------------------------------------

def shadow_address(address: int) -> int:
    return ASAN_SHADOW_BASE + (address >> _SHADOW_SHIFT)


def poison_range(memory, start: int, size: int, value: int) -> None:
    """Poison ``[start, start + size)``; both 8-aligned in practice."""
    memory.fill(shadow_address(start), value, (size + 7) >> _SHADOW_SHIFT)


def unpoison_object(memory, start: int, size: int) -> None:
    """Mark an 8-aligned object of ``size`` bytes addressable, with the
    correct partial value in the final shadow byte."""
    full = size >> _SHADOW_SHIFT
    memory.fill(shadow_address(start), 0, full)
    partial = size & 7
    if partial:
        memory.store_int(shadow_address(start) + full, partial, 1)


def install_asan_runtime(machine) -> Dict[str, callable]:
    """Build the __asan_* builtins and map the shadow for the static
    segments (globals, stack, metadata table)."""
    memory = machine.memory
    layout = machine.layout

    def map_shadow_for(base: int, size: int) -> None:
        memory.map_range(shadow_address(base), (size >> _SHADOW_SHIFT) + 1)

    map_shadow_for(layout.globals_base,
                   machine.image.globals_end - layout.globals_base)
    map_shadow_for(layout.stack_limit, layout.stack_top - layout.stack_limit)

    quarantine = deque()
    state = {"quarantined_bytes": 0}
    machine.asan_quarantine = quarantine

    def asan_malloc(mach, args, bounds):
        size = max(args[0], 1)
        footprint = REDZONE + ((size + 7) & ~7) + REDZONE
        base, cycles, instrs = mach.freelist.malloc(footprint)
        if base == 0:
            return 0, None, cycles, instrs
        map_shadow_for(base, footprint)
        user = base + REDZONE
        poison_range(memory, base, REDZONE, POISON_LEFT_RZ)
        unpoison_object(memory, user, size)
        right = user + ((size + 7) & ~7)
        poison_range(memory, right, REDZONE, POISON_RIGHT_RZ)
        shadow_cycles = mach.hierarchy.access_cycles(
            shadow_address(base), footprint >> _SHADOW_SHIFT, True)
        extra = 14 + (footprint >> 6)
        mach.stats.heap_objects += 1
        return user, None, cycles + shadow_cycles + extra, instrs + extra

    def asan_free(mach, args, bounds):
        user = address_of(args[0])
        if user == 0:
            return 0, None, 2, 2
        base = user - REDZONE
        footprint = mach.freelist.usable_size(base)
        poison_range(memory, base, footprint, POISON_FREED)
        quarantine.append((base, footprint))
        state["quarantined_bytes"] += footprint
        instrs = 12 + (footprint >> 6)
        cycles = instrs + mach.hierarchy.access_cycles(
            shadow_address(base), footprint >> _SHADOW_SHIFT, True)
        # Drain the quarantine once it exceeds its budget.
        while state["quarantined_bytes"] > QUARANTINE_BYTES and quarantine:
            old_base, old_footprint = quarantine.popleft()
            state["quarantined_bytes"] -= old_footprint
            free_cycles, free_instrs = mach.freelist.free(old_base)
            cycles += free_cycles
            instrs += free_instrs
        mach.stats.heap_frees += 1
        return 0, None, cycles, instrs

    def asan_calloc(mach, args, bounds):
        total = args[0] * args[1]
        user, _b, cycles, instrs = asan_malloc(mach, [total], [None])
        if user:
            memory.fill(user, 0, total)
            cycles += mach.hierarchy.access_cycles(user, total, True)
            instrs += total >> 3
        return user, None, cycles, instrs

    def asan_realloc(mach, args, bounds):
        old_user = address_of(args[0])
        new_size = args[1]
        new_user, _b, cycles, instrs = asan_malloc(mach, [new_size], [None])
        if old_user and new_user:
            old_size = mach.freelist.usable_size(old_user - REDZONE) \
                - 2 * REDZONE
            count = max(min(old_size, new_size), 0)
            memory.copy(new_user, old_user, count)
            free_result = asan_free(mach, [old_user], [None])
            cycles += free_result[2] + (count >> 3)
            instrs += free_result[3] + (count >> 3)
        return new_user, None, cycles, instrs

    def asan_report(mach, args, bounds):
        address = args[0] if args else 0
        raise BoundsTrap(
            f"AddressSanitizer: invalid access at 0x{address:x}", address)

    return {
        "__asan_malloc": asan_malloc,
        "__asan_free": asan_free,
        "__asan_calloc": asan_calloc,
        "__asan_realloc": asan_realloc,
        "__asan_report": asan_report,
    }
