"""Memory-hierarchy cost model: turns cache hits/misses into cycles.

The model is deliberately simple — a single L1 data cache in front of a
flat-latency main memory — matching the CVA6 prototype's organisation
(the paper notes its FPGA core has "relatively small caches" and that IFP
"does not affect caches").  Metadata fetches issued by the IFP unit go
through the *same* L1D, which is exactly what produces the paper's
wrapped-vs-subheap cache effects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache import Cache


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and latency parameters.

    Latencies are in cycles.  ``hit_cycles`` is the additional cost beyond
    the base 1-cycle instruction cost; a hit therefore makes a load cost
    ``1 + hit_cycles`` total, a miss ``1 + hit_cycles + miss_penalty``.
    """

    l1d_size: int = 32 * 1024
    l1d_ways: int = 8
    l1d_line: int = 64
    hit_cycles: int = 1
    miss_penalty: int = 40

    def build(self) -> "CacheHierarchy":
        return CacheHierarchy(self)


class CacheHierarchy:
    """Owns the L1D model and converts accesses to cycle costs."""

    def __init__(self, config: HierarchyConfig = HierarchyConfig()):
        self.config = config
        self.l1d = Cache(config.l1d_size, config.l1d_ways,
                         config.l1d_line, name="L1D")
        # Hoisted latency constants — access_cycles is the hottest call in
        # the whole simulation, so skip the dataclass attribute chain.
        self._hit_cycles = config.hit_cycles
        self._miss_penalty = config.miss_penalty

    def access_cycles(self, address: int, size: int, write: bool) -> int:
        """Account one data access; return its cycle cost."""
        misses = self.l1d.access(address, size, write)
        return self._hit_cycles + misses * self._miss_penalty

    # -- stats passthrough --------------------------------------------------

    @property
    def l1d_misses(self) -> int:
        return self.l1d.stats.misses

    @property
    def l1d_accesses(self) -> int:
        return self.l1d.stats.accesses

    def reset(self) -> None:
        self.l1d.reset()
