"""Set-associative cache models and the memory-hierarchy cost model.

Used by the VM's load-store unit and by the IFP unit's metadata fetches to
attribute cycle costs, reproducing the paper's cache-behaviour analysis
(e.g. the wrapped allocator inflating L1 D-cache misses on *health*/*ft*).
"""

from repro.cache.cache import Cache, CacheStats
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig

__all__ = ["Cache", "CacheStats", "CacheHierarchy", "HierarchyConfig"]
