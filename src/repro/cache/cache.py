"""A classic set-associative cache model with true-LRU replacement.

Only hit/miss behaviour is modelled (no data storage — the backing
:class:`~repro.mem.Memory` holds the data); this is the standard approach
for trace-driven cache simulation and is all the evaluation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CacheStats:
    """Hit/miss counters, split by access kind."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0

    @property
    def accesses(self) -> int:
        return (self.read_hits + self.read_misses
                + self.write_hits + self.write_misses)

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self.read_hits = self.read_misses = 0
        self.write_hits = self.write_misses = 0


class Cache:
    """Set-associative, write-allocate, true-LRU cache.

    Geometry mirrors CVA6's L1 data cache by default: 32 KiB, 8-way,
    64-byte lines.
    """

    def __init__(self, size_bytes: int = 32 * 1024, ways: int = 8,
                 line_bytes: int = 64, name: str = "L1D"):
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        if size_bytes % (ways * line_bytes):
            raise ValueError("size must be a multiple of ways * line size")
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("derived set count must be a power of two")
        self._set_mask = self.num_sets - 1
        self._line_shift = line_bytes.bit_length() - 1
        # Per-set list of line tags, most-recently-used last.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # -- access -----------------------------------------------------------

    def access(self, address: int, size: int = 1, write: bool = False) -> int:
        """Touch ``[address, address + size)``; return the number of misses.

        Multi-line accesses (rare: misaligned or wide) touch each line.
        """
        first_line = address >> self._line_shift
        last_line = (address + max(size, 1) - 1) >> self._line_shift
        if first_line == last_line:
            # Fast path: the overwhelmingly common single-line access.
            cache_set = self._sets[first_line & self._set_mask]
            if cache_set and cache_set[-1] == first_line:
                # Already MRU — a hit with no recency reordering needed.
                hit = True
            else:
                hit = self._touch_line(first_line)
            stats = self.stats
            if hit:
                if write:
                    stats.write_hits += 1
                else:
                    stats.read_hits += 1
                return 0
            if write:
                stats.write_misses += 1
            else:
                stats.read_misses += 1
            return 1
        misses = 0
        for line in range(first_line, last_line + 1):
            if not self._touch_line(line):
                misses += 1
        if write:
            self.stats.write_misses += misses
            self.stats.write_hits += (last_line - first_line + 1) - misses
        else:
            self.stats.read_misses += misses
            self.stats.read_hits += (last_line - first_line + 1) - misses
        return misses

    def _touch_line(self, line: int) -> bool:
        """Touch one line; return True on hit."""
        cache_set = self._sets[line & self._set_mask]
        try:
            cache_set.remove(line)
        except ValueError:
            # Miss: allocate, evicting LRU if the set is full.
            if len(cache_set) >= self.ways:
                cache_set.pop(0)
            cache_set.append(line)
            return False
        cache_set.append(line)
        return True

    # -- maintenance ------------------------------------------------------

    def flush(self) -> None:
        """Invalidate all lines (stats are kept)."""
        for cache_set in self._sets:
            cache_set.clear()

    def reset(self) -> None:
        """Invalidate all lines and clear stats."""
        self.flush()
        self.stats.reset()

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)
