"""Exception hierarchy for the In-Fat Pointer reproduction.

Every failure mode in the simulated system maps to one of these exception
types.  Exceptions that model *architectural* traps (the kind the paper's
hardware would raise and the modified Linux kernel would deliver as a
segmentation fault) derive from :class:`SimTrap`; programming errors in the
host-side tooling (bad mini-C source, compiler misuse) derive from
:class:`ReproError`.
"""

from __future__ import annotations

from typing import Any, Dict

#: values that serialize to JSON unchanged
_JSON_SCALARS = (type(None), bool, int, float, str)


def _json_safe(value: Any) -> Any:
    """Project an attribute value into pure-JSON content.

    Nested :class:`ReproError` instances become tagged ``__error__``
    documents so they survive the round trip as typed errors (the
    ``WorkloadTrapped.trap`` case); tuples become lists (JSON has no
    tuple); anything else non-JSON is reduced to a tagged ``repr``
    string — lossy, but every API response stays serializable.
    """
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, ReproError):
        return {"__error__": value.to_dict()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return {"__repr__": repr(value)}


def _json_revive(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__error__"}:
            return ReproError.from_dict(value["__error__"])
        if set(value) == {"__repr__"}:
            return value["__repr__"]
        return {key: _json_revive(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_json_revive(item) for item in value]
    return value


def error_class(name: str) -> type:
    """Resolve an error class name anywhere under :class:`ReproError`.

    The registry is the live subclass tree, so classes defined outside
    this module (e.g. :class:`repro.par.checkpoint.CheckpointMismatch`)
    resolve as long as their module has been imported.
    """
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        if cls.__name__ == name:
            return cls
        stack.extend(cls.__subclasses__())
    raise ValueError(f"unknown error class {name!r}")


def _rebuild_error(cls, args, state):
    """Unpickle helper: rebuild without re-running ``cls.__init__``.

    Most exceptions in this hierarchy take richer constructor
    signatures than their ``args`` tuple (which holds only the rendered
    message), so the default ``Exception`` pickling — ``cls(*args)`` —
    either crashes on required parameters (``WorkloadTrapped``) or
    silently drops attributes (``MemoryFault.address``).  Rebuilding
    from ``__dict__`` restores every attribute exactly, which the
    ``repro.par`` worker pool relies on to ship typed failures across
    process boundaries.
    """
    exc = cls.__new__(cls)
    Exception.__init__(exc, *args)
    exc.__dict__.update(state)
    return exc


class ReproError(Exception):
    """Base class for all errors raised by this package."""

    def __reduce__(self):
        return (_rebuild_error,
                (type(self), self.args, dict(self.__dict__)))

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for API boundaries: type name, rendered message,
        and every instance attribute projected to JSON content.

        The contract (enforced hierarchy-wide by the serialization
        test): ``from_dict(json.loads(json.dumps(e.to_dict())))``
        rebuilds the same type with the same message, with JSON-scalar
        attributes and nested :class:`ReproError` attributes intact.
        """
        return {
            "type": type(self).__name__,
            "message": str(self.args[0]) if self.args else str(self),
            "fields": {key: _json_safe(value)
                       for key, value in self.__dict__.items()},
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ReproError":
        """Rebuild a typed error from its :meth:`to_dict` form.

        Like :func:`_rebuild_error`, construction bypasses
        ``__init__`` (whose signatures vary across the hierarchy) and
        restores attributes directly.
        """
        cls = error_class(data["type"])
        exc = cls.__new__(cls)
        Exception.__init__(exc, data.get("message", ""))
        for key, value in data.get("fields", {}).items():
            setattr(exc, key, _json_revive(value))
        return exc


# ---------------------------------------------------------------------------
# Host-side (tooling) errors
# ---------------------------------------------------------------------------

class SourceError(ReproError):
    """Error in mini-C source code (lexing, parsing, or type checking).

    Carries an optional ``line``/``col`` for diagnostics.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0):
        if line:
            message = f"{line}:{col}: {message}"
        super().__init__(message)
        self.line = line
        self.col = col


class LexError(SourceError):
    """Invalid token in mini-C source."""


class ParseError(SourceError):
    """Syntax error in mini-C source."""


class TypeError_(SourceError):
    """Semantic / type error in mini-C source.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class CompileError(ReproError):
    """Internal error while lowering or instrumenting a program."""


class LinkError(ReproError):
    """Error resolving symbols when assembling the final program image."""


# ---------------------------------------------------------------------------
# Architectural traps (simulated hardware exceptions)
# ---------------------------------------------------------------------------

class SimTrap(ReproError):
    """A trap raised by the simulated machine.

    ``pc`` identifies the faulting instruction (function, index) when known.
    """

    def __init__(self, message: str, pc: object = None):
        super().__init__(message)
        self.pc = pc


class MemoryFault(SimTrap):
    """Access to unmapped or otherwise invalid simulated memory (page fault)."""

    def __init__(self, message: str, address: int = 0, pc: object = None):
        super().__init__(message, pc)
        self.address = address


class PoisonTrap(SimTrap):
    """Load/store through a pointer whose poison bits are not 'valid'.

    This is the trap that signals a detected spatial memory-safety
    violation: In-Fat Pointer poisons the pointer when a bounds check fails
    and standard loads/stores trap on poisoned pointers.
    """

    def __init__(self, message: str, pointer: int = 0, pc: object = None):
        super().__init__(message, pc)
        self.pointer = pointer


class BoundsTrap(SimTrap):
    """Explicit bounds-check (``ifpchk``) failure configured to trap."""

    def __init__(self, message: str, pointer: int = 0,
                 lower: int = 0, upper: int = 0, pc: object = None):
        super().__init__(message, pc)
        self.pointer = pointer
        self.lower = lower
        self.upper = upper


class MetadataError(SimTrap):
    """Invalid or tampered object metadata discovered during promote.

    Raised when a MAC check fails or a metadata encoding is malformed in a
    way the hardware is specified to trap on (rather than poison).
    """


class SyscallError(SimTrap):
    """Invalid syscall or syscall arguments from the guest program."""


class StepBudgetExceeded(SimTrap):
    """The interpreter's instruction step-budget ran out.

    This is the watchdog that turns a runaway guest (infinite loop,
    pathological input) into a deterministic trap instead of an unbounded
    simulation.  ``executed`` is the number of instructions retired when
    the budget tripped.
    """

    def __init__(self, message: str, executed: int = 0, limit: int = 0,
                 pc: object = None):
        super().__init__(message, pc)
        self.executed = executed
        self.limit = limit


class InvalidFree(SimTrap):
    """A free-path violation detected by a runtime allocator.

    ``kind`` distinguishes the failure modes the allocators can tell
    apart: ``double_free`` (the chunk/slot is already free),
    ``unknown_pointer`` (the address belongs to no live allocation of
    this allocator), and ``interior_pointer`` (the address lies inside
    an allocation but is not its start).  ``allocator`` names the
    allocator that rejected the free so the trap message carries full
    context without a debugger.
    """

    def __init__(self, message: str, address: int = 0,
                 allocator: str = "", kind: str = "unknown_pointer",
                 pc: object = None):
        super().__init__(message, pc)
        self.address = address
        self.allocator = allocator
        self.kind = kind


class TemporalViolation(SimTrap):
    """A lock-and-key temporal memory-safety violation.

    Raised when the generation key carried in a pointer's tag bits no
    longer matches the lock registered for its allocation base in the
    :class:`repro.temporal.TemporalRegistry` — the signature of a
    use-after-free, double free, or stale post-``realloc`` pointer.
    Distinct from the spatial traps (:class:`PoisonTrap` /
    :class:`BoundsTrap`) and from :class:`InvalidFree` (the allocators'
    structural free-path check): this trap fires on *temporal* identity,
    which structural checks cannot see once an address is reused.

    ``kind`` is the forensics anatomy:

    * ``stale_key`` — the lock is live but holds a different key: the
      allocation was freed and its address reused, and this pointer
      belongs to the *previous* incarnation;
    * ``freed_lock`` — the lock is dead: the allocation was freed and
      not reallocated (the classic dangling-pointer dereference);
    * ``double_free`` — a free through a pointer whose lock is already
      dead;
    * ``stale_free`` — a free through a stale-generation pointer into a
      reused allocation.

    ``origin`` names the check site (``promote`` / ``load`` / ``store``
    / ``free`` / ``realloc``); ``key`` is the pointer's tag key;
    ``lock`` the registry's current key (0 when the lock is dead or the
    entry missing); ``address`` the allocation base probed.
    """

    def __init__(self, message: str, pointer: int = 0, address: int = 0,
                 key: int = 0, lock: int = 0, kind: str = "stale_key",
                 origin: str = "", pc: object = None):
        super().__init__(message, pc)
        self.pointer = pointer
        self.address = address
        self.key = key
        self.lock = lock
        self.kind = kind
        self.origin = origin


# ---------------------------------------------------------------------------
# Evaluation-harness errors (differential running of one program under
# several configurations)
# ---------------------------------------------------------------------------

class HarnessError(ReproError):
    """A workload/configuration sweep did not behave as required.

    These are *host-side* verdicts about guest executions: a configuration
    trapped where it must not, produced the wrong answer, or disagreed
    with its siblings.  They carry enough structure for the fuzzing oracle
    to distinguish the failure modes.
    """


def _stats_suffix(stats) -> str:
    """Render an optional RunStats into a message fragment."""
    return f" [{stats.compact()}]" if stats is not None else ""


class WorkloadTrapped(HarnessError):
    """An execution that was required to run clean ended in a trap.

    ``trap`` is the underlying :class:`SimTrap`; ``workload`` and
    ``config`` identify the run.  ``stats`` (a ``RunStats``) and
    ``forensics_path`` (a written :class:`repro.obs.ForensicsReport`)
    enrich the message when the caller ran under observation.
    """

    def __init__(self, workload: str, config: str, trap: "SimTrap",
                 stats=None, forensics_path: str = ""):
        message = (f"{workload} [{config}] trapped: {trap}"
                   + _stats_suffix(stats))
        if forensics_path:
            message += f" (forensics: {forensics_path})"
        super().__init__(message)
        self.workload = workload
        self.config = config
        self.trap = trap
        self.stats = stats
        self.forensics_path = forensics_path


class UnexpectedOutput(HarnessError):
    """A run completed but its stdout fails the workload's sanity check."""

    def __init__(self, workload: str, config: str, output: str,
                 expected: str = "", stats=None):
        super().__init__(
            f"{workload} [{config}] produced unexpected output "
            f"{output!r}" + _stats_suffix(stats))
        self.workload = workload
        self.config = config
        self.output = output
        self.expected = expected
        self.stats = stats


class OutputDivergence(HarnessError):
    """Configurations of the same program computed different answers.

    ``outputs`` maps config name to its ``(output, exit_code)`` pair;
    ``stats`` optionally maps config name to that run's ``RunStats``.
    """

    def __init__(self, workload: str, outputs: dict, stats=None):
        rendered = ", ".join(
            f"{config}={pair!r}" for config, pair in sorted(outputs.items()))
        message = f"{workload}: configurations disagree: {rendered}"
        if stats:
            message += " [" + "; ".join(
                f"{config}: {run_stats.compact()}"
                for config, run_stats in sorted(stats.items())) + "]"
        super().__init__(message)
        self.workload = workload
        self.outputs = outputs
        self.stats = stats or {}


class WorkloadTimeout(HarnessError):
    """A run exceeded its wall-clock budget and was killed by the watchdog.

    Raised from inside the interpreter loop (which polls the machine's
    deadline every few thousand instructions) and re-raised by the
    harness enriched with workload/config identity.  Deliberately *not*
    a :class:`SimTrap`: a timeout is a verdict about the harness budget,
    not an architectural event, so ``Machine.run`` must not fold it into
    the trap-result path where it could be mistaken for a detection.
    """

    def __init__(self, message: str, workload: str = "", config: str = "",
                 seconds: float = 0.0, executed: int = 0, stats=None):
        super().__init__(message)
        self.workload = workload
        self.config = config
        self.seconds = seconds
        self.executed = executed
        self.stats = stats

    def with_context(self, workload: str, config: str) -> "WorkloadTimeout":
        """Re-wrap with run identity (used by the harness)."""
        return WorkloadTimeout(
            f"{workload} [{config}] {self.args[0]}", workload, config,
            self.seconds, self.executed, self.stats)


class GuestExit(ReproError):
    """Non-error control-flow exception: the guest called ``exit``.

    Not a :class:`SimTrap` because it is the normal way a guest program
    terminates; the VM catches it internally.
    """

    def __init__(self, code: int):
        super().__init__(f"guest exited with code {code}")
        self.code = code


class ResourceExhausted(SimTrap):
    """A fixed-size architectural resource overflowed.

    Examples: the global metadata table is full, or all 16 subheap control
    registers are in use.
    """


# ---------------------------------------------------------------------------
# Injected host faults (repro.resil.chaos) — typed so a chaos run's
# failures are distinguishable from real ones in every log and API
# response, yet shaped like the real thing to the code under test
# ---------------------------------------------------------------------------

class InjectedFault(ReproError):
    """Base class for faults the chaos harness injects on purpose.

    ``fault`` names the schedule's fault class, ``op`` the persistence
    call site it fired at, ``path`` the file involved — enough to join
    an observed failure back to the schedule decision that caused it.
    """

    def __init__(self, message: str, fault: str = "", op: str = "",
                 path: str = ""):
        super().__init__(message)
        self.fault = fault
        self.op = op
        self.path = path


class InjectedIOFault(InjectedFault, OSError):
    """An injected IO error (ENOSPC, EIO) raised from inside an atomic
    write.

    Deliberately *is* an :class:`OSError`: the hardening under test
    guards persistence with ``except OSError``, and an injection that
    bypassed those guards would be testing nothing.  ``errno_code``
    rides in ``__dict__`` (so it serializes); the C-level ``errno``
    slot is set too for code that switches on it.
    """

    def __init__(self, message: str, fault: str = "", op: str = "",
                 path: str = "", errno_code: int = 0):
        super().__init__(message, fault=fault, op=op, path=path)
        self.errno_code = errno_code
        self.errno = errno_code


class InjectedCrash(InjectedFault):
    """A simulated process death (torn write, worker kill).

    Deliberately *not* an :class:`OSError`: a crash must blow past the
    graceful IO-fault guards and abort the run, so the chaos campaign
    exercises the checkpoint-resume path rather than the
    degrade-in-place path.
    """


# ---------------------------------------------------------------------------
# Campaign-service errors (repro.serve) — every one of these can cross
# the HTTP API boundary, so each maps to a status code and round-trips
# through to_dict/from_dict
# ---------------------------------------------------------------------------

class ServiceError(ReproError):
    """Base class for errors the campaign service reports to clients.

    ``http_status`` is the response code the API layer uses; subclasses
    carrying ``retry_after`` additionally produce a ``Retry-After``
    header (the backpressure contract).
    """

    http_status = 500


class InvalidJobSpec(ServiceError):
    """A submitted job spec failed validation (unknown kind, bad or
    out-of-range parameter).  ``field`` names the offending entry."""

    http_status = 400

    def __init__(self, message: str, field: str = ""):
        if field:
            message = f"{field}: {message}"
        super().__init__(message)
        self.field = field


class UnknownJob(ServiceError):
    """A job id that does not exist in this service's store."""

    http_status = 404

    def __init__(self, job_id: str):
        super().__init__(f"no such job {job_id!r}")
        self.job_id = job_id


class JobNotCancellable(ServiceError):
    """DELETE on a job already in a terminal state."""

    http_status = 409

    def __init__(self, job_id: str, status: str):
        super().__init__(
            f"job {job_id!r} is {status}; only queued or running jobs "
            f"can be cancelled")
        self.job_id = job_id
        self.status = status


class QuotaExceeded(ServiceError):
    """A per-tenant admission limit was hit (429 + Retry-After)."""

    http_status = 429

    def __init__(self, message: str, tenant: str = "", limit: int = 0,
                 retry_after: float = 1.0):
        super().__init__(message)
        self.tenant = tenant
        self.limit = limit
        self.retry_after = retry_after


class QueueFull(QuotaExceeded):
    """A tenant's bounded submission queue is full — the backpressure
    signal; clients should honor ``Retry-After`` and resubmit."""

    def __init__(self, tenant: str, depth: int, limit: int,
                 retry_after: float = 1.0):
        super().__init__(
            f"tenant {tenant!r} queue is full ({depth}/{limit} jobs "
            f"queued); retry after {retry_after:g}s",
            tenant=tenant, limit=limit, retry_after=retry_after)
        self.depth = depth


class ServiceUnavailable(ServiceError):
    """The service is draining for shutdown and not accepting jobs."""

    http_status = 503

    def __init__(self, message: str = "service is draining",
                 retry_after: float = 5.0):
        super().__init__(message)
        self.retry_after = retry_after


class CircuitOpen(ServiceError):
    """A tenant's circuit breaker is open: recent jobs failed or
    quarantined shards, so submissions are rejected until the cooldown
    elapses (429 + Retry-After), then one probe job is admitted."""

    http_status = 429

    def __init__(self, tenant: str, retry_after: float = 1.0,
                 reason: str = ""):
        message = (f"tenant {tenant!r} circuit breaker is open; retry "
                   f"after {retry_after:g}s")
        if reason:
            message += f" ({reason})"
        super().__init__(message)
        self.tenant = tenant
        self.retry_after = retry_after
        self.reason = reason
