"""Exception hierarchy for the In-Fat Pointer reproduction.

Every failure mode in the simulated system maps to one of these exception
types.  Exceptions that model *architectural* traps (the kind the paper's
hardware would raise and the modified Linux kernel would deliver as a
segmentation fault) derive from :class:`SimTrap`; programming errors in the
host-side tooling (bad mini-C source, compiler misuse) derive from
:class:`ReproError`.
"""

from __future__ import annotations


def _rebuild_error(cls, args, state):
    """Unpickle helper: rebuild without re-running ``cls.__init__``.

    Most exceptions in this hierarchy take richer constructor
    signatures than their ``args`` tuple (which holds only the rendered
    message), so the default ``Exception`` pickling — ``cls(*args)`` —
    either crashes on required parameters (``WorkloadTrapped``) or
    silently drops attributes (``MemoryFault.address``).  Rebuilding
    from ``__dict__`` restores every attribute exactly, which the
    ``repro.par`` worker pool relies on to ship typed failures across
    process boundaries.
    """
    exc = cls.__new__(cls)
    Exception.__init__(exc, *args)
    exc.__dict__.update(state)
    return exc


class ReproError(Exception):
    """Base class for all errors raised by this package."""

    def __reduce__(self):
        return (_rebuild_error,
                (type(self), self.args, dict(self.__dict__)))


# ---------------------------------------------------------------------------
# Host-side (tooling) errors
# ---------------------------------------------------------------------------

class SourceError(ReproError):
    """Error in mini-C source code (lexing, parsing, or type checking).

    Carries an optional ``line``/``col`` for diagnostics.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0):
        if line:
            message = f"{line}:{col}: {message}"
        super().__init__(message)
        self.line = line
        self.col = col


class LexError(SourceError):
    """Invalid token in mini-C source."""


class ParseError(SourceError):
    """Syntax error in mini-C source."""


class TypeError_(SourceError):
    """Semantic / type error in mini-C source.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class CompileError(ReproError):
    """Internal error while lowering or instrumenting a program."""


class LinkError(ReproError):
    """Error resolving symbols when assembling the final program image."""


# ---------------------------------------------------------------------------
# Architectural traps (simulated hardware exceptions)
# ---------------------------------------------------------------------------

class SimTrap(ReproError):
    """A trap raised by the simulated machine.

    ``pc`` identifies the faulting instruction (function, index) when known.
    """

    def __init__(self, message: str, pc: object = None):
        super().__init__(message)
        self.pc = pc


class MemoryFault(SimTrap):
    """Access to unmapped or otherwise invalid simulated memory (page fault)."""

    def __init__(self, message: str, address: int = 0, pc: object = None):
        super().__init__(message, pc)
        self.address = address


class PoisonTrap(SimTrap):
    """Load/store through a pointer whose poison bits are not 'valid'.

    This is the trap that signals a detected spatial memory-safety
    violation: In-Fat Pointer poisons the pointer when a bounds check fails
    and standard loads/stores trap on poisoned pointers.
    """

    def __init__(self, message: str, pointer: int = 0, pc: object = None):
        super().__init__(message, pc)
        self.pointer = pointer


class BoundsTrap(SimTrap):
    """Explicit bounds-check (``ifpchk``) failure configured to trap."""

    def __init__(self, message: str, pointer: int = 0,
                 lower: int = 0, upper: int = 0, pc: object = None):
        super().__init__(message, pc)
        self.pointer = pointer
        self.lower = lower
        self.upper = upper


class MetadataError(SimTrap):
    """Invalid or tampered object metadata discovered during promote.

    Raised when a MAC check fails or a metadata encoding is malformed in a
    way the hardware is specified to trap on (rather than poison).
    """


class SyscallError(SimTrap):
    """Invalid syscall or syscall arguments from the guest program."""


class StepBudgetExceeded(SimTrap):
    """The interpreter's instruction step-budget ran out.

    This is the watchdog that turns a runaway guest (infinite loop,
    pathological input) into a deterministic trap instead of an unbounded
    simulation.  ``executed`` is the number of instructions retired when
    the budget tripped.
    """

    def __init__(self, message: str, executed: int = 0, limit: int = 0,
                 pc: object = None):
        super().__init__(message, pc)
        self.executed = executed
        self.limit = limit


class InvalidFree(SimTrap):
    """A free-path violation detected by a runtime allocator.

    ``kind`` distinguishes the failure modes the allocators can tell
    apart: ``double_free`` (the chunk/slot is already free),
    ``unknown_pointer`` (the address belongs to no live allocation of
    this allocator), and ``interior_pointer`` (the address lies inside
    an allocation but is not its start).  ``allocator`` names the
    allocator that rejected the free so the trap message carries full
    context without a debugger.
    """

    def __init__(self, message: str, address: int = 0,
                 allocator: str = "", kind: str = "unknown_pointer",
                 pc: object = None):
        super().__init__(message, pc)
        self.address = address
        self.allocator = allocator
        self.kind = kind


# ---------------------------------------------------------------------------
# Evaluation-harness errors (differential running of one program under
# several configurations)
# ---------------------------------------------------------------------------

class HarnessError(ReproError):
    """A workload/configuration sweep did not behave as required.

    These are *host-side* verdicts about guest executions: a configuration
    trapped where it must not, produced the wrong answer, or disagreed
    with its siblings.  They carry enough structure for the fuzzing oracle
    to distinguish the failure modes.
    """


def _stats_suffix(stats) -> str:
    """Render an optional RunStats into a message fragment."""
    return f" [{stats.compact()}]" if stats is not None else ""


class WorkloadTrapped(HarnessError):
    """An execution that was required to run clean ended in a trap.

    ``trap`` is the underlying :class:`SimTrap`; ``workload`` and
    ``config`` identify the run.  ``stats`` (a ``RunStats``) and
    ``forensics_path`` (a written :class:`repro.obs.ForensicsReport`)
    enrich the message when the caller ran under observation.
    """

    def __init__(self, workload: str, config: str, trap: "SimTrap",
                 stats=None, forensics_path: str = ""):
        message = (f"{workload} [{config}] trapped: {trap}"
                   + _stats_suffix(stats))
        if forensics_path:
            message += f" (forensics: {forensics_path})"
        super().__init__(message)
        self.workload = workload
        self.config = config
        self.trap = trap
        self.stats = stats
        self.forensics_path = forensics_path


class UnexpectedOutput(HarnessError):
    """A run completed but its stdout fails the workload's sanity check."""

    def __init__(self, workload: str, config: str, output: str,
                 expected: str = "", stats=None):
        super().__init__(
            f"{workload} [{config}] produced unexpected output "
            f"{output!r}" + _stats_suffix(stats))
        self.workload = workload
        self.config = config
        self.output = output
        self.expected = expected
        self.stats = stats


class OutputDivergence(HarnessError):
    """Configurations of the same program computed different answers.

    ``outputs`` maps config name to its ``(output, exit_code)`` pair;
    ``stats`` optionally maps config name to that run's ``RunStats``.
    """

    def __init__(self, workload: str, outputs: dict, stats=None):
        rendered = ", ".join(
            f"{config}={pair!r}" for config, pair in sorted(outputs.items()))
        message = f"{workload}: configurations disagree: {rendered}"
        if stats:
            message += " [" + "; ".join(
                f"{config}: {run_stats.compact()}"
                for config, run_stats in sorted(stats.items())) + "]"
        super().__init__(message)
        self.workload = workload
        self.outputs = outputs
        self.stats = stats or {}


class WorkloadTimeout(HarnessError):
    """A run exceeded its wall-clock budget and was killed by the watchdog.

    Raised from inside the interpreter loop (which polls the machine's
    deadline every few thousand instructions) and re-raised by the
    harness enriched with workload/config identity.  Deliberately *not*
    a :class:`SimTrap`: a timeout is a verdict about the harness budget,
    not an architectural event, so ``Machine.run`` must not fold it into
    the trap-result path where it could be mistaken for a detection.
    """

    def __init__(self, message: str, workload: str = "", config: str = "",
                 seconds: float = 0.0, executed: int = 0, stats=None):
        super().__init__(message)
        self.workload = workload
        self.config = config
        self.seconds = seconds
        self.executed = executed
        self.stats = stats

    def with_context(self, workload: str, config: str) -> "WorkloadTimeout":
        """Re-wrap with run identity (used by the harness)."""
        return WorkloadTimeout(
            f"{workload} [{config}] {self.args[0]}", workload, config,
            self.seconds, self.executed, self.stats)


class GuestExit(ReproError):
    """Non-error control-flow exception: the guest called ``exit``.

    Not a :class:`SimTrap` because it is the normal way a guest program
    terminates; the VM catches it internally.
    """

    def __init__(self, code: int):
        super().__init__(f"guest exited with code {code}")
        self.code = code


class ResourceExhausted(SimTrap):
    """A fixed-size architectural resource overflowed.

    Examples: the global metadata table is full, or all 16 subheap control
    registers are in use.
    """
