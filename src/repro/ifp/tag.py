"""Pointer-tag layout: pack/unpack the top 16 bits of a 64-bit pointer.

Bit layout (Figure 4 of the paper), from most to least significant:

====== ====== =========================================================
bits   width  field
====== ====== =========================================================
63..62   2    poison bits (:class:`~repro.ifp.poison.Poison`)
61..60   2    scheme selector (:class:`Scheme`)
59..48  12    scheme metadata + subobject index (scheme-dependent split)
47..0   48    canonical virtual address
====== ====== =========================================================

Scheme payload splits (prototype parameters):

* ``LOCAL_OFFSET``: ``payload[11:6]`` = granule offset to the appended
  metadata, ``payload[5:0]`` = subobject index.
* ``SUBHEAP``: ``payload[11:8]`` = control-register index,
  ``payload[7:0]`` = subobject index.
* ``GLOBAL_TABLE``: ``payload[11:0]`` = global metadata-table row index
  (no subobject index — the paper's prototype cannot narrow under this
  scheme).

The all-zero selector (``LEGACY``) is the canonical-address pattern, so
pointers produced by uninstrumented code naturally decode as legacy
pointers carrying no metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
import enum

from repro.ifp.config import IFPConfig, DEFAULT_CONFIG
from repro.ifp.poison import Poison
from repro.mem.layout import ADDRESS_MASK

#: Bit position where the tag starts.
TAG_SHIFT = 48
#: Width of the whole tag.
TAG_BITS = 16
#: 64-bit value mask.
U64_MASK = (1 << 64) - 1

_PAYLOAD_MASK = 0xFFF
_SELECTOR_SHIFT = 60
_POISON_SHIFT = 62


class Scheme(enum.IntEnum):
    """Two-bit scheme selector."""

    LEGACY = 0b00
    LOCAL_OFFSET = 0b01
    SUBHEAP = 0b10
    GLOBAL_TABLE = 0b11


@dataclass(frozen=True)
class PointerTag:
    """Decoded view of a pointer's 16 tag bits."""

    poison: Poison
    scheme: Scheme
    payload: int  # 12 bits, interpretation depends on scheme

    # -- scheme-specific payload views -------------------------------------

    def local_granule_offset(self, config: IFPConfig = DEFAULT_CONFIG) -> int:
        """Local offset scheme: offset (in granules) to the metadata."""
        return (self.payload >> config.local_subobj_bits) & (
            (1 << config.local_offset_bits) - 1)

    def local_subobject_index(self, config: IFPConfig = DEFAULT_CONFIG) -> int:
        return self.payload & (
            (1 << (config.local_subobj_bits - config.temporal_key_bits)) - 1)

    def subheap_register_index(self, config: IFPConfig = DEFAULT_CONFIG) -> int:
        return (self.payload >> config.subheap_subobj_bits) & (
            (1 << config.subheap_reg_bits) - 1)

    def subheap_subobject_index(self, config: IFPConfig = DEFAULT_CONFIG) -> int:
        return self.payload & (
            (1 << (config.subheap_subobj_bits - config.temporal_key_bits)) - 1)

    def global_table_index(self, config: IFPConfig = DEFAULT_CONFIG) -> int:
        return self.payload & (
            (1 << (config.global_index_bits - config.temporal_key_bits)) - 1)

    def temporal_key(self, config: IFPConfig = DEFAULT_CONFIG) -> int:
        """Generation key in the top ``temporal_key_bits`` of the scheme's
        subobject/index field (0 = untracked, or no key bits reserved)."""
        bits = config.temporal_key_bits
        if bits == 0 or self.scheme is Scheme.LEGACY:
            return 0
        if self.scheme is Scheme.LOCAL_OFFSET:
            width = config.local_subobj_bits
        elif self.scheme is Scheme.SUBHEAP:
            width = config.subheap_subobj_bits
        else:
            width = config.global_index_bits
        return (self.payload >> (width - bits)) & ((1 << bits) - 1)

    def with_temporal_key(self, key: int,
                          config: IFPConfig = DEFAULT_CONFIG) -> "PointerTag":
        """Return a tag with the generation-key bits replaced."""
        bits = config.temporal_key_bits
        if bits == 0:
            raise ValueError("no temporal key bits reserved in this config")
        if self.scheme is Scheme.LOCAL_OFFSET:
            width = config.local_subobj_bits
        elif self.scheme is Scheme.SUBHEAP:
            width = config.subheap_subobj_bits
        elif self.scheme is Scheme.GLOBAL_TABLE:
            width = config.global_index_bits
        else:
            raise ValueError("legacy pointers carry no temporal key")
        if key >> bits:
            raise ValueError(f"temporal key {key} exceeds {bits}-bit field")
        shift = width - bits
        mask = ((1 << bits) - 1) << shift
        payload = (self.payload & ~mask) | (key << shift)
        return PointerTag(self.poison, self.scheme, payload)

    def subobject_index(self, config: IFPConfig = DEFAULT_CONFIG) -> int:
        """The subobject index under whichever scheme is selected (0 when
        the scheme has none)."""
        if self.scheme is Scheme.LOCAL_OFFSET:
            return self.local_subobject_index(config)
        if self.scheme is Scheme.SUBHEAP:
            return self.subheap_subobject_index(config)
        return 0

    def with_subobject_index(self, index: int,
                             config: IFPConfig = DEFAULT_CONFIG) -> "PointerTag":
        """Return a tag with the subobject-index field replaced (``ifpidx``)."""
        if self.scheme is Scheme.LOCAL_OFFSET:
            width = config.local_subobj_bits
        elif self.scheme is Scheme.SUBHEAP:
            width = config.subheap_subobj_bits
        else:
            raise ValueError(f"scheme {self.scheme.name} has no subobject index")
        width -= config.temporal_key_bits
        mask = (1 << width) - 1
        if index > mask:
            raise ValueError(
                f"subobject index {index} exceeds {width}-bit field")
        payload = (self.payload & ~mask) | (index & mask)
        return PointerTag(self.poison, self.scheme, payload)

    def with_poison(self, poison: Poison) -> "PointerTag":
        return PointerTag(poison, self.scheme, self.payload)

    # -- encoding -----------------------------------------------------------

    def encode(self) -> int:
        """Pack into a 16-bit tag value."""
        return ((int(self.poison) << 14) | (int(self.scheme) << 12)
                | (self.payload & _PAYLOAD_MASK))


# ---------------------------------------------------------------------------
# Module-level helpers operating directly on 64-bit pointer values.  These
# are in the interpreter's hot path, hence plain functions.
# ---------------------------------------------------------------------------

def pack_pointer(address: int, tag: PointerTag) -> int:
    """Combine a 48-bit address and a decoded tag into a 64-bit pointer."""
    return ((tag.encode() << TAG_SHIFT) | (address & ADDRESS_MASK)) & U64_MASK


#: decoded-tag memo: PointerTag is frozen and depends only on the 16 tag
#: bits, so each distinct tag value decodes once (bounded at 65536)
_TAG_CACHE: dict = {}


def unpack_tag(pointer: int) -> PointerTag:
    """Decode the tag fields of a 64-bit pointer."""
    tag_bits = (pointer >> TAG_SHIFT) & 0xFFFF
    tag = _TAG_CACHE.get(tag_bits)
    if tag is None:
        tag = _TAG_CACHE[tag_bits] = PointerTag(
            poison=Poison.from_bits(tag_bits >> 14),
            scheme=Scheme((tag_bits >> 12) & 0b11),
            payload=tag_bits & _PAYLOAD_MASK,
        )
    return tag


def address_of(pointer: int) -> int:
    """The 48-bit canonical address portion of a pointer."""
    return pointer & ADDRESS_MASK


def strip_tag(pointer: int) -> int:
    """Drop the whole tag — what ``ifpextract`` (demote) produces."""
    return pointer & ADDRESS_MASK


def with_tag(pointer: int, tag: PointerTag) -> int:
    """Replace the tag of ``pointer`` while keeping its address."""
    return pack_pointer(address_of(pointer), tag)


def with_poison(pointer: int, poison: Poison) -> int:
    """Replace only the poison bits of a 64-bit pointer."""
    cleared = pointer & ~(0b11 << _POISON_SHIFT)
    return (cleared | (int(poison) << _POISON_SHIFT)) & U64_MASK


def poison_of(pointer: int) -> Poison:
    return Poison.from_bits(pointer >> _POISON_SHIFT)


def scheme_of(pointer: int) -> Scheme:
    return Scheme((pointer >> _SELECTOR_SHIFT) & 0b11)


def is_legacy(pointer: int) -> bool:
    """True when the pointer carries no metadata (legacy / canonical)."""
    return scheme_of(pointer) is Scheme.LEGACY


def _temporal_field_width(scheme: int, config: IFPConfig) -> int:
    """Width of the subobject/index field the key bits are stolen from."""
    if scheme == Scheme.LOCAL_OFFSET:
        return config.local_subobj_bits
    if scheme == Scheme.SUBHEAP:
        return config.subheap_subobj_bits
    return config.global_index_bits


def temporal_key_of(pointer: int, config: IFPConfig = DEFAULT_CONFIG) -> int:
    """Generation key of a packed pointer (0 = untracked/legacy)."""
    bits = config.temporal_key_bits
    if bits == 0:
        return 0
    scheme = (pointer >> _SELECTOR_SHIFT) & 0b11
    if scheme == 0:
        return 0
    shift = TAG_SHIFT + _temporal_field_width(scheme, config) - bits
    return (pointer >> shift) & ((1 << bits) - 1)


def with_temporal_key(pointer: int, key: int,
                      config: IFPConfig = DEFAULT_CONFIG) -> int:
    """Stamp the generation key into a packed pointer's tag bits."""
    bits = config.temporal_key_bits
    scheme = (pointer >> _SELECTOR_SHIFT) & 0b11
    if bits == 0 or scheme == 0:
        raise ValueError("pointer/config cannot carry a temporal key")
    if key >> bits:
        raise ValueError(f"temporal key {key} exceeds {bits}-bit field")
    shift = TAG_SHIFT + _temporal_field_width(scheme, config) - bits
    mask = ((1 << bits) - 1) << shift
    return ((pointer & ~mask) | (key << shift)) & U64_MASK
