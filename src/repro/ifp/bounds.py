"""Pointer bounds and the In-Fat Pointer Register (IFPR) model.

An IFPR is the pairing of a general-purpose register holding a 64-bit
pointer with a 96-bit bounds register holding two 48-bit addresses
(lower inclusive, upper exclusive).  Bounds registers can also be
*cleared* — the state legacy pointers get — in which case dereferences
through the pointer are not bounds-checked.

In the simulator a cleared bounds register is represented by ``None`` in
the register file; a loaded one by a :class:`Bounds` instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.layout import ADDRESS_MASK

#: Size of a bounds register when spilled with ``stbnd`` (2 x 48 bits,
#: stored as two 8-byte words for alignment, matching ldbnd/stbnd width).
BOUNDS_SPILL_BYTES = 16


@dataclass(frozen=True)
class Bounds:
    """A half-open address interval ``[lower, upper)``.

    When the temporal lock-and-key policy is armed (``repro.temporal``),
    a promoted/minted bounds register additionally carries the pointer's
    allocation base (``tbase``) and generation key (``tkey``) so the
    engines can compare lock == key at every implicit deref check.  Both
    default to 0 ("no temporal fact") and are excluded from equality and
    repr: spatially, two bounds registers holding the same interval are
    the same architectural value, and the spill format (``to_words``)
    stays two 64-bit words — a spilled/reloaded bounds register drops
    its temporal fact and is refreshed by the next promote (DESIGN §11).
    """

    lower: int
    upper: int
    tbase: int = field(default=0, repr=False, compare=False)
    tkey: int = field(default=0, repr=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "lower", self.lower & ADDRESS_MASK)
        object.__setattr__(self, "upper", self.upper & ADDRESS_MASK)

    @property
    def size(self) -> int:
        return max(0, self.upper - self.lower)

    def contains(self, address: int, access_size: int = 1) -> bool:
        """Access-size check: ``lower <= address`` and
        ``address + access_size <= upper`` (paper Section 4.1)."""
        address &= ADDRESS_MASK
        return self.lower <= address and address + access_size <= self.upper

    def contains_or_one_past(self, address: int) -> bool:
        """True for any address in bounds or exactly one past the end —
        the C-legal recoverable state."""
        address &= ADDRESS_MASK
        return self.lower <= address <= self.upper

    def narrowed(self, lower: int, upper: int) -> "Bounds":
        """Intersect with ``[lower, upper)`` (used by ``ifpbnd``)."""
        return Bounds(max(self.lower, lower & ADDRESS_MASK),
                      min(self.upper, upper & ADDRESS_MASK),
                      self.tbase, self.tkey)

    def shifted(self, delta: int) -> "Bounds":
        return Bounds(self.lower + delta, self.upper + delta,
                      self.tbase, self.tkey)

    def with_temporal(self, tbase: int, tkey: int) -> "Bounds":
        """Attach a temporal (allocation base, generation key) fact."""
        return Bounds(self.lower, self.upper, tbase, tkey)

    # -- spill format -------------------------------------------------------

    def to_words(self) -> tuple:
        """Encode for ``stbnd`` as two 64-bit words (lower, upper)."""
        return (self.lower, self.upper)

    @classmethod
    def from_words(cls, lower_word: int, upper_word: int) -> "Bounds":
        """Decode the ``ldbnd`` spill format."""
        return cls(lower_word & ADDRESS_MASK, upper_word & ADDRESS_MASK)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[0x{self.lower:x}, 0x{self.upper:x})"
