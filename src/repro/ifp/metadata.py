"""Canonical decoded object metadata.

Every lookup scheme ultimately yields the same logical record (paper
Section 3.3): the object's base address and size (for bounds checking), a
pointer to the type's layout table (for subobject narrowing; 0 when the
allocation site had no type information), and — for schemes whose metadata
lives in unprotected application memory — a MAC.

The scheme-specific *encodings* of this record live with each scheme in
:mod:`repro.ifp.schemes`; this module only defines the decoded form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ifp.bounds import Bounds


@dataclass(frozen=True)
class ObjectMetadata:
    """Decoded per-object metadata."""

    base: int        #: 48-bit object base address
    size: int        #: object size in bytes
    layout_ptr: int  #: address of the type's layout table (0 = none)

    @property
    def bounds(self) -> Bounds:
        return Bounds(self.base, self.base + self.size)
