"""In-Fat Pointer core: the paper's primary contribution.

This package implements, faithfully to the ASPLOS 2021 paper:

* the 16-bit pointer-tag layout (poison bits, scheme selector, scheme
  metadata + subobject index) — :mod:`repro.ifp.tag`;
* the three complementary object-metadata schemes (local offset, subheap,
  global table) — :mod:`repro.ifp.schemes`;
* per-type layout tables and the recursive subobject bounds-narrowing
  walk — :mod:`repro.ifp.layout`, :mod:`repro.ifp.narrow`;
* the ``promote`` operation that turns a tagged 64-bit pointer into an
  internal fat pointer (bounds in an IFPR) — :mod:`repro.ifp.promote`;
* the metadata MAC — :mod:`repro.ifp.mac`.
"""

from repro.ifp.config import IFPConfig, DEFAULT_CONFIG
from repro.ifp.poison import Poison
from repro.ifp.tag import (
    Scheme,
    PointerTag,
    TAG_SHIFT,
    pack_pointer,
    unpack_tag,
    address_of,
    with_tag,
    with_poison,
    strip_tag,
)
from repro.ifp.bounds import Bounds
from repro.ifp.layout import LayoutTable, LayoutEntry, LAYOUT_ENTRY_BYTES
from repro.ifp.mac import compute_mac, MAC_BITS
from repro.ifp.metadata import ObjectMetadata
from repro.ifp.promote import PromoteOutcome, PromoteResult
from repro.ifp.unit import ControlRegisters, MetadataPort, IFPUnit

__all__ = [
    "IFPConfig", "DEFAULT_CONFIG",
    "Poison", "Scheme", "PointerTag", "TAG_SHIFT",
    "pack_pointer", "unpack_tag", "address_of", "with_tag", "with_poison",
    "strip_tag",
    "Bounds", "LayoutTable", "LayoutEntry", "LAYOUT_ENTRY_BYTES",
    "compute_mac", "MAC_BITS", "ObjectMetadata",
    "PromoteOutcome", "PromoteResult",
    "ControlRegisters", "MetadataPort", "IFPUnit",
]
