"""The IFP execution unit: control registers, metadata port, promote engine.

This is the module that corresponds to the new execution unit the paper
adds to CVA6's execute stage.  It owns:

* the *control registers* — 16 subheap region descriptors plus the global
  metadata-table base (architectural state written by the runtime);
* the *metadata port* — the path through which promote fetches metadata
  from memory (sharing the L1 data cache with ordinary loads, which is
  what couples metadata locality to application cache behaviour);
* the *promote engine* implementing Figure 5;
* per-unit statistics that feed Table 4 and Figures 10–11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ResourceExhausted
from repro.ifp.bounds import Bounds
from repro.ifp.config import IFPConfig, DEFAULT_CONFIG
from repro.ifp.mac import MacCache
from repro.ifp.narrow import narrow_bounds
from repro.ifp.poison import Poison
from repro.ifp.promote import PromoteOutcome, PromoteResult
from repro.ifp.schemes.global_table import GlobalTableScheme
from repro.ifp.schemes.local_offset import LocalOffsetScheme
from repro.ifp.schemes.subheap import SubheapRegion, SubheapScheme
from repro.ifp.tag import Scheme, address_of, unpack_tag, with_poison
from repro.temporal.registry import temporal_violation


class ControlRegisters:
    """Architectural control state for the metadata schemes."""

    def __init__(self, config: IFPConfig = DEFAULT_CONFIG):
        self.config = config
        self._subheap: List[Optional[SubheapRegion]] = \
            [None] * config.subheap_register_count
        self._global_table_base: int = 0
        #: bumped on every architectural write — keys the promote-result
        #: cache, so a control-register update invalidates cached promotes
        #: without scanning them
        self.version = 0

    @property
    def global_table_base(self) -> int:
        return self._global_table_base

    @global_table_base.setter
    def global_table_base(self, value: int) -> None:
        self._global_table_base = value
        self.version += 1

    # -- subheap registers ---------------------------------------------------

    def subheap_region(self, index: int) -> Optional[SubheapRegion]:
        if not (0 <= index < len(self._subheap)):
            return None
        return self._subheap[index]

    def set_subheap_region(self, index: int, region: SubheapRegion) -> None:
        if not (0 <= index < len(self._subheap)):
            raise ValueError("subheap control register index out of range")
        self._subheap[index] = region
        self.version += 1

    def allocate_subheap_register(self, region: SubheapRegion) -> int:
        """Find a free register (or one already holding ``region``)."""
        for index, existing in enumerate(self._subheap):
            if existing == region:
                return index
        for index, existing in enumerate(self._subheap):
            if existing is None:
                self._subheap[index] = region
                self.version += 1
                return index
        raise ResourceExhausted("all subheap control registers in use")


class MetadataPort:
    """Memory access path for the IFP unit's metadata fetches.

    Loads go through the shared L1 data cache (when a hierarchy is
    attached) and accumulate cycles in :attr:`cycles`; the promote engine
    reads the delta to cost each operation.
    """

    def __init__(self, memory, hierarchy=None):
        self.memory = memory
        self.hierarchy = hierarchy
        self.cycles = 0
        self.loads = 0
        # The IFP unit holds the last-fetched line in a line buffer, so
        # decoding multiple fields of one metadata record costs a single
        # cache access.
        self._buffered_line = -1
        #: fault injector (repro.resil.faults); None on the hot path
        self.faults = None
        #: what the current fetch serves ("metadata" | "layout" | None),
        #: set by the promote engine so injected corruption can target
        #: metadata words vs. layout-table entries
        self.phase = None
        # Trace-recording stack for the host-side promote/layout caches:
        # each frame is ``[loads, extra]`` where ``loads`` is the ordered
        # (address, size) fetch sequence and ``extra`` the deterministic
        # add_cycles total.  Nested frames (a layout-walk recording inside
        # a promote recording) merge into their parent on end_trace.
        self._trace_stack = []

    def load(self, address: int, size: int) -> int:
        self.loads += 1
        line = address >> 6
        last_line = (address + size - 1) >> 6
        if line != self._buffered_line or last_line != line:
            if self.hierarchy is not None:
                self.cycles += self.hierarchy.access_cycles(
                    address, size, False)
            else:
                self.cycles += 1
            self._buffered_line = last_line
        value = self.memory.load_int(address, size)
        if self._trace_stack:
            self._trace_stack[-1][0].append((address, size))
        if self.faults is not None:
            value = self.faults.on_metadata_load(address, size, value,
                                                 self.phase)
        return value

    def add_cycles(self, cycles: int) -> None:
        self.cycles += cycles
        if self._trace_stack:
            self._trace_stack[-1][1] += cycles

    # -- cache support: record / replay fetch sequences -----------------------

    def begin_trace(self) -> None:
        """Start recording the fetch sequence (nestable)."""
        self._trace_stack.append([[], 0])

    def end_trace(self):
        """Stop recording; returns ``(loads, extra)`` and folds the frame
        into the enclosing recording, if any."""
        loads, extra = self._trace_stack.pop()
        if self._trace_stack:
            outer = self._trace_stack[-1]
            outer[0].extend(loads)
            outer[1] += extra
        return loads, extra

    def trace_mark(self):
        """Snapshot ``(loads so far, extra so far)`` of the current
        recording frame; the promote engine uses it to split a recorded
        trace at the metadata/layout phase boundary."""
        frame = self._trace_stack[-1]
        return len(frame[0]), frame[1]

    def replay(self, trace, extra: int) -> None:
        """Re-apply a recorded fetch sequence without touching memory.

        Reproduces :meth:`load`'s line-buffer and hierarchy effects access
        by access (so simulated cycles, load counts, and L1 state end up
        byte-identical to a recomputed promote), then charges the
        deterministic ``extra`` cycles in one step.
        """
        hierarchy = self.hierarchy
        for address, size in trace:
            self.loads += 1
            line = address >> 6
            last_line = (address + size - 1) >> 6
            if line != self._buffered_line or last_line != line:
                if hierarchy is not None:
                    self.cycles += hierarchy.access_cycles(
                        address, size, False)
                else:
                    self.cycles += 1
                self._buffered_line = last_line
        self.cycles += extra
        if self._trace_stack:
            frame = self._trace_stack[-1]
            frame[0].extend(trace)
            frame[1] += extra


@dataclass
class IFPUnitStats:
    """Counters matching the paper's evaluation breakdowns."""

    promotes_total: int = 0
    promotes_valid: int = 0            #: performed a metadata lookup
    promotes_null: int = 0
    promotes_legacy: int = 0
    promotes_poisoned: int = 0
    promotes_metadata_invalid: int = 0
    lookups_local_offset: int = 0
    lookups_subheap: int = 0
    lookups_global_table: int = 0
    narrow_attempts: int = 0           #: promote with non-zero subobject index
    narrow_success: int = 0
    narrow_no_layout_table: int = 0    #: narrowing wanted but layout_ptr == 0
    narrow_walk_failures: int = 0
    mac_failures: int = 0
    temporal_probes: int = 0           #: promote-time lock==key comparisons
    temporal_faults: int = 0           #: promote-time temporal violations
    promote_cycles: int = 0
    # Host-side cache effectiveness (no simulated-cost meaning; the caches
    # change nothing about simulated cycles/loads, only host work).
    mac_cache_hits: int = 0
    mac_cache_misses: int = 0
    layout_cache_hits: int = 0
    layout_cache_misses: int = 0
    promote_cache_hits: int = 0
    promote_cache_misses: int = 0
    #: promotes served straight from the last-promote memo — the check
    #: elision path (dynamic memo hits plus statically proven sites)
    promote_elisions: int = 0
    #: entries discarded at a generation swap (capacity pressure)
    promote_cache_evictions: int = 0
    #: entries dropped because a guest store hit their metadata lines
    promote_cache_invalidations: int = 0

    @property
    def promotes_bypassed(self) -> int:
        return (self.promotes_null + self.promotes_legacy
                + self.promotes_poisoned)


#: counters that track cache queries themselves — excluded from the
#: promote-cache's replayed stat deltas (a replayed promote performs no
#: MAC/layout-cache queries)
_CACHE_COUNTER_FIELDS = frozenset((
    "mac_cache_hits", "mac_cache_misses",
    "layout_cache_hits", "layout_cache_misses",
    "promote_cache_hits", "promote_cache_misses",
    "promote_elisions", "promote_cache_evictions",
    "promote_cache_invalidations",
))

#: stat fields *excluded* from the promote-result cache's replayed
#: deltas: ``promote_cycles`` because a replay recomputes it from the
#: live metadata-port cycle delta (line-buffer state differs per
#: replay), and the cache counters because a replayed promote performs
#: no MAC/layout-cache queries
_PROMOTE_DELTA_EXCLUDED = _CACHE_COUNTER_FIELDS | {"promote_cycles"}

#: per-generation capacity bounding host memory under adversarial
#: inputs; eviction is generational (the full current generation becomes
#: the previous one, whose entries are still hit-able until the *next*
#: swap discards them), so there is no clear-on-full cliff
_PROMOTE_CACHE_CAPACITY = 1 << 16


class IFPUnit:
    """The promote engine (paper Figure 5 + Figure 2)."""

    def __init__(self, memory, hierarchy=None,
                 config: IFPConfig = DEFAULT_CONFIG, mac_key: int = 0x1F9A7):
        config.validate()
        self.config = config
        self.mac_key = mac_key
        self.port = MetadataPort(memory, hierarchy)
        self.control = ControlRegisters(config)
        self.local_offset = LocalOffsetScheme(config)
        self.subheap = SubheapScheme(config)
        self.global_table = GlobalTableScheme(config)
        self.stats = IFPUnitStats()
        #: memoized MAC engine shared by the schemes' lookup paths
        self.mac = MacCache(mac_key, self.stats)
        #: observer shared with the machine (repro.obs.attach_observer);
        #: None keeps every emission on its zero-cost disabled path
        self.obs = None
        #: fault injector (repro.resil.faults.FaultInjector.arm); None
        #: keeps promote on its zero-cost path
        self.faults = None
        #: temporal lock registry (repro.temporal.TemporalRegistry),
        #: attached by the Machine when ``MachineConfig.temporal`` is not
        #: "off"; None keeps promote free of any lock probing
        self.temporal = None
        # Host-side result caches.  Both are active under *both* execution
        # engines (reference and fastpath), which is what keeps RunStats /
        # IFPUnitStats trivially identical across engines; they are
        # bypassed whenever a fault injector is armed.  An armed observer
        # no longer bypasses them: each entry carries a phase-split trace
        # plus the static facts of its emissions, so a replay re-emits the
        # exact event sequence a recomputed promote would.
        self._promote_cache = {}      # version-vector key -> entry (current)
        self._promote_prev = {}       # previous generation, still hit-able
        self._promote_deps = {}       # 64-byte line -> {keys} (current gen)
        self._promote_deps_prev = {}  # same, for the previous generation
        self._layout_cache = {}       # (layout_ptr, subobject_index) -> walk
        self._layout_env = (0, 0)     # [base, end) of compile-time tables
        #: unmap generation — joins the cache key, so an unmap is an O(1)
        #: version bump instead of a full flush
        self._mem_epoch = 0
        # Last-promote memo (the check-elision fast path): valid while
        # no entry has been dropped since it was set.  ``_inval_epoch``
        # bumps whenever any cached promote is discarded (store snoop,
        # generation swap, unmap), which over-approximates "this memo's
        # entry died" safely.
        self._memo = None             # (key, entry) of the last promote
        self._memo_epoch = -1
        self._inval_epoch = 0
        # The unit must see every guest store (line-buffer staleness +
        # cache invalidation), so it claims the memory's snoop hooks.
        memory.watcher = self.snoop_store
        memory.unmap_watcher = self.on_unmap

    # -- cache plumbing --------------------------------------------------------

    def set_layout_envelope(self, base: int, end: int) -> None:
        """Declare the loader's contiguous layout-table region.

        Only walks whose ``layout_ptr`` falls inside the envelope are
        cached, so store-snooping the region with two compares is a sound
        invalidation rule (pointers outside it — e.g. forged by a fuzzed
        guest — always walk live).
        """
        self._layout_env = (base, end)

    def snoop_store(self, address: int, size: int) -> None:
        """Guest-store snoop (installed as ``Memory.watcher``).

        Keeps the metadata line buffer honest (a store to the buffered
        line must force the next promote to re-fetch it — cycle-model
        fidelity) and invalidates host-side cache entries whose recorded
        fetches overlap the stored lines.
        """
        first = address >> 6
        last = (address + size - 1) >> 6
        port = self.port
        buffered = port._buffered_line
        if buffered >= 0 and first <= buffered <= last:
            port._buffered_line = -1
        if self._layout_cache:
            lo, hi = self._layout_env
            if address < hi and address + size > lo:
                self._layout_cache.clear()
        dropped = 0
        cache = self._promote_cache
        prev = self._promote_prev
        for deps in (self._promote_deps, self._promote_deps_prev):
            if not deps:
                continue
            for line in range(first, last + 1):
                keys = deps.pop(line, None)
                if keys:
                    for key in keys:
                        if cache.pop(key, None) is not None:
                            dropped += 1
                        if prev and prev.pop(key, None) is not None:
                            dropped += 1
        if dropped:
            self.stats.promote_cache_invalidations += dropped
            self._inval_epoch += 1

    def on_unmap(self, base: int, size: int) -> None:
        """Unmap snoop (installed as ``Memory.unmap_watcher``): bump the
        memory epoch so every cached promote key goes stale — unmapped
        metadata must fault again on promote.  Stale entries age out at
        the next generation swaps instead of being scanned here."""
        self._mem_epoch += 1
        self._inval_epoch += 1
        if self._layout_cache:
            self._layout_cache.clear()

    # -- the promote instruction ----------------------------------------------

    def promote(self, pointer: int) -> PromoteResult:
        """Execute one promote; returns the resulting IFPR.

        Unless a fault injector is armed, results are served from /
        recorded into the promote cache keyed by the version vector
        ``(pointer, control.version, mem_epoch[, registry.version])``; a
        replay re-applies the recorded stat deltas and fetch trace through
        the live metadata port, so every simulated observable (cycles,
        loads, L1 state, counters) matches a recomputed promote exactly.
        With an observer armed the replay additionally re-emits the
        recorded event script with live-recomputed cycle payloads.
        """
        if self.faults is None and self.port.faults is None:
            stats = self.stats
            registry = self.temporal
            # the registry version joins the key so a free/realloc (or an
            # injected lock corruption) can never replay a cached bounds
            # register whose temporal fact is stale
            key = ((pointer, self.control.version, self._mem_epoch)
                   if registry is None
                   else (pointer, self.control.version, self._mem_epoch,
                         registry.version))
            memo = self._memo
            if memo is not None and self._memo_epoch == self._inval_epoch \
                    and memo[0] == key:
                stats.promote_elisions += 1
                return self._replay_promote(memo[1])
            cached = self._promote_cache.get(key)
            if cached is None and self._promote_prev:
                cached = self._promote_prev.get(key)
                if cached is not None:
                    # resurrect into the current generation so it outlives
                    # the next swap; its line deps re-register with it
                    self._insert_promote(key, cached)
            if cached is not None:
                stats.promote_cache_hits += 1
                self._memo = (key, cached)
                self._memo_epoch = self._inval_epoch
                return self._replay_promote(cached)
            stats.promote_cache_misses += 1
            before = stats.__dict__.copy()
            port = self.port
            port.begin_trace()
            rec: list = []
            try:
                result = self._promote_execute(pointer, rec)
            finally:
                trace, extra = port.end_trace()
            after = stats.__dict__
            excluded = _PROMOTE_DELTA_EXCLUDED
            deltas = [(name, after[name] - value)
                      for name, value in before.items()
                      if after[name] != value and name not in excluded]
            self._remember_promote(key, result, trace, extra, deltas, rec)
            return result
        return self._promote_execute(pointer)

    def elide_promote(self, pointer: int) -> PromoteResult:
        """Promote at a statically proven memo-resident site.

        The translator calls this instead of :meth:`promote` only where
        its elision pass proved that, on every path reaching the site, an
        earlier promote in the same basic block set the memo and nothing
        since could have changed the version vector (no store, no bounds
        spill, no call).  Under that proof a pointer match plus an
        unchanged invalidation epoch implies the full key would match
        too, so the key tuple is never built and the cache dict is never
        probed.  Observably identical to :meth:`promote` in all cases —
        whenever the guard fires here, the memo compare in ``promote``
        would have fired for the same entry.
        """
        if self.faults is None and self.port.faults is None:
            memo = self._memo
            if memo is not None and self._memo_epoch == self._inval_epoch \
                    and memo[0][0] == pointer:
                self.stats.promote_elisions += 1
                return self._replay_promote(memo[1])
        return self.promote(pointer)

    def _replay_promote(self, entry) -> PromoteResult:
        (pointer, bounds, outcome, narrowed, narrow_attempted,
         trace, extra, deltas, script) = entry
        stats = self.stats
        for name, delta in deltas:
            setattr(stats, name, getattr(stats, name) + delta)
        port = self.port
        start = port.cycles
        obs = self.obs
        if obs is None or script is None:
            port.replay(trace, extra)
        else:
            # Re-emit the recorded event script at the reference sites:
            # metadata_fetch after the metadata-phase fetches (cycle
            # payload recomputed from the live line-buffer state, exactly
            # as an uncached promote would observe it), then mac_verify,
            # then the layout-phase fetches, then the narrow verdict.
            (meta_trace, meta_extra, post_trace, post_extra,
             scheme, metadata_ok, mac_checked, narrow) = script
            port.replay(meta_trace, meta_extra)
            obs.metadata_fetch(scheme, len(meta_trace),
                               port.cycles - start, metadata_ok)
            if mac_checked:
                obs.mac_verify(scheme, metadata_ok)
            if post_trace or post_extra:
                port.replay(post_trace, post_extra)
            if narrow is not None:
                obs.narrow(narrow)
        cycles = self.config.promote_base_cycles + (port.cycles - start)
        stats.promote_cycles += cycles
        return PromoteResult(pointer, bounds, outcome, narrowed=narrowed,
                             narrow_attempted=narrow_attempted, cycles=cycles)

    def _remember_promote(self, key, result: PromoteResult, trace,
                          extra: int, deltas, rec) -> None:
        if rec:
            # split the trace at the metadata/layout phase boundary and
            # keep the static emission facts, so the entry can replay
            # under an armed observer as well as a disarmed one
            meta_len, meta_extra, scheme, metadata_ok, mac_checked, \
                narrow = rec
            script = (tuple(trace[:meta_len]), meta_extra,
                      tuple(trace[meta_len:]), extra - meta_extra,
                      scheme, metadata_ok, mac_checked, narrow)
        else:
            script = None  # bypass outcome: no fetches, no emissions
        entry = (result.pointer, result.bounds, result.outcome,
                 result.narrowed, result.narrow_attempted,
                 trace, extra, tuple(deltas), script)
        self._insert_promote(key, entry)
        self._memo = (key, entry)
        self._memo_epoch = self._inval_epoch

    def _insert_promote(self, key, entry) -> None:
        cache = self._promote_cache
        if len(cache) >= _PROMOTE_CACHE_CAPACITY:
            # Generation swap: the current generation stays hit-able as
            # the previous one; what was previous is discarded along with
            # its dependency index.  The memo may reference a discarded
            # entry, so the invalidation epoch must advance.
            discarded = self._promote_prev
            self._promote_prev = cache
            self._promote_deps_prev = self._promote_deps
            self._promote_cache = cache = {}
            self._promote_deps = {}
            if discarded:
                self.stats.promote_cache_evictions += len(discarded)
            self._inval_epoch += 1
        cache[key] = entry
        deps = self._promote_deps
        lines = set()
        for address, size in entry[5]:
            first = address >> 6
            last = (address + size - 1) >> 6
            lines.add(first)
            if last != first:
                lines.update(range(first + 1, last + 1))
        for line in lines:
            bucket = deps.get(line)
            if bucket is None:
                deps[line] = {key}
            else:
                bucket.add(key)

    def _promote_execute(self, pointer: int, rec=None) -> PromoteResult:
        """The uncached promote path (paper Figure 5, exactly as before).

        ``rec``, when a list, collects the cache-entry script: the
        metadata-phase trace mark plus the static facts of every observer
        emission, in emission order."""
        stats = self.stats
        config = self.config
        stats.promotes_total += 1
        start_cycles = self.port.cycles
        if self.faults is not None:
            pointer = self.faults.on_promote(pointer)
        tag = unpack_tag(pointer)
        address = address_of(pointer)

        # 1. Poison gate.
        if tag.poison.irrecoverable:
            stats.promotes_poisoned += 1
            cycles = config.promote_base_cycles
            stats.promote_cycles += cycles
            return PromoteResult(pointer, None,
                                 PromoteOutcome.BYPASS_POISONED,
                                 cycles=cycles)

        # 2. Legacy gate (includes NULL).
        if tag.scheme is Scheme.LEGACY:
            if address == 0:
                stats.promotes_null += 1
                outcome = PromoteOutcome.BYPASS_NULL
            else:
                stats.promotes_legacy += 1
                outcome = PromoteOutcome.BYPASS_LEGACY
            cycles = config.promote_base_cycles
            stats.promote_cycles += cycles
            return PromoteResult(pointer, None, outcome, cycles=cycles)

        # 3. Scheme dispatch and metadata lookup.
        narrow_attempted = False
        start_loads = self.port.loads
        self.port.phase = "metadata"
        if tag.scheme is Scheme.LOCAL_OFFSET:
            stats.lookups_local_offset += 1
            metadata, mac_checked = self.local_offset.lookup(
                address, tag, self.port, self.mac)
        elif tag.scheme is Scheme.SUBHEAP:
            stats.lookups_subheap += 1
            metadata, mac_checked = self.subheap.lookup(
                address, tag, self.port, self.control, self.mac)
        else:
            stats.lookups_global_table += 1
            metadata, mac_checked = self.global_table.lookup(
                address, tag, self.port, self.control)
        self.port.phase = None

        if rec is not None:
            mark = self.port.trace_mark()
            rec += (mark[0], mark[1], tag.scheme.name,
                    metadata is not None, mac_checked)

        obs = self.obs
        if obs is not None:
            obs.metadata_fetch(tag.scheme.name,
                               self.port.loads - start_loads,
                               self.port.cycles - start_cycles,
                               metadata is not None)
            if mac_checked:
                obs.mac_verify(tag.scheme.name, metadata is not None)

        if metadata is None:
            stats.promotes_metadata_invalid += 1
            if mac_checked:
                stats.mac_failures += 1
            if rec is not None:
                rec.append(None)  # no narrow emission on this path
            cycles = (config.promote_base_cycles
                      + (self.port.cycles - start_cycles))
            stats.promote_cycles += cycles
            return PromoteResult(with_poison(pointer, Poison.INVALID), None,
                                 PromoteOutcome.METADATA_INVALID,
                                 cycles=cycles)

        stats.promotes_valid += 1
        bounds = metadata.bounds
        narrowed = False

        # 3b. Temporal lock-and-key check (repro.temporal): probe the
        # allocation registry at the pre-narrowing base.  A mismatching
        # or dead lock is a use-after-free — trap before narrowing ever
        # runs.  Untracked bases (stack/global objects, or allocations
        # minted while the policy was off) skip the comparison.
        registry = self.temporal
        tkey = 0
        tbase = 0
        if registry is not None:
            tkey = tag.temporal_key(config)
            if tkey:
                tbase = bounds.lower
                t_entry = registry.probe(tbase)
                if t_entry is None:
                    tkey = 0
                else:
                    stats.temporal_probes += 1
                    if not t_entry[1] or t_entry[0] != tkey:
                        stats.temporal_faults += 1
                        raise temporal_violation(
                            "promote", pointer, tbase, tkey, t_entry)

        # 4. Subobject narrowing.
        narrow_event = None
        subobject_index = tag.subobject_index(config)
        if subobject_index != 0:
            narrow_attempted = True
            stats.narrow_attempts += 1
            if not config.narrowing_enabled or metadata.layout_ptr == 0:
                stats.narrow_no_layout_table += 1
                narrow_event = ("disabled" if not config.narrowing_enabled
                                else "no_layout_table")
                if obs is not None:
                    obs.narrow(narrow_event)
            else:
                walk_cache = None
                if self.faults is None and self.port.faults is None:
                    env_lo, env_hi = self._layout_env
                    if env_lo <= metadata.layout_ptr < env_hi:
                        walk_cache = self._layout_cache
                self.port.phase = "layout"
                result = narrow_bounds(self.port, config,
                                       metadata.layout_ptr, bounds,
                                       address, subobject_index,
                                       walk_cache, stats)
                self.port.phase = None
                if result.exact:
                    stats.narrow_success += 1
                    narrowed = True
                else:
                    stats.narrow_walk_failures += 1
                bounds = result.bounds
                narrow_event = "ok" if result.exact else "walk_failure"
                if obs is not None:
                    obs.narrow(narrow_event)

        if rec is not None:
            rec.append(narrow_event)

        # 5. Re-attach the temporal fact to whatever bounds narrowing
        # produced, so implicit deref checks keep comparing lock == key.
        if tkey:
            bounds = bounds.with_temporal(tbase, tkey)

        # 6. Fused size check -> output poison bits.
        if bounds.contains(address):
            poison = Poison.VALID
        else:
            poison = Poison.RECOVERABLE
        cycles = config.promote_base_cycles + (self.port.cycles - start_cycles)
        stats.promote_cycles += cycles
        return PromoteResult(with_poison(pointer, poison), bounds,
                             PromoteOutcome.VALID,
                             narrowed=narrowed,
                             narrow_attempted=narrow_attempted,
                             cycles=cycles)
