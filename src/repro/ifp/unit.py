"""The IFP execution unit: control registers, metadata port, promote engine.

This is the module that corresponds to the new execution unit the paper
adds to CVA6's execute stage.  It owns:

* the *control registers* — 16 subheap region descriptors plus the global
  metadata-table base (architectural state written by the runtime);
* the *metadata port* — the path through which promote fetches metadata
  from memory (sharing the L1 data cache with ordinary loads, which is
  what couples metadata locality to application cache behaviour);
* the *promote engine* implementing Figure 5;
* per-unit statistics that feed Table 4 and Figures 10–11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ResourceExhausted
from repro.ifp.bounds import Bounds
from repro.ifp.config import IFPConfig, DEFAULT_CONFIG
from repro.ifp.narrow import narrow_bounds
from repro.ifp.poison import Poison
from repro.ifp.promote import PromoteOutcome, PromoteResult
from repro.ifp.schemes.global_table import GlobalTableScheme
from repro.ifp.schemes.local_offset import LocalOffsetScheme
from repro.ifp.schemes.subheap import SubheapRegion, SubheapScheme
from repro.ifp.tag import Scheme, address_of, unpack_tag, with_poison


class ControlRegisters:
    """Architectural control state for the metadata schemes."""

    def __init__(self, config: IFPConfig = DEFAULT_CONFIG):
        self.config = config
        self._subheap: List[Optional[SubheapRegion]] = \
            [None] * config.subheap_register_count
        self.global_table_base: int = 0

    # -- subheap registers ---------------------------------------------------

    def subheap_region(self, index: int) -> Optional[SubheapRegion]:
        if not (0 <= index < len(self._subheap)):
            return None
        return self._subheap[index]

    def set_subheap_region(self, index: int, region: SubheapRegion) -> None:
        if not (0 <= index < len(self._subheap)):
            raise ValueError("subheap control register index out of range")
        self._subheap[index] = region

    def allocate_subheap_register(self, region: SubheapRegion) -> int:
        """Find a free register (or one already holding ``region``)."""
        for index, existing in enumerate(self._subheap):
            if existing == region:
                return index
        for index, existing in enumerate(self._subheap):
            if existing is None:
                self._subheap[index] = region
                return index
        raise ResourceExhausted("all subheap control registers in use")


class MetadataPort:
    """Memory access path for the IFP unit's metadata fetches.

    Loads go through the shared L1 data cache (when a hierarchy is
    attached) and accumulate cycles in :attr:`cycles`; the promote engine
    reads the delta to cost each operation.
    """

    def __init__(self, memory, hierarchy=None):
        self.memory = memory
        self.hierarchy = hierarchy
        self.cycles = 0
        self.loads = 0
        # The IFP unit holds the last-fetched line in a line buffer, so
        # decoding multiple fields of one metadata record costs a single
        # cache access.
        self._buffered_line = -1
        #: fault injector (repro.resil.faults); None on the hot path
        self.faults = None
        #: what the current fetch serves ("metadata" | "layout" | None),
        #: set by the promote engine so injected corruption can target
        #: metadata words vs. layout-table entries
        self.phase = None

    def load(self, address: int, size: int) -> int:
        self.loads += 1
        line = address >> 6
        last_line = (address + size - 1) >> 6
        if line != self._buffered_line or last_line != line:
            if self.hierarchy is not None:
                self.cycles += self.hierarchy.access_cycles(
                    address, size, False)
            else:
                self.cycles += 1
            self._buffered_line = last_line
        value = self.memory.load_int(address, size)
        if self.faults is not None:
            value = self.faults.on_metadata_load(address, size, value,
                                                 self.phase)
        return value

    def add_cycles(self, cycles: int) -> None:
        self.cycles += cycles


@dataclass
class IFPUnitStats:
    """Counters matching the paper's evaluation breakdowns."""

    promotes_total: int = 0
    promotes_valid: int = 0            #: performed a metadata lookup
    promotes_null: int = 0
    promotes_legacy: int = 0
    promotes_poisoned: int = 0
    promotes_metadata_invalid: int = 0
    lookups_local_offset: int = 0
    lookups_subheap: int = 0
    lookups_global_table: int = 0
    narrow_attempts: int = 0           #: promote with non-zero subobject index
    narrow_success: int = 0
    narrow_no_layout_table: int = 0    #: narrowing wanted but layout_ptr == 0
    narrow_walk_failures: int = 0
    mac_failures: int = 0
    promote_cycles: int = 0

    @property
    def promotes_bypassed(self) -> int:
        return (self.promotes_null + self.promotes_legacy
                + self.promotes_poisoned)


class IFPUnit:
    """The promote engine (paper Figure 5 + Figure 2)."""

    def __init__(self, memory, hierarchy=None,
                 config: IFPConfig = DEFAULT_CONFIG, mac_key: int = 0x1F9A7):
        config.validate()
        self.config = config
        self.mac_key = mac_key
        self.port = MetadataPort(memory, hierarchy)
        self.control = ControlRegisters(config)
        self.local_offset = LocalOffsetScheme(config)
        self.subheap = SubheapScheme(config)
        self.global_table = GlobalTableScheme(config)
        self.stats = IFPUnitStats()
        #: observer shared with the machine (repro.obs.attach_observer);
        #: None keeps every emission on its zero-cost disabled path
        self.obs = None
        #: fault injector (repro.resil.faults.FaultInjector.arm); None
        #: keeps promote on its zero-cost path
        self.faults = None

    # -- the promote instruction ----------------------------------------------

    def promote(self, pointer: int) -> PromoteResult:
        """Execute one promote; returns the resulting IFPR."""
        stats = self.stats
        config = self.config
        stats.promotes_total += 1
        start_cycles = self.port.cycles
        if self.faults is not None:
            pointer = self.faults.on_promote(pointer)
        tag = unpack_tag(pointer)
        address = address_of(pointer)

        # 1. Poison gate.
        if tag.poison.irrecoverable:
            stats.promotes_poisoned += 1
            cycles = config.promote_base_cycles
            stats.promote_cycles += cycles
            return PromoteResult(pointer, None,
                                 PromoteOutcome.BYPASS_POISONED,
                                 cycles=cycles)

        # 2. Legacy gate (includes NULL).
        if tag.scheme is Scheme.LEGACY:
            if address == 0:
                stats.promotes_null += 1
                outcome = PromoteOutcome.BYPASS_NULL
            else:
                stats.promotes_legacy += 1
                outcome = PromoteOutcome.BYPASS_LEGACY
            cycles = config.promote_base_cycles
            stats.promote_cycles += cycles
            return PromoteResult(pointer, None, outcome, cycles=cycles)

        # 3. Scheme dispatch and metadata lookup.
        narrow_attempted = False
        start_loads = self.port.loads
        self.port.phase = "metadata"
        if tag.scheme is Scheme.LOCAL_OFFSET:
            stats.lookups_local_offset += 1
            metadata, mac_checked = self.local_offset.lookup(
                address, tag, self.port, self.mac_key)
        elif tag.scheme is Scheme.SUBHEAP:
            stats.lookups_subheap += 1
            metadata, mac_checked = self.subheap.lookup(
                address, tag, self.port, self.control, self.mac_key)
        else:
            stats.lookups_global_table += 1
            metadata, mac_checked = self.global_table.lookup(
                address, tag, self.port, self.control)
        self.port.phase = None

        obs = self.obs
        if obs is not None:
            obs.metadata_fetch(tag.scheme.name,
                               self.port.loads - start_loads,
                               self.port.cycles - start_cycles,
                               metadata is not None)
            if mac_checked:
                obs.mac_verify(tag.scheme.name, metadata is not None)

        if metadata is None:
            stats.promotes_metadata_invalid += 1
            if mac_checked:
                stats.mac_failures += 1
            cycles = (config.promote_base_cycles
                      + (self.port.cycles - start_cycles))
            stats.promote_cycles += cycles
            return PromoteResult(with_poison(pointer, Poison.INVALID), None,
                                 PromoteOutcome.METADATA_INVALID,
                                 cycles=cycles)

        stats.promotes_valid += 1
        bounds = metadata.bounds
        narrowed = False

        # 4. Subobject narrowing.
        subobject_index = tag.subobject_index(config)
        if subobject_index != 0:
            narrow_attempted = True
            stats.narrow_attempts += 1
            if not config.narrowing_enabled or metadata.layout_ptr == 0:
                stats.narrow_no_layout_table += 1
                if obs is not None:
                    obs.narrow("disabled" if not config.narrowing_enabled
                               else "no_layout_table")
            else:
                self.port.phase = "layout"
                result = narrow_bounds(self.port, config,
                                       metadata.layout_ptr, bounds,
                                       address, subobject_index)
                self.port.phase = None
                if result.exact:
                    stats.narrow_success += 1
                    narrowed = True
                else:
                    stats.narrow_walk_failures += 1
                bounds = result.bounds
                if obs is not None:
                    obs.narrow("ok" if result.exact else "walk_failure")

        # 5. Fused size check -> output poison bits.
        if bounds.contains(address):
            poison = Poison.VALID
        else:
            poison = Poison.RECOVERABLE
        cycles = config.promote_base_cycles + (self.port.cycles - start_cycles)
        stats.promote_cycles += cycles
        return PromoteResult(with_poison(pointer, poison), bounds,
                             PromoteOutcome.VALID,
                             narrowed=narrowed,
                             narrow_attempted=narrow_attempted,
                             cycles=cycles)
