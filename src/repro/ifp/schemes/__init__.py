"""The three complementary object-metadata schemes (paper Section 3.3).

==============  ==========================  ===============================
scheme          tag payload (12 bits)       intended objects
==============  ==========================  ===============================
local offset    6-bit granule offset +      small objects, local variables
                6-bit subobject index
subheap         4-bit control-register      heap objects from a
                index + 8-bit subobject     slab/pool-style allocator
                index
global table    12-bit table index          large globals; fallback
==============  ==========================  ===============================

Each module provides (a) helpers the *runtime* uses to write metadata and
mint tagged pointers, and (b) the `lookup` routine the *hardware* (IFP
unit) uses during ``promote``.
"""

from repro.ifp.schemes.local_offset import LocalOffsetScheme
from repro.ifp.schemes.subheap import SubheapScheme, SubheapRegion
from repro.ifp.schemes.global_table import GlobalTableScheme

__all__ = [
    "LocalOffsetScheme",
    "SubheapScheme",
    "SubheapRegion",
    "GlobalTableScheme",
]
