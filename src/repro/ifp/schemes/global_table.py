"""Global table scheme (paper Section 3.3.3, Figure 8).

The fallback scheme: all 12 payload bits index into a single global
metadata table whose base address lives in a control register.  With every
tag bit spent on the index there is no room for a subobject index, so —
exactly as in the paper's prototype — pointers under this scheme cannot
have their bounds narrowed during ``promote``.

Table row — 16 bytes:

======== ===== ==============================================
offset   width field
======== ===== ==============================================
0        6     object base address (48-bit); 0 = empty row
6        4     object size
10       6     layout-table pointer (48-bit address)
======== ===== ==============================================

The table lives in a reserved, runtime-managed region (never handed to the
application allocators), so rows carry no MAC.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ifp.config import IFPConfig, DEFAULT_CONFIG
from repro.ifp.metadata import ObjectMetadata
from repro.ifp.poison import Poison
from repro.ifp.tag import PointerTag, Scheme, pack_pointer

#: Size of one table row.
ROW_BYTES = 16


class GlobalTableScheme:
    """Helpers for the global table scheme."""

    name = "global_table"

    def __init__(self, config: IFPConfig = DEFAULT_CONFIG):
        self.config = config

    # -- runtime side -----------------------------------------------------------

    def row_address(self, table_base: int, index: int) -> int:
        return table_base + index * ROW_BYTES

    def write_row(self, memory, table_base: int, index: int,
                  object_base: int, size: int, layout_ptr: int) -> None:
        if index >= self.config.global_table_rows:
            raise ValueError("global table index out of range")
        if object_base == 0:
            raise ValueError("object base 0 is the empty-row marker")
        row = self.row_address(table_base, index)
        memory.store_int(row, object_base, 6)
        memory.store_int(row + 6, size, 4)
        memory.store_int(row + 10, layout_ptr, 6)

    def clear_row(self, memory, table_base: int, index: int) -> None:
        memory.fill(self.row_address(table_base, index), 0, ROW_BYTES)

    def make_pointer(self, address: int, index: int,
                     poison: Poison = Poison.VALID) -> int:
        if index >= self.config.global_table_rows:
            raise ValueError("global table index out of range")
        tag = PointerTag(poison, Scheme.GLOBAL_TABLE, index)
        return pack_pointer(address, tag)

    # -- hardware side ------------------------------------------------------------

    def lookup(self, address: int, tag: PointerTag, port,
               control_registers) -> Tuple[Optional[ObjectMetadata], bool]:
        """Index into the table; empty rows are invalid metadata."""
        config = self.config
        table_base = control_registers.global_table_base
        if table_base == 0:
            return None, False
        index = tag.global_table_index(config)
        row = self.row_address(table_base, index)
        object_base = port.load(row, 6)
        size = port.load(row + 6, 4)
        layout_ptr = port.load(row + 10, 6)
        if object_base == 0 or size == 0:
            return None, False
        return ObjectMetadata(object_base, size, layout_ptr), False
