"""Local offset scheme (paper Section 3.3.1, Figure 6).

Metadata is *appended* to each object (so legacy code still receives a
pointer to the object itself), with both the object base and the metadata
aligned to the implementation granule (16 bytes in the prototype).  The
pointer tag carries the offset *from the current address* to the metadata,
measured in granules with the low address bits truncated:

    metadata_addr = align_down(addr, granule) + granule_offset * granule

Because the metadata sits at the object's end, the object base is derived
from the metadata address and the stored size:

    object_base = metadata_addr - align_up(size, granule)

Pointer arithmetic (``ifpadd``) must re-encode the granule offset for the
new address; this module provides that re-encoding too.

Metadata record — 16 bytes:

======== ===== =========================
offset   width field
======== ===== =========================
0        8     layout-table pointer
8        2     object size (<= 1008)
10       6     48-bit MAC
======== ===== =========================
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ifp.config import IFPConfig, DEFAULT_CONFIG
from repro.ifp.mac import compute_mac, MAC_MASK
from repro.ifp.metadata import ObjectMetadata
from repro.ifp.poison import Poison
from repro.ifp.tag import PointerTag, Scheme, pack_pointer

#: Size of the appended metadata record.
METADATA_BYTES = 16


def align_down(value: int, granule: int) -> int:
    return value & ~(granule - 1)


def align_up(value: int, granule: int) -> int:
    return (value + granule - 1) & ~(granule - 1)


class LocalOffsetScheme:
    """Stateless helpers for the local offset scheme.

    The scheme needs no machine state beyond the metadata records
    themselves, which is what makes it suitable for lightweight compiler
    instrumentation of stack objects.
    """

    name = "local_offset"

    def __init__(self, config: IFPConfig = DEFAULT_CONFIG):
        self.config = config

    # -- sizing -------------------------------------------------------------

    def supports_size(self, size: int) -> bool:
        return 0 < size <= self.config.local_max_object

    def footprint(self, size: int) -> int:
        """Bytes of memory an instrumented object occupies: the object
        rounded up to the granule, plus the metadata record."""
        return align_up(size, self.config.granule) + METADATA_BYTES

    def metadata_address(self, object_base: int, size: int) -> int:
        return object_base + align_up(size, self.config.granule)

    # -- runtime side: registration -----------------------------------------

    def write_metadata(self, memory, object_base: int, size: int,
                       layout_ptr: int, mac_key: int) -> int:
        """Write the appended metadata record; returns its address.

        ``object_base`` must be granule-aligned and ``size`` within the
        scheme limit — the compiler/runtime guarantees both.
        """
        config = self.config
        if object_base & (config.granule - 1):
            raise ValueError("object base must be granule-aligned")
        if not self.supports_size(size):
            raise ValueError(f"object size {size} exceeds local-offset limit")
        md_addr = self.metadata_address(object_base, size)
        mac = compute_mac(mac_key, (md_addr, size, layout_ptr))
        memory.store_int(md_addr, layout_ptr, 8)
        memory.store_int(md_addr + 8, size, 2)
        memory.store_int(md_addr + 10, mac, 6)
        return md_addr

    def clear_metadata(self, memory, object_base: int, size: int) -> None:
        """Invalidate the record on deallocation (``IFP_Deregister``)."""
        memory.fill(self.metadata_address(object_base, size), 0,
                    METADATA_BYTES)

    def make_pointer(self, address: int, object_base: int, size: int,
                     subobject_index: int = 0,
                     poison: Poison = Poison.VALID) -> int:
        """Mint a tagged pointer to ``address`` inside the object."""
        payload = self.encode_payload(address, object_base, size,
                                      subobject_index)
        if payload is None:
            raise ValueError("address not representable under local offset")
        tag = PointerTag(poison, Scheme.LOCAL_OFFSET, payload)
        return pack_pointer(address, tag)

    def encode_payload(self, address: int, object_base: int, size: int,
                       subobject_index: int) -> Optional[int]:
        """Encode (granule offset, subobject index) or None if the offset
        field cannot represent the distance (pointer far out of bounds)."""
        config = self.config
        md_addr = self.metadata_address(object_base, size)
        delta = md_addr - align_down(address, config.granule)
        if delta < 0 or delta % config.granule:
            return None
        offset = delta // config.granule
        if offset >= (1 << config.local_offset_bits):
            return None
        if subobject_index >= (1 << config.local_subobj_bits):
            return None
        return (offset << config.local_subobj_bits) | subobject_index

    def reencode_after_arithmetic(self, tag: PointerTag, old_address: int,
                                  new_address: int) -> Optional[PointerTag]:
        """Recompute the granule-offset field after pointer arithmetic.

        Returns ``None`` when the new address is not representable, in
        which case the caller (``ifpadd``) must poison the pointer.
        """
        config = self.config
        old_offset = tag.local_granule_offset(config)
        md_addr = align_down(old_address, config.granule) \
            + old_offset * config.granule
        delta = md_addr - align_down(new_address, config.granule)
        if delta < 0:
            return None
        new_offset = delta // config.granule
        if new_offset >= (1 << config.local_offset_bits):
            return None
        sub = tag.local_subobject_index(config)
        payload = (new_offset << config.local_subobj_bits) | sub
        return PointerTag(tag.poison, Scheme.LOCAL_OFFSET, payload)

    # -- hardware side: lookup ------------------------------------------------

    def lookup(self, address: int, tag: PointerTag, port,
               mac) -> Tuple[Optional[ObjectMetadata], bool]:
        """Fetch and validate metadata for a promote.

        ``mac`` is the unit's :class:`repro.ifp.mac.MacCache`.  Returns
        ``(metadata, mac_checked)``; metadata is ``None`` when the record
        is invalid (size zero / MAC mismatch).
        """
        config = self.config
        md_addr = align_down(address, config.granule) \
            + tag.local_granule_offset(config) * config.granule
        layout_ptr = port.load(md_addr, 8)
        size = port.load(md_addr + 8, 2)
        if not self.supports_size(size):
            return None, False
        if config.mac_enabled:
            stored_mac = port.load(md_addr + 10, 6)
            expected = mac.compute((md_addr, size, layout_ptr))
            port.add_cycles(config.mac_cycles)
            if stored_mac != (expected & MAC_MASK):
                return None, True
        base = md_addr - align_up(size, config.granule)
        return ObjectMetadata(base, size, layout_ptr), config.mac_enabled
