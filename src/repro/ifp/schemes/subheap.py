"""Subheap scheme (paper Section 3.3.2, Figure 7).

A cooperating memory allocator places objects of identical size and type
inside power-of-two-sized, power-of-two-aligned memory *blocks*.  Each
block holds an array of equal-sized *slots* (one object per slot) plus one
shared 32-byte metadata record.  The pointer tag stores only a 4-bit index
into a file of 16 *control registers*; the selected register maps the
pointer to its block (by giving the block size) and to the metadata within
it (by giving the metadata's offset from the block base):

    block_base    = addr & ~(block_size - 1)
    metadata_addr = block_base + metadata_offset

Shared block metadata — 32 bytes:

======== ===== ======================================================
offset   width field
======== ===== ======================================================
0        4     slot-array start offset (from block base)
4        4     slot-array end offset (exclusive)
8        4     slot size (a multiple of the granule for easy division)
12       4     object size (<= slot size)
16       8     layout-table pointer
24       6     48-bit MAC
30       2     magic (0x1FB7) — quick validity filter
======== ===== ======================================================

Locating the object from a pointer is one subtraction, one division by the
slot size, and one multiplication:

    slot  = (addr - block_base - slot_start) // slot_size
    base  = block_base + slot_start + slot * slot_size
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ifp.config import IFPConfig, DEFAULT_CONFIG
from repro.ifp.mac import compute_mac, MAC_MASK
from repro.ifp.metadata import ObjectMetadata
from repro.ifp.poison import Poison
from repro.ifp.tag import PointerTag, Scheme, pack_pointer

#: Size of the shared per-block metadata record.
METADATA_BYTES = 32
#: Validity marker stored in the record.
MAGIC = 0x1FB7


@dataclass(frozen=True)
class SubheapRegion:
    """The contents of one subheap control register."""

    block_log2: int       #: log2 of the block size/alignment
    metadata_offset: int  #: offset of the shared metadata within each block

    @property
    def block_size(self) -> int:
        return 1 << self.block_log2

    def block_base(self, address: int) -> int:
        return address & ~(self.block_size - 1)


class SubheapScheme:
    """Helpers for the subheap scheme.

    Unlike the other schemes this one involves machine state (the control
    registers); the register file itself lives in
    :class:`repro.ifp.unit.ControlRegisters` and is passed in explicitly.
    """

    name = "subheap"

    def __init__(self, config: IFPConfig = DEFAULT_CONFIG):
        self.config = config

    # -- runtime side ---------------------------------------------------------

    def write_block_metadata(self, memory, block_base: int, region: SubheapRegion,
                             slot_start: int, slot_end: int, slot_size: int,
                             object_size: int, layout_ptr: int,
                             mac_key: int) -> int:
        """Initialise the shared metadata of one block; returns its address."""
        if object_size > slot_size:
            raise ValueError("object size exceeds slot size")
        if slot_size <= 0 or slot_size % self.config.granule:
            raise ValueError("slot size must be a positive granule multiple")
        if not (0 <= slot_start <= slot_end <= region.block_size):
            raise ValueError("slot array must lie within the block")
        md_addr = block_base + region.metadata_offset
        packed_geometry = (slot_start | (slot_end << 16)
                           | (slot_size << 32) | (object_size << 48))
        mac = compute_mac(mac_key, (block_base, packed_geometry, layout_ptr))
        memory.store_int(md_addr, slot_start, 4)
        memory.store_int(md_addr + 4, slot_end, 4)
        memory.store_int(md_addr + 8, slot_size, 4)
        memory.store_int(md_addr + 12, object_size, 4)
        memory.store_int(md_addr + 16, layout_ptr, 8)
        memory.store_int(md_addr + 24, mac, 6)
        memory.store_int(md_addr + 30, MAGIC, 2)
        return md_addr

    def clear_block_metadata(self, memory, block_base: int,
                             region: SubheapRegion) -> None:
        memory.fill(block_base + region.metadata_offset, 0, METADATA_BYTES)

    def make_pointer(self, address: int, register_index: int,
                     subobject_index: int = 0,
                     poison: Poison = Poison.VALID) -> int:
        config = self.config
        if register_index >= config.subheap_register_count:
            raise ValueError("control register index out of range")
        if subobject_index >= config.subheap_max_layout_entries:
            raise ValueError("subobject index exceeds field width")
        payload = ((register_index << config.subheap_subobj_bits)
                   | subobject_index)
        tag = PointerTag(poison, Scheme.SUBHEAP, payload)
        return pack_pointer(address, tag)

    # -- hardware side ----------------------------------------------------------

    def lookup(self, address: int, tag: PointerTag, port, control_registers,
               mac) -> Tuple[Optional[ObjectMetadata], bool]:
        """Fetch and validate the shared block metadata for a promote.

        ``mac`` is the unit's :class:`repro.ifp.mac.MacCache`.
        """
        config = self.config
        region = control_registers.subheap_region(
            tag.subheap_register_index(config))
        if region is None:
            return None, False
        block_base = region.block_base(address)
        md_addr = block_base + region.metadata_offset
        slot_start = port.load(md_addr, 4)
        slot_end = port.load(md_addr + 4, 4)
        slot_size = port.load(md_addr + 8, 4)
        object_size = port.load(md_addr + 12, 4)
        layout_ptr = port.load(md_addr + 16, 8)
        magic = port.load(md_addr + 30, 2)
        if magic != MAGIC or slot_size == 0 or object_size == 0 \
                or object_size > slot_size or slot_end > region.block_size \
                or slot_start >= slot_end:
            return None, False
        if config.mac_enabled:
            stored_mac = port.load(md_addr + 24, 6)
            packed_geometry = (slot_start | (slot_end << 16)
                               | (slot_size << 32) | (object_size << 48))
            expected = mac.compute(
                (block_base, packed_geometry, layout_ptr))
            port.add_cycles(config.mac_cycles)
            if stored_mac != (expected & MAC_MASK):
                return None, True
        offset_in_array = address - block_base - slot_start
        if offset_in_array < 0 \
                or address >= block_base + slot_end:
            # Pointer drifted outside the slot array: cannot identify the
            # object.  Treated as invalid metadata for this pointer.
            return None, config.mac_enabled
        port.add_cycles(config.slot_divide_cycles)  # constrained slot division
        slot = offset_in_array // slot_size
        base = block_base + slot_start + slot * slot_size
        return ObjectMetadata(base, object_size, layout_ptr), config.mac_enabled
