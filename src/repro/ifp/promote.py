"""The ``promote`` operation (paper Section 3.2, Figure 5).

``promote`` takes a 64-bit (possibly tagged) pointer and produces an IFPR:
the pointer with refreshed poison bits, plus a bounds register value.

Pipeline of the operation:

1. *Poison gate* — an irrecoverably-poisoned pointer bypasses retrieval
   entirely (looking up metadata with a garbage pointer value could fault
   or yield false positives even if the pointer is never dereferenced).
2. *Legacy gate* — the ``00`` scheme selector means no metadata: bounds
   are cleared and the pointer is exempt from checking.  NULL pointers are
   a (counted) special case of this gate.
3. *Scheme dispatch* — the selector picks one of the three object-metadata
   schemes, which fetches and validates the object metadata (including the
   MAC where applicable).  Invalid metadata poisons the output IFPR.
4. *Narrowing* — when the metadata carries a layout table and the tag's
   subobject index is non-zero, the layout-table walk refines the object
   bounds to subobject bounds.
5. *Fused size check* — the output poison bits reflect whether the address
   currently lies within the retrieved bounds (out-of-bounds-but-
   recoverable for the one-past-the-end state and any other OOB value).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.ifp.bounds import Bounds


class PromoteOutcome(enum.Enum):
    """Classification of a promote, matching Table 4's accounting."""

    BYPASS_POISONED = "bypass_poisoned"   #: input already irrecoverable
    BYPASS_NULL = "bypass_null"           #: legacy NULL pointer
    BYPASS_LEGACY = "bypass_legacy"       #: non-NULL legacy pointer
    VALID = "valid"                       #: metadata lookup performed
    METADATA_INVALID = "metadata_invalid"  #: lookup found invalid metadata

    @property
    def bypassed(self) -> bool:
        return self in (PromoteOutcome.BYPASS_POISONED,
                        PromoteOutcome.BYPASS_NULL,
                        PromoteOutcome.BYPASS_LEGACY)


@dataclass
class PromoteResult:
    """The IFPR produced by a promote, plus accounting."""

    pointer: int                    #: output pointer (poison refreshed)
    bounds: Optional[Bounds]        #: None = bounds cleared (unchecked)
    outcome: PromoteOutcome
    narrowed: bool = False          #: subobject narrowing succeeded
    narrow_attempted: bool = False  #: tag had a non-zero subobject index
    cycles: int = 0                 #: total cycle cost of the operation

    @property
    def checked(self) -> bool:
        """Whether dereferences through this IFPR are bounds-checked."""
        return self.bounds is not None
