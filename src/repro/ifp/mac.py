"""48-bit metadata MAC (paper Section 3.3).

Object metadata for the local-offset and subheap schemes lives in ordinary
application memory, where legacy code or temporal bugs could overwrite it.
The hardware therefore stores a keyed MAC with the metadata and recomputes
it during ``promote``; a mismatch terminates bounds retrieval and poisons
the output IFPR.

The prototype's exact MAC construction is not specified in the paper, so we
use a small keyed mixing function in the spirit of SipHash (two
xor-multiply-rotate rounds over the metadata words, truncated to 48 bits).
What matters for the reproduction is (a) the 48-bit width, (b) keying, and
(c) sensitivity to every metadata bit — all of which hold here.
"""

from __future__ import annotations

from typing import Iterable

#: MAC width in bits (fits the 6 spare bytes of a 16-byte metadata record).
MAC_BITS = 48
MAC_MASK = (1 << MAC_BITS) - 1
MAC_BYTES = MAC_BITS // 8

_U64 = (1 << 64) - 1
_MULT1 = 0x9E3779B97F4A7C15  # golden-ratio odd constant
_MULT2 = 0xC2B2AE3D27D4EB4F  # from xxhash's prime set


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (64 - amount))) & _U64


def _mix(state: int, word: int) -> int:
    state ^= (word * _MULT1) & _U64
    state = _rotl(state, 31)
    return (state * _MULT2) & _U64


def compute_mac(key: int, words: Iterable[int]) -> int:
    """Compute the 48-bit MAC of a sequence of 64-bit metadata words."""
    state = (key ^ _MULT2) & _U64
    count = 0
    for word in words:
        state = _mix(state, word & _U64)
        count += 1
    # Finalisation: fold in the length, then avalanche.
    state = _mix(state, count)
    state ^= state >> 29
    state = (state * _MULT1) & _U64
    state ^= state >> 32
    return state & MAC_MASK


def metadata_mac(key: int, base: int, size: int, layout_ptr: int) -> int:
    """MAC over the canonical metadata triple used by all schemes."""
    return compute_mac(key, (base, size, layout_ptr))


class MacCache:
    """Memoizing front-end to :func:`compute_mac` for a fixed key.

    The MAC is a pure function of ``(key, words)``, so memoized results
    never need invalidation — the simulated outcome of every verification
    is unaffected, only the host-side recomputation cost disappears.  The
    ``stats`` object (an :class:`repro.ifp.unit.IFPUnitStats`) receives
    ``mac_cache_hits``/``mac_cache_misses`` so the obs metrics can report
    cache effectiveness.  A size cap with clear-on-full bounds host memory
    under adversarial (fuzz) workloads that mint unbounded distinct words.
    """

    __slots__ = ("key", "stats", "capacity", "_cache")

    def __init__(self, key: int, stats, capacity: int = 1 << 16):
        self.key = key
        self.stats = stats
        self.capacity = capacity
        self._cache = {}

    def compute(self, words: tuple) -> int:
        """Memoized :func:`compute_mac`; ``words`` must be a tuple."""
        value = self._cache.get(words)
        if value is not None:
            self.stats.mac_cache_hits += 1
            return value
        self.stats.mac_cache_misses += 1
        if len(self._cache) >= self.capacity:
            self._cache.clear()
        value = compute_mac(self.key, words)
        self._cache[words] = value
        return value
