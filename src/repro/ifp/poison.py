"""Poison-bit states for tagged pointers (paper Section 3.2).

The top two bits of every pointer tag encode one of three states:

* ``VALID`` — the pointer points within its bounds and may be dereferenced.
* ``RECOVERABLE`` — out of bounds but recoverable (notably the legal
  one-past-the-end state): dereferencing traps, but pointer arithmetic may
  bring the pointer back in bounds and clear the state.
* ``INVALID`` — an irrecoverable error was observed (invalid object
  metadata, indexing after a failed check, ...); the pointer can never be
  dereferenced again.

All standard loads and stores check the poison bits and trap unless the
state is ``VALID`` — this is what turns a failed bounds check into a fault
at the (possibly later) dereference.
"""

from __future__ import annotations

import enum


class Poison(enum.IntEnum):
    """Two-bit poison state.  Encodings 0b10 and 0b11 are both INVALID; the
    canonical invalid encoding written by hardware is 0b10."""

    VALID = 0b00
    RECOVERABLE = 0b01
    INVALID = 0b10
    INVALID_ALT = 0b11

    @property
    def dereferenceable(self) -> bool:
        return self is Poison.VALID

    @property
    def irrecoverable(self) -> bool:
        return self in (Poison.INVALID, Poison.INVALID_ALT)

    @classmethod
    def from_bits(cls, bits: int) -> "Poison":
        return cls(bits & 0b11)
