"""Per-type layout tables (paper Section 3.4, Figure 9).

A layout table flattens a type's subobject tree into an array of entries
``{parent, base, bound, size}``:

* ``parent`` — index of the enclosing subobject's entry (entry 0 is the
  whole object and is its own parent);
* ``base``/``bound`` — the subobject's byte offsets *relative to the base
  of one element of the parent subobject*;
* ``size`` — the element size: for an array subobject, the size of one
  array element; for anything else, ``bound - base``.  The element count
  of an array is never stored — it is ``(bound - base) / size``.

One table is shared by every object of the same type (the tables are
generated at compile time and are read-only), which is what makes the
scheme memory-efficient.

In-memory encoding (16 bytes per entry, little-endian):

======== ===== ==========================================
offset   width field
======== ===== ==========================================
0        2     parent index (entry 0: total entry count)
2        2     reserved (zero)
4        4     base offset
8        4     bound offset
12       4     element size
======== ===== ==========================================

Entry 0 describes the whole object (``base = 0``, ``bound = size =
sizeof(T)``); storing the entry count in its otherwise-unused parent field
lets the hardware validate subobject indices without a separate header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


#: Size of one serialized layout-table entry.
LAYOUT_ENTRY_BYTES = 16


@dataclass(frozen=True)
class LayoutEntry:
    """One row of a layout table."""

    parent: int  #: index of the parent entry (0 for top-level members)
    base: int    #: start offset within one parent element
    bound: int   #: end offset within one parent element (exclusive)
    size: int    #: element size (== bound - base unless this is an array)

    def __post_init__(self):
        if self.bound < self.base:
            raise ValueError("layout entry bound precedes base")
        if self.size <= 0:
            raise ValueError("layout entry element size must be positive")

    @property
    def is_array(self) -> bool:
        return self.bound - self.base != self.size

    @property
    def element_count(self) -> int:
        return (self.bound - self.base) // self.size


class LayoutTable:
    """A flattened subobject tree for one type.

    ``names`` optionally carries a human-readable path per entry (for
    diagnostics and for the compiler to map member accesses to indices);
    names never reach simulated memory.
    """

    def __init__(self, type_name: str, entries: Sequence[LayoutEntry],
                 names: Optional[Sequence[str]] = None):
        if not entries:
            raise ValueError("layout table must have at least entry 0")
        root = entries[0]
        if root.parent != 0 or root.base != 0:
            raise ValueError("entry 0 must be the whole object")
        if root.bound != root.size:
            raise ValueError("entry 0 must not be an array entry")
        for index, entry in enumerate(entries):
            if index and not (0 <= entry.parent < index):
                raise ValueError(
                    f"entry {index}: parent {entry.parent} must precede it")
        self.type_name = type_name
        self.entries: Tuple[LayoutEntry, ...] = tuple(entries)
        self.names: Tuple[str, ...] = tuple(
            names if names is not None else [""] * len(entries))
        if len(self.names) != len(self.entries):
            raise ValueError("names/entries length mismatch")
        self._index_by_name: Dict[str, int] = {
            name: i for i, name in enumerate(self.names) if name}

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index: int) -> LayoutEntry:
        return self.entries[index]

    @property
    def object_size(self) -> int:
        return self.entries[0].size

    def index_of(self, path: str) -> int:
        """Look up an entry by its generated path name (e.g. ``S.array[].v3``)."""
        return self._index_by_name[path]

    def depth_of(self, index: int) -> int:
        """Nesting depth of an entry (entry 0 has depth 0)."""
        depth = 0
        while index != 0:
            index = self.entries[index].parent
            depth += 1
        return depth

    def chain_of(self, index: int) -> List[int]:
        """Entry indices from the root (exclusive) down to ``index``."""
        chain: List[int] = []
        while index != 0:
            chain.append(index)
            index = self.entries[index].parent
        chain.reverse()
        return chain

    # -- serialization --------------------------------------------------------

    def serialize(self) -> bytes:
        """Encode to the in-memory format described in the module docstring."""
        out = bytearray()
        for index, entry in enumerate(self.entries):
            parent = len(self.entries) if index == 0 else entry.parent
            out += parent.to_bytes(2, "little")
            out += b"\x00\x00"
            out += entry.base.to_bytes(4, "little")
            out += entry.bound.to_bytes(4, "little")
            out += entry.size.to_bytes(4, "little")
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes, type_name: str = "<anon>") -> "LayoutTable":
        """Decode a serialized table (entry count from entry 0's parent field)."""
        if len(data) < LAYOUT_ENTRY_BYTES:
            raise ValueError("layout table data too short")
        count = int.from_bytes(data[0:2], "little")
        if count < 1 or len(data) < count * LAYOUT_ENTRY_BYTES:
            raise ValueError("layout table data truncated")
        entries: List[LayoutEntry] = []
        for index in range(count):
            off = index * LAYOUT_ENTRY_BYTES
            parent = int.from_bytes(data[off:off + 2], "little")
            base = int.from_bytes(data[off + 4:off + 8], "little")
            bound = int.from_bytes(data[off + 8:off + 12], "little")
            size = int.from_bytes(data[off + 12:off + 16], "little")
            entries.append(LayoutEntry(
                parent=0 if index == 0 else parent,
                base=base, bound=bound, size=size))
        return cls(type_name, entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows = ", ".join(
            f"#{i}({e.parent},[{e.base},{e.bound}),{e.size})"
            for i, e in enumerate(self.entries))
        return f"LayoutTable({self.type_name}: {rows})"
