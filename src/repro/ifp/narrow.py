"""Subobject bounds narrowing — the layout-table walk (paper Section 3.4).

Given the object bounds, the pointer's current address and its subobject
index, the walker fetches the indexed layout-table entry and its parent
chain, then resolves bounds top-down:

1. the base case (entry 0) is the object bounds;
2. descending from a parent to a child, if the parent is an *array* entry
   (its span is larger than its element size) the walker first snaps the
   pointer's address to the containing array element — this is the
   multi-cycle division the paper attributes most of the layout walker's
   hardware complexity to;
3. the child's ``[base, bound)`` offsets are then applied relative to that
   element's base.

The walk can fail *softly*: if the subobject index is out of table range,
a parent link is malformed, or the address lies outside the parent span
(so the containing array element cannot be identified), the promote falls
back to the coarsest bounds resolved so far — the paper's guarantee that
incorrectly-typed pointers still get object-granularity protection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ifp.bounds import Bounds
from repro.ifp.config import IFPConfig
from repro.ifp.layout import LAYOUT_ENTRY_BYTES


@dataclass
class NarrowResult:
    """Outcome of one narrowing walk."""

    bounds: Bounds        #: final bounds (subobject, or coarser on failure)
    exact: bool           #: True when narrowing fully resolved the index
    levels_walked: int    #: layout-table levels traversed
    divisions: int        #: array-element divisions performed


#: walk-cache outcome kinds (the fetch phase has three)
_OUT_OF_RANGE = 0   #: subobject index outside the table
_MALFORMED = 1      #: malformed entry at depth ``payload``
_CHAIN = 2          #: valid chain in ``payload``

#: clear-on-full cap bounding host memory for the walk cache (entries
#: are tiny — a fetch trace plus a chain tuple — so the cap is generous)
_WALK_CACHE_CAPACITY = 1 << 14


def _fetch_chain(port, config: IFPConfig, layout_ptr: int,
                 subobject_index: int):
    """The memory-dependent half of the walk: fetch the entry chain.

    Returns ``(kind, payload)``.  Everything here depends only on the
    layout table's bytes (not on the pointer's address), which is what
    makes it cacheable per ``(layout_ptr, subobject_index)``.
    """
    # Entry 0's parent field stores the entry count (see repro.ifp.layout).
    entry_count = port.load(layout_ptr, 2)
    if not (0 < subobject_index < entry_count):
        return _OUT_OF_RANGE, None

    # Fetch the entry chain from the index up to (not including) entry 0.
    chain: List[tuple] = []  # (parent, base, bound, size), leaf first
    index = subobject_index
    while index != 0:
        entry_addr = layout_ptr + index * LAYOUT_ENTRY_BYTES
        parent = port.load(entry_addr, 2)
        base = port.load(entry_addr + 4, 4)
        bound = port.load(entry_addr + 8, 4)
        size = port.load(entry_addr + 12, 4)
        if parent >= index or bound < base or size == 0:
            # Malformed table (hardware validates parent < index to
            # guarantee termination): fail softly to object bounds.
            return _MALFORMED, len(chain)
        chain.append((parent, base, bound, size))
        port.add_cycles(config.narrow_step_cycles)
        index = parent
    return _CHAIN, tuple(chain)


def narrow_bounds(port, config: IFPConfig, layout_ptr: int,
                  object_bounds: Bounds, address: int,
                  subobject_index: int, walk_cache=None,
                  stats=None) -> NarrowResult:
    """Run the layout-table walk.

    ``port`` is the IFP unit's metadata port (loads cost cycles).
    ``subobject_index`` must be non-zero — index 0 means "whole object"
    and the caller skips narrowing entirely in that case.

    ``walk_cache`` (optional) memoizes the chain-fetch phase per
    ``(layout_ptr, subobject_index)``: on a hit the recorded fetch trace
    is replayed through the port (identical cycles/loads/L1 effects), on
    a miss it is recorded.  The resolve phase below always runs live —
    its element divisions depend on the pointer's address.  The caller
    owns invalidation (stores into the layout-table region).
    """
    if walk_cache is not None:
        key = (layout_ptr, subobject_index)
        hit = walk_cache.get(key)
        if hit is not None:
            if stats is not None:
                stats.layout_cache_hits += 1
            kind, trace, extra, payload = hit
            port.replay(trace, extra)
        else:
            if stats is not None:
                stats.layout_cache_misses += 1
            port.begin_trace()
            try:
                kind, payload = _fetch_chain(port, config, layout_ptr,
                                             subobject_index)
            finally:
                trace, extra = port.end_trace()
            if len(walk_cache) >= _WALK_CACHE_CAPACITY:
                walk_cache.clear()
            walk_cache[key] = (kind, trace, extra, payload)
    else:
        kind, payload = _fetch_chain(port, config, layout_ptr,
                                     subobject_index)
    if kind == _OUT_OF_RANGE:
        return NarrowResult(object_bounds, False, 0, 0)
    if kind == _MALFORMED:
        return NarrowResult(object_bounds, False, payload, 0)
    chain = payload

    # Resolve top-down.  (lower, upper, elem_size) describe the current
    # subobject; elem_size < span means it is an array of elements.
    lower, upper = object_bounds.lower, object_bounds.upper
    elem_size = upper - lower
    divisions = 0
    for level, (_parent, base, bound, size) in enumerate(reversed(chain)):
        if elem_size != upper - lower:
            # Parent is an array: identify the containing element.
            if not (lower <= address < upper):
                coarse = Bounds(lower, upper)
                return NarrowResult(coarse, False, level, divisions)
            port.add_cycles(config.divide_cycles)
            divisions += 1
            element = (address - lower) // elem_size
            elem_base = lower + element * elem_size
        else:
            elem_base = lower
        new_lower = elem_base + base
        new_upper = elem_base + bound
        if not (lower <= new_lower and new_upper <= upper + 0):
            # Child escapes the parent span: malformed table.
            return NarrowResult(Bounds(lower, upper), False, level, divisions)
        lower, upper, elem_size = new_lower, new_upper, size
    return NarrowResult(Bounds(lower, upper), True, len(chain), divisions)
