"""Configuration knobs for the In-Fat Pointer hardware design point.

The defaults are the paper's prototype parameters (Section 3.3):

* 16-byte granule, 6-bit offset + 6-bit subobject index for the local
  offset scheme (objects up to ``(2**6 - 1) * 16 = 1008`` bytes, layout
  tables up to 64 entries);
* 16 subheap control registers (4-bit index) + 8-bit subobject index;
* 12-bit global-table index (4096 rows, 16 bytes each), no narrowing;
* 48-bit MAC on local-offset and subheap metadata.

Ablation benchmarks flip the feature switches (``mac_enabled``,
``narrowing_enabled``, ``schemes_enabled``) to quantify each design
choice's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class IFPConfig:
    """Design-point parameters for the IFP hardware."""

    # -- local offset scheme ----------------------------------------------
    granule: int = 16                 #: alignment/offset unit, bytes
    local_offset_bits: int = 6        #: granule-offset field width
    local_subobj_bits: int = 6        #: subobject-index field width

    # -- subheap scheme -----------------------------------------------------
    subheap_reg_bits: int = 4         #: control-register index width
    subheap_subobj_bits: int = 8      #: subobject-index field width
    subheap_metadata_bytes: int = 32  #: common metadata size per block

    # -- global table scheme ------------------------------------------------
    global_index_bits: int = 12       #: table-index field width
    global_row_bytes: int = 16        #: metadata row size

    # -- feature switches (ablations) ---------------------------------------
    mac_enabled: bool = True          #: verify metadata MACs during promote
    narrowing_enabled: bool = True    #: perform subobject bounds narrowing
    #: which schemes the instrumentation may use; the global table is the
    #: universal fallback and must always be present.
    schemes_enabled: Tuple[str, ...] = ("local_offset", "subheap", "global_table")

    # -- temporal lock-and-key (repro.temporal) ------------------------------
    #: generation-key width stolen from the *top* bits of each scheme's
    #: subobject/index field (0 = no temporal tagging; the spatial layout
    #: is bit-for-bit the paper's).  With k bits reserved, the usable
    #: subobject/index widths shrink by k — the tag-bit budget trade-off
    #: quantified in DESIGN §11.
    temporal_key_bits: int = 0

    # -- timing (cycles), mirroring the prototype's multi-cycle units -------
    promote_base_cycles: int = 2      #: dispatch + poison/selector decode
    mac_cycles: int = 3               #: MAC recompute during promote
    narrow_step_cycles: int = 2       #: per layout-table level walked
    divide_cycles: int = 8            #: array-element division in the walker
    #: slot-index division in the subheap lookup: slot sizes are
    #: constrained to be hardware-division-friendly (Section 3.3.2), so
    #: this is much cheaper than the walker's general division
    slot_divide_cycles: int = 2

    # -- derived limits ------------------------------------------------------

    @property
    def local_max_object(self) -> int:
        """Largest object the local offset scheme supports, in bytes."""
        return ((1 << self.local_offset_bits) - 1) * self.granule

    @property
    def local_max_layout_entries(self) -> int:
        return 1 << (self.local_subobj_bits - self.temporal_key_bits)

    @property
    def subheap_register_count(self) -> int:
        return 1 << self.subheap_reg_bits

    @property
    def subheap_max_layout_entries(self) -> int:
        return 1 << (self.subheap_subobj_bits - self.temporal_key_bits)

    @property
    def global_table_rows(self) -> int:
        return 1 << (self.global_index_bits - self.temporal_key_bits)

    def validate(self) -> None:
        """Sanity-check that the fields fit the 12-bit tag payload."""
        if self.local_offset_bits + self.local_subobj_bits != 12:
            raise ValueError("local offset scheme fields must total 12 bits")
        if self.subheap_reg_bits + self.subheap_subobj_bits != 12:
            raise ValueError("subheap scheme fields must total 12 bits")
        if self.global_index_bits != 12:
            raise ValueError("global table index must be 12 bits")
        if self.granule <= 0 or self.granule & (self.granule - 1):
            raise ValueError("granule must be a power of two")
        if "global_table" not in self.schemes_enabled:
            raise ValueError("the global table scheme is the mandatory fallback")
        if not (0 <= self.temporal_key_bits
                < min(self.local_subobj_bits, self.subheap_subobj_bits,
                      self.global_index_bits)):
            raise ValueError(
                "temporal_key_bits must leave at least one usable bit in "
                "every subobject/index field")


#: The paper's prototype design point.
DEFAULT_CONFIG = IFPConfig()
