"""Delta-debugging source minimizer (ddmin over lines).

The classic Zeller/Hildebrandt ddmin loop specialised to program text:
remove ever-smaller chunks of lines while a caller-supplied *failure
predicate* keeps holding.  Candidates that no longer compile simply fail
the predicate (the oracle raises, the wrapper returns ``False``), so the
minimizer needs no language knowledge — brace-unbalanced candidates are
rejected the same way a semantically-changed one is.

The predicate receives the candidate *source text* and must return True
exactly when the candidate still exhibits the original failure.  A
budget caps predicate evaluations so pathological cases cannot stall a
fuzzing run.
"""

from __future__ import annotations

from typing import Callable, List


def _chunks(items: List[str], n: int) -> List[List[str]]:
    """Split ``items`` into ``n`` roughly equal contiguous chunks."""
    size, rem = divmod(len(items), n)
    out: List[List[str]] = []
    start = 0
    for index in range(n):
        end = start + size + (1 if index < rem else 0)
        if end > start:
            out.append(items[start:end])
        start = end
    return out


def ddmin_lines(lines: List[str],
                predicate: Callable[[List[str]], bool],
                max_checks: int = 400) -> List[str]:
    """Minimise ``lines`` while ``predicate(lines)`` stays True.

    Returns a (locally) 1-minimal list: removing any single remaining
    line breaks the predicate (up to the evaluation budget).
    """
    checks = [0]

    def holds(candidate: List[str]) -> bool:
        if checks[0] >= max_checks:
            return False
        checks[0] += 1
        return predicate(candidate)

    if not holds(lines):
        raise ValueError("ddmin: predicate does not hold on the input")

    n = 2
    while len(lines) >= 2 and checks[0] < max_checks:
        parts = _chunks(lines, min(n, len(lines)))
        reduced = False
        # First try keeping single chunks (big cuts), then removing them.
        for chunk in parts:
            if len(chunk) < len(lines) and holds(chunk):
                lines = chunk
                n = 2
                reduced = True
                break
        if not reduced:
            for index in range(len(parts)):
                candidate = [line for i, part in enumerate(parts)
                             if i != index for line in part]
                if candidate and holds(candidate):
                    lines = candidate
                    n = max(n - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if n >= len(lines):
                break
            n = min(len(lines), n * 2)
    return lines


def minimize_source(source: str,
                    predicate: Callable[[str], bool],
                    max_checks: int = 400) -> str:
    """Minimise program text with a text-level failure predicate.

    Wraps :func:`ddmin_lines`; any exception from the predicate counts
    as "failure not reproduced" so compile errors on mangled candidates
    are handled for free.
    """

    def line_predicate(lines: List[str]) -> bool:
        try:
            return predicate("\n".join(lines) + "\n")
        except Exception:
            return False

    lines = [line for line in source.splitlines()]
    return "\n".join(ddmin_lines(lines, line_predicate, max_checks)) + "\n"
