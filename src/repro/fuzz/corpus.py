"""Failing-case persistence and verbatim replay.

Every oracle failure is written to the corpus directory as three files:

* ``<name>.c``       — the minimized program,
* ``<name>.orig.c``  — the unminimized program as generated/mutated,
* ``<name>.json``    — machine-readable metadata: the master seed,
  iteration, derived iteration seed, the attack and site (when the
  failure came from an injected attack), the configurations involved,
  and a one-line reproduction command.

The iteration seed makes replay *verbatim*: regenerating with the saved
``(seed, iteration)`` reproduces the identical source (checked against
the saved SHA-256 during ``python -m repro.fuzz --replay``).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Default corpus location (repo-relative).
DEFAULT_CORPUS_DIR = "corpus"


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


@dataclass
class CorpusEntry:
    """One persisted failure."""

    name: str
    kind: str                #: divergence kind (oracle vocabulary)
    detail: str
    seed: int                #: master seed of the fuzzing run
    iteration: int
    iteration_seed: int      #: derived seed (verbatim regeneration)
    configs: List[str]
    source_sha256: str       #: digest of the *original* source
    repro: str               #: one-line reproduction command
    config: Optional[str] = None
    attack: Optional[Dict[str, object]] = None
    site: Optional[Dict[str, object]] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name, "kind": self.kind, "detail": self.detail,
            "seed": self.seed, "iteration": self.iteration,
            "iteration_seed": self.iteration_seed,
            "configs": self.configs,
            "source_sha256": self.source_sha256, "repro": self.repro,
            "config": self.config, "attack": self.attack,
            "site": self.site, "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CorpusEntry":
        return cls(
            name=data["name"], kind=data["kind"], detail=data["detail"],
            seed=data["seed"], iteration=data["iteration"],
            iteration_seed=data["iteration_seed"],
            configs=list(data["configs"]),
            source_sha256=data["source_sha256"], repro=data["repro"],
            config=data.get("config"), attack=data.get("attack"),
            site=data.get("site"), extra=dict(data.get("extra") or {}))


def save_failure(corpus_dir: str, entry: CorpusEntry, original: str,
                 minimized: Optional[str] = None) -> str:
    """Persist one failure; returns the path of the JSON metadata file."""
    os.makedirs(corpus_dir, exist_ok=True)
    base = os.path.join(corpus_dir, entry.name)
    with open(base + ".orig.c", "w") as handle:
        handle.write(original)
    with open(base + ".c", "w") as handle:
        handle.write(minimized if minimized is not None else original)
    path = base + ".json"
    with open(path, "w") as handle:
        json.dump(entry.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_entry(path: str) -> CorpusEntry:
    with open(path) as handle:
        return CorpusEntry.from_dict(json.load(handle))


def entry_name(kind: str, seed: int, iteration: int, digest: str) -> str:
    return f"{kind}-s{seed}-i{iteration}-{digest[:8]}"
