"""Differential fuzzing & attack injection for the IFP pipeline.

The paper's functional claims are two-sided:

* *transparency* — correct programs behave identically under every
  build (baseline, subheap, wrapped, and the no-promote ablations) and
  never trap;
* *detection* — spatial violations trap in every instrumented build, at
  subobject granularity whenever a layout table and a subobject-capable
  tag scheme are available, degrading to object granularity exactly
  where Table 4 / Section 3 say they must (alloc-wrapper objects,
  global-table scheme).

This package stress-tests both sides generatively:

==============  ======================================================
module          role
==============  ======================================================
`generator`     seeded random well-typed mini-C programs covering the
                whole surface (nested structs, arrays-of-structs,
                pointer arithmetic, stack/heap/global objects,
                alloc wrappers, legacy libc calls, function pointers)
`oracle`        differential no-trap / same-answer check across
                configurations (reuses the Sweep machinery)
`attacks`       mutates a program at a known access site and scores
                per-configuration trap expectations
`minimize`      delta-debugging (ddmin) source shrinker
`corpus`        failing-case persistence + verbatim seed replay
`driver`        the ``python -m repro.fuzz`` CLI and run statistics
==============  ======================================================
"""

from repro.fuzz.generator import (
    AccessSite, GeneratedProgram, ProgramSpec, generate_program,
    iteration_seed, render,
)
from repro.fuzz.attacks import (
    Attack, EXPECT_MAY, EXPECT_TRAP, EXPECT_NO_TRAP, attacks_for,
    expectation,
)
from repro.fuzz.oracle import (
    AttackVerdict, Divergence, check_attack, check_clean, run_program,
)
from repro.fuzz.minimize import ddmin_lines, minimize_source
from repro.fuzz.corpus import CorpusEntry, load_entry, save_failure
from repro.fuzz.driver import FuzzStats, run_fuzz

__all__ = [
    "AccessSite", "GeneratedProgram", "ProgramSpec", "generate_program",
    "iteration_seed", "render",
    "Attack", "EXPECT_MAY", "EXPECT_TRAP", "EXPECT_NO_TRAP",
    "attacks_for", "expectation",
    "AttackVerdict", "Divergence", "check_attack", "check_clean",
    "run_program",
    "ddmin_lines", "minimize_source",
    "CorpusEntry", "load_entry", "save_failure",
    "FuzzStats", "run_fuzz",
]
