"""Attack injection: mutate one access site, predict per-config traps.

An :class:`Attack` replaces the in-bounds index of one
:class:`~repro.fuzz.generator.AccessSite` with a violating one.  Four
kinds are injected, chosen by what the site's shape allows:

===========  ==========================================================
kind         meaning
===========  ==========================================================
over         one element past the *whole object* (classic overflow /
             over-read; CWE-121/122/126)
under        one element before the object (underwrite / under-read;
             CWE-124/127)
intra        past the accessed member but inside the object — the
             paper's Listing 1 intra-object overflow
intra_under  before the accessed member but inside the object
===========  ==========================================================

``expectation`` encodes the paper's detection semantics per
configuration:

* ``baseline`` never traps (no instrumentation);
* the ``-np`` ablations give no guarantee (promote produces no bounds,
  so only compile-time bounds still check) — scored ``may``;
* ``subheap`` / ``wrapped`` must trap on every object-granularity
  violation, and on intra-object violations exactly when the site is
  *narrowable*: alloc-wrapper objects carry no layout table and
  global-table tags have no subobject bits (Table 4 / Section 3), so
  those intra attacks must run **silently** — the expected-evasion rows
  of the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.fuzz.generator import AccessSite

EXPECT_TRAP = "must_trap"
EXPECT_NO_TRAP = "must_not_trap"
EXPECT_MAY = "may_trap"

#: Configurations whose behaviour the oracle asserts (vs. just records).
INSTRUMENTED_STRICT = ("subheap", "wrapped")


@dataclass(frozen=True)
class Attack:
    """One injected violation at one access site."""

    sid: int
    kind: str        #: 'over' | 'under' | 'intra' | 'intra_under'
    index: int       #: the mutated index
    description: str

    def to_dict(self) -> Dict[str, object]:
        return {"sid": self.sid, "kind": self.kind, "index": self.index,
                "description": self.description}


def attacks_for(site: AccessSite) -> List[Attack]:
    """Every attack kind this site's shape supports."""
    out: List[Attack] = []
    beyond = site.object_elems - site.member_offset_elems
    is_member = site.member_offset_elems > 0 \
        or site.length < site.object_elems
    what = f"{site.kind} via {site.flow} on {site.obj} ({site.region})"
    out.append(Attack(site.sid, "over", beyond,
                      f"one-past-object {what}"))
    if site.member_offset_elems > 0:
        out.append(Attack(site.sid, "intra_under", -1,
                          f"before-member (inside object) {what}"))
    else:
        out.append(Attack(site.sid, "under", -1,
                          f"one-before-object {what}"))
    if is_member and site.intra_room > 0:
        out.append(Attack(site.sid, "intra", site.length,
                          f"past-member (inside object) {what}"))
    return out


def expectation(site: AccessSite, attack: Attack, config: str) -> str:
    """The oracle's verdict key for ``attack`` under ``config``."""
    if config == "baseline":
        return EXPECT_NO_TRAP
    if config not in INSTRUMENTED_STRICT:
        return EXPECT_MAY            # ablations and unknown configs
    if attack.kind in ("over", "under"):
        return EXPECT_TRAP
    # intra / intra_under: subobject granularity needed
    return EXPECT_TRAP if site.narrowable else EXPECT_NO_TRAP


def expectation_map(site: AccessSite, attack: Attack,
                    configs: List[str]) -> Dict[str, str]:
    return {config: expectation(site, attack, config)
            for config in configs}
