"""Attack injection: mutate one access site, predict per-config traps.

An :class:`Attack` replaces the in-bounds index of one
:class:`~repro.fuzz.generator.AccessSite` with a violating one.  Four
kinds are injected, chosen by what the site's shape allows:

===========  ==========================================================
kind         meaning
===========  ==========================================================
over         one element past the *whole object* (classic overflow /
             over-read; CWE-121/122/126)
under        one element before the object (underwrite / under-read;
             CWE-124/127)
intra        past the accessed member but inside the object — the
             paper's Listing 1 intra-object overflow
intra_under  before the accessed member but inside the object
===========  ==========================================================

``expectation`` encodes the paper's detection semantics per
configuration:

* ``baseline`` never traps (no instrumentation);
* the ``-np`` ablations give no guarantee (promote produces no bounds,
  so only compile-time bounds still check) — scored ``may``;
* ``subheap`` / ``wrapped`` must trap on every object-granularity
  violation, and on intra-object violations exactly when the site is
  *narrowable*: alloc-wrapper objects carry no layout table and
  global-table tags have no subobject bits (Table 4 / Section 3), so
  those intra attacks must run **silently** — the expected-evasion rows
  of the oracle.

When a campaign runs with the lock-and-key policy armed
(``temporal != 'off'``), three *temporal* attack kinds join the pool
for plain heap-array sites (``AccessSite.temporal_ok``):

=============  ========================================================
kind           meaning
=============  ========================================================
uaf            access through the pointer after ``free`` (CWE-416)
double_free    ``free`` the same allocation twice (CWE-415)
realloc_stale  access through the pre-``realloc`` pointer (CWE-416)
=============  ========================================================

Their expectations depend on the policy: strict configs must raise
:class:`~repro.errors.TemporalViolation` under ``check``/``quarantine``
and must stay silent on use-after-free with the policy ``off`` (the
allocator may still catch a double free on its own — scored ``may``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.fuzz.generator import AccessSite

EXPECT_TRAP = "must_trap"
EXPECT_NO_TRAP = "must_not_trap"
EXPECT_MAY = "may_trap"

#: Configurations whose behaviour the oracle asserts (vs. just records).
INSTRUMENTED_STRICT = ("subheap", "wrapped")

#: Attack kinds that violate object *lifetime* rather than bounds.
TEMPORAL_KINDS = ("uaf", "double_free", "realloc_stale")

#: CWE family per temporal kind (reporting only).
TEMPORAL_CWE = {"uaf": "CWE-416", "double_free": "CWE-415",
                "realloc_stale": "CWE-416"}


@dataclass(frozen=True)
class Attack:
    """One injected violation at one access site."""

    sid: int
    kind: str        #: 'over' | 'under' | 'intra' | 'intra_under'
    #: | one of :data:`TEMPORAL_KINDS`
    index: int       #: the mutated index (for temporal kinds: the
    #: site's safe index — the access stays in-bounds)
    description: str

    def to_dict(self) -> Dict[str, object]:
        return {"sid": self.sid, "kind": self.kind, "index": self.index,
                "description": self.description}


def attacks_for(site: AccessSite,
                include_temporal: bool = False) -> List[Attack]:
    """Every attack kind this site's shape supports.

    ``include_temporal`` adds the lifetime attacks for sites that can
    carry them; campaigns running with ``temporal='off'`` keep it False
    so their iteration streams (and corpus digests) stay byte-identical
    to historical runs.
    """
    out: List[Attack] = []
    beyond = site.object_elems - site.member_offset_elems
    is_member = site.member_offset_elems > 0 \
        or site.length < site.object_elems
    what = f"{site.kind} via {site.flow} on {site.obj} ({site.region})"
    out.append(Attack(site.sid, "over", beyond,
                      f"one-past-object {what}"))
    if site.member_offset_elems > 0:
        out.append(Attack(site.sid, "intra_under", -1,
                          f"before-member (inside object) {what}"))
    else:
        out.append(Attack(site.sid, "under", -1,
                          f"one-before-object {what}"))
    if is_member and site.intra_room > 0:
        out.append(Attack(site.sid, "intra", site.length,
                          f"past-member (inside object) {what}"))
    if include_temporal and site.temporal_ok:
        base = f"on {site.obj} ({site.region})"
        out.append(Attack(site.sid, "uaf", site.safe_index,
                          f"use-after-free read {base}"))
        out.append(Attack(site.sid, "double_free", site.safe_index,
                          f"double free {base}"))
        out.append(Attack(site.sid, "realloc_stale", site.safe_index,
                          f"stale pre-realloc pointer read {base}"))
    return out


def expectation(site: AccessSite, attack: Attack, config: str,
                temporal: str = "off") -> str:
    """The oracle's verdict key for ``attack`` under ``config``."""
    if attack.kind in TEMPORAL_KINDS:
        return _temporal_expectation(attack, config, temporal)
    if config == "baseline":
        return EXPECT_NO_TRAP
    if config not in INSTRUMENTED_STRICT:
        return EXPECT_MAY            # ablations and unknown configs
    if attack.kind in ("over", "under"):
        return EXPECT_TRAP
    # intra / intra_under: subobject granularity needed
    return EXPECT_TRAP if site.narrowable else EXPECT_NO_TRAP


def _temporal_expectation(attack: Attack, config: str,
                          temporal: str) -> str:
    if config == "baseline":
        # No lock-and-key, but the model allocator may still notice a
        # structurally impossible second free on its own.
        return EXPECT_MAY if attack.kind == "double_free" \
            else EXPECT_NO_TRAP
    if config not in INSTRUMENTED_STRICT:
        # -np ablations: allocation-time bounds still carry keys, but
        # promote produces none, so detection depends on the flow.
        return EXPECT_MAY
    if temporal in ("check", "quarantine"):
        return EXPECT_TRAP
    # Policy off: use-after-free must run silently (that *is* the gap
    # the lock-and-key scheme exists to close); a double free may still
    # be caught by allocator metadata (InvalidFree).
    return EXPECT_MAY if attack.kind == "double_free" \
        else EXPECT_NO_TRAP


def expectation_map(site: AccessSite, attack: Attack,
                    configs: List[str],
                    temporal: str = "off") -> Dict[str, str]:
    return {config: expectation(site, attack, config, temporal)
            for config in configs}
