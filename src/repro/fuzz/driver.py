"""The fuzzing driver: the loop behind ``python -m repro.fuzz``.

Each iteration derives a fresh seed from ``(master seed, iteration)``,
generates one program, and runs up to two phases:

1. **transparency** (unless ``--inject-only``): the clean program must
   run trap-free with identical (stdout, exit code) under every
   selected configuration;
2. **attack injection** (unless ``--no-inject``): a sample of the
   program's access sites is mutated and each mutant's per-config trap
   behaviour is matched against the paper's detection semantics.

Any oracle failure is delta-minimized, persisted to the corpus with a
seed that regenerates the program verbatim, and reported with a
one-line reproduction command.  The driver exits non-zero when any
failure occurred — the CI contract.
"""

from __future__ import annotations

import os
import random
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.fuzz.attacks import Attack, TEMPORAL_KINDS, attacks_for
from repro.fuzz.corpus import (
    CorpusEntry, DEFAULT_CORPUS_DIR, entry_name, save_failure,
    source_digest,
)
from repro.fuzz.generator import (
    GeneratedProgram, generate_program, iteration_seed, render,
)
from repro.fuzz.minimize import minimize_source
from repro.fuzz.oracle import (
    SPATIAL_TRAPS, AttackVerdict, Divergence, accepted_traps,
    capture_trap_forensics, check_attack, check_clean, run_program,
)

#: divergence kinds whose failing run ends in a trap — the ones a
#: forensics dump can diagnose
_TRAP_KINDS = ("false_positive", "unexpected_trap", "wrong_trap_class")

DEFAULT_CONFIGS = ["baseline", "subheap", "wrapped", "subheap-np"]


@dataclass
class FailureRecord:
    """One failure, as reported to the user / CI."""

    entry: CorpusEntry
    json_path: str
    minimized_lines: int
    original_lines: int
    #: trap-forensics dump written next to the corpus entry, if any
    forensics_path: str = ""

    def to_dict(self) -> dict:
        return {
            "entry": self.entry.to_dict(),
            "json_path": self.json_path,
            "minimized_lines": self.minimized_lines,
            "original_lines": self.original_lines,
            "forensics_path": self.forensics_path,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureRecord":
        return cls(entry=CorpusEntry.from_dict(data["entry"]),
                   json_path=data["json_path"],
                   minimized_lines=data["minimized_lines"],
                   original_lines=data["original_lines"],
                   forensics_path=data.get("forensics_path", ""))


@dataclass
class FuzzStats:
    """Per-run accounting, printed by the CLI summary."""

    seed: int = 0
    iterations: int = 0
    configs: List[str] = field(default_factory=list)
    #: lock-and-key policy the campaign ran with (off/check/quarantine)
    temporal: str = "off"
    programs: int = 0
    executions: int = 0
    clean_runs: int = 0
    attack_runs: int = 0
    attacks_injected: int = 0
    attacks_detectable: int = 0
    attacks_detected: int = 0
    expected_evasions: int = 0
    evasions_confirmed: int = 0
    #: iterations re-run with a derived seed after a wall-clock timeout
    reseed_retries: int = 0
    #: iterations abandoned after exhausting their retry budget
    timeouts: int = 0
    #: (config, trap class) -> count, over attack runs
    trap_histogram: Counter = field(default_factory=Counter)
    failures: List[FailureRecord] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def divergences(self) -> int:
        return len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"repro.fuzz: {self.iterations} iterations, "
            f"seed {self.seed}"
            + (f", temporal={self.temporal}"
               if self.temporal != "off" else ""),
            f"  configs            : {', '.join(self.configs)}",
            f"  programs generated : {self.programs}",
            f"  executions         : {self.executions} "
            f"(clean {self.clean_runs}, attack {self.attack_runs})",
            f"  attacks injected   : {self.attacks_injected} "
            f"(detectable {self.attacks_detectable}, "
            f"expected-evasion {self.expected_evasions})",
            f"  detected           : {self.attacks_detected}"
            f"/{self.attacks_detectable}",
            f"  evasions confirmed : {self.evasions_confirmed}"
            f"/{self.expected_evasions}",
            f"  divergences        : {self.divergences}",
        ]
        if self.reseed_retries or self.timeouts:
            lines.append(f"  timeout recovery   : "
                         f"{self.reseed_retries} reseed retries, "
                         f"{self.timeouts} iterations abandoned")
        if self.trap_histogram:
            lines.append("  trap histogram     :")
            for (config, trap), count in sorted(
                    self.trap_histogram.items()):
                lines.append(f"    {config:12s} {trap:14s} {count:5d}")
        if self.elapsed > 0:
            lines.append(
                f"  throughput         : "
                f"{self.programs / self.elapsed:.2f} programs/s, "
                f"{self.executions / self.elapsed:.1f} runs/s "
                f"({self.elapsed:.1f}s)")
        for record in self.failures:
            lines.append(f"  FAILURE {record.entry.name}: "
                         f"{record.entry.kind} — {record.entry.detail}")
            lines.append(f"    minimized {record.original_lines} -> "
                         f"{record.minimized_lines} lines; "
                         f"repro: {record.entry.repro}")
            if record.forensics_path:
                lines.append(f"    forensics: {record.forensics_path}")
        return "\n".join(lines)

    def metrics(self) -> dict:
        """Schema-v1 ``metrics`` payload (see :mod:`repro.obs.metrics`)."""
        elapsed = self.elapsed or 1e-9
        return {
            "iterations": self.iterations,
            "programs": self.programs,
            "executions": self.executions,
            "clean_runs": self.clean_runs,
            "attack_runs": self.attack_runs,
            "attacks_injected": self.attacks_injected,
            "attacks_detectable": self.attacks_detectable,
            "attacks_detected": self.attacks_detected,
            "expected_evasions": self.expected_evasions,
            "evasions_confirmed": self.evasions_confirmed,
            "divergences": self.divergences,
            "reseed_retries": self.reseed_retries,
            "timeouts": self.timeouts,
            "elapsed_seconds": self.elapsed,
            "programs_per_second": self.programs / elapsed,
            "executions_per_second": self.executions / elapsed,
            "trap_histogram": {
                f"{config}/{trap}": count
                for (config, trap), count
                in sorted(self.trap_histogram.items())},
        }

    def to_dict(self) -> dict:
        """Full JSON form — lossless (unlike :meth:`metrics`, which is
        the schema-v1 numeric subset).  The shape parallel shard
        results travel in and checkpoints persist."""
        return {
            "seed": self.seed, "iterations": self.iterations,
            "configs": list(self.configs), "temporal": self.temporal,
            "programs": self.programs,
            "executions": self.executions,
            "clean_runs": self.clean_runs,
            "attack_runs": self.attack_runs,
            "attacks_injected": self.attacks_injected,
            "attacks_detectable": self.attacks_detectable,
            "attacks_detected": self.attacks_detected,
            "expected_evasions": self.expected_evasions,
            "evasions_confirmed": self.evasions_confirmed,
            "reseed_retries": self.reseed_retries,
            "timeouts": self.timeouts,
            "trap_histogram": [
                [config, trap, count]
                for (config, trap), count
                in sorted(self.trap_histogram.items())],
            "failures": [record.to_dict()
                         for record in self.failures],
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzStats":
        stats = cls(
            seed=data["seed"], iterations=data["iterations"],
            configs=list(data["configs"]),
            # absent in checkpoints/manifests written before the
            # temporal policy existed
            temporal=data.get("temporal", "off"),
            programs=data["programs"],
            executions=data["executions"],
            clean_runs=data["clean_runs"],
            attack_runs=data["attack_runs"],
            attacks_injected=data["attacks_injected"],
            attacks_detectable=data["attacks_detectable"],
            attacks_detected=data["attacks_detected"],
            expected_evasions=data["expected_evasions"],
            evasions_confirmed=data["evasions_confirmed"],
            reseed_retries=data["reseed_retries"],
            timeouts=data["timeouts"], elapsed=data["elapsed"])
        for config, trap, count in data["trap_histogram"]:
            stats.trap_histogram[(config, trap)] = count
        stats.failures = [FailureRecord.from_dict(record)
                          for record in data["failures"]]
        return stats


# ---------------------------------------------------------------------------
# Failure predicates for the minimizer
# ---------------------------------------------------------------------------

def _false_positive_predicate(config: str,
                              temporal: str = "off",
                              ) -> Callable[[str], bool]:
    def predicate(source: str) -> bool:
        return run_program(source, config,
                           temporal=temporal).trap is not None
    return predicate


def _divergence_predicate(configs: List[str],
                          temporal: str = "off",
                          ) -> Callable[[str], bool]:
    def predicate(source: str) -> bool:
        seen = set()
        for config in configs:
            result = run_program(source, config, temporal=temporal)
            if result.trap is not None:
                return False
            seen.add((result.output, result.exit_code))
        return len(seen) > 1
    return predicate


def _missed_attack_predicate(config: str, needle: str,
                             accepted: Tuple[str, ...] = SPATIAL_TRAPS,
                             temporal: str = "off",
                             ) -> Callable[[str], bool]:
    """The attack access must survive minimization, yet stay silent."""
    def predicate(source: str) -> bool:
        if needle not in source:
            return False
        result = run_program(source, config, temporal=temporal)
        return result.trap is None \
            or type(result.trap).__name__ not in accepted
    return predicate


def _attack_needle(source: str, attack: Attack) -> str:
    """A line that must survive minimization of an attack failure: the
    first line mentioning the mutated index — or, for a temporal
    attack, the first ``free`` of the epilogue (the only frees in an
    attacked render; cleanup frees are suppressed)."""
    if attack.kind in TEMPORAL_KINDS:
        for line in source.splitlines():
            if "free(" in line:
                return line.strip()
        return ""
    probes = (f"[{attack.index}]", f"({attack.index})", f"{attack.index};")
    for line in source.splitlines():
        if any(probe in line for probe in probes):
            return line.strip()
    return ""


def _predicate_for(divergence: Divergence, configs: List[str],
                   attack: Optional[Attack],
                   source: str,
                   temporal: str = "off",
                   ) -> Optional[Callable[[str], bool]]:
    if divergence.kind in ("false_positive", "unexpected_trap",
                           "wrong_trap_class"):
        return _false_positive_predicate(divergence.config, temporal) \
            if divergence.config else None
    if divergence.kind == "output_divergence":
        return _divergence_predicate(
            [c for c in configs if not c.endswith("-np")] or configs,
            temporal)
    if divergence.kind == "missed_attack" and divergence.config \
            and attack is not None:
        needle = _attack_needle(source, attack)
        if needle:
            return _missed_attack_predicate(
                divergence.config, needle,
                accepted=accepted_traps(attack), temporal=temporal)
    return None


# ---------------------------------------------------------------------------
# The driver loop
# ---------------------------------------------------------------------------

def _record_failure(stats: FuzzStats, *, kind: str, detail: str,
                    config: Optional[str], seed: int, iteration: int,
                    configs: List[str], source: str,
                    attack: Optional[Attack], site_dict: Optional[dict],
                    corpus_dir: str, minimize: bool,
                    predicate: Optional[Callable[[str], bool]],
                    log: Callable[[str], None],
                    trace: Optional[dict] = None,
                    temporal: str = "off") -> None:
    digest = source_digest(source)
    name = entry_name(kind, seed, iteration, digest)
    # One corpus entry per (kind, program): the same planted bug seen by
    # several configurations would otherwise overwrite the same files
    # and triple-report in the summary.
    if any(record.entry.name == name for record in stats.failures):
        return
    minimized = source
    if minimize and predicate is not None:
        try:
            minimized = minimize_source(source, predicate)
        except ValueError:
            minimized = source      # not reproducible in isolation
    # Trap forensics for the minimized reproducer: the corpus entry
    # ships with its own diagnosis (tag anatomy, tripping bounds, trace
    # tail) so a failure is debuggable without re-running anything.
    forensics = None
    if config and kind in _TRAP_KINDS:
        forensics = capture_trap_forensics(minimized, config,
                                           trace=trace,
                                           temporal=temporal)
    repro = (f"PYTHONPATH=src python -m repro.fuzz --seed {seed} "
             f"--start {iteration} --iterations 1 "
             f"--configs {','.join(configs)}")
    if temporal != "off":
        repro += f" --temporal {temporal}"
    entry = CorpusEntry(
        name=name, kind=kind, detail=detail, seed=seed,
        iteration=iteration,
        iteration_seed=iteration_seed(seed, iteration),
        configs=list(configs), source_sha256=source_digest(source),
        repro=repro, config=config,
        attack=attack.to_dict() if attack else None, site=site_dict,
        extra={**({"forensics": name + ".forensics.txt"} if forensics
                  else {}),
               **({"temporal": temporal} if temporal != "off"
                  else {})})
    json_path = save_failure(corpus_dir, entry, source, minimized)
    forensics_path = ""
    if forensics is not None:
        forensics_path = forensics.write(
            os.path.join(corpus_dir, name + ".forensics.txt"))
    stats.failures.append(FailureRecord(
        entry=entry, json_path=json_path,
        minimized_lines=len(minimized.splitlines()),
        original_lines=len(source.splitlines()),
        forensics_path=forensics_path))
    log(f"[repro.fuzz] FAILURE {kind} at iteration {iteration}: "
        f"{detail}")
    log(f"[repro.fuzz]   saved {json_path}; repro: {repro}")
    if forensics_path:
        log(f"[repro.fuzz]   forensics: {forensics_path}")


def _plant_bug_program(program: GeneratedProgram, rng: random.Random):
    """Self-test: return an *attacked* render (plus the attack and its
    site) that the driver will feed to the clean-program oracle — a
    guaranteed, honest-to-diagnose failure exercising minimization and
    corpus persistence."""
    sites = program.sites
    site = rng.choice(sites)
    candidates = attacks_for(site)
    overs = [a for a in candidates if a.kind == "over"]
    attack = overs[0] if overs else candidates[0]
    return render(program.spec, (attack.sid, attack.index)), attack, site


def run_fuzz(iterations: int, seed: int = 0,
             configs: Optional[List[str]] = None,
             start: int = 0,
             clean: bool = True, inject: bool = True,
             corpus_dir: str = DEFAULT_CORPUS_DIR,
             minimize: bool = True,
             max_attacks_per_program: int = 2,
             plant_bug: bool = False,
             log: Optional[Callable[[str], None]] = None,
             progress_every: int = 25,
             timeout_seconds: Optional[float] = None,
             retries: int = 2,
             backoff_base: float = 0.1,
             engine: str = "auto",
             trace: Optional[dict] = None,
             temporal: str = "off") -> FuzzStats:
    """Run the fuzzing loop; returns the run's :class:`FuzzStats`.

    ``engine`` selects the execution engine for every oracle run
    (auto/fastpath/superblock/reference); engines are byte-identical in
    every simulated observable, so fuzz verdicts never depend on this knob —
    it only changes host throughput.  Both engines run instrumented
    (the fastpath compiles inline emit sites), so observation never
    forces the slow engine either.

    ``trace`` (the dict form of a :class:`~repro.obs.TraceContext`,
    injected by a correlated :mod:`repro.par` pool run) stamps every
    forensics report this campaign writes with its (tenant, job,
    shard, seed) correlation ids; it never influences verdicts.

    ``timeout_seconds`` arms the per-execution wall-clock watchdog; an
    iteration whose program times out is retried up to ``retries``
    times, each attempt with a deterministically derived seed
    (:func:`repro.resil.derive_seed` — a genuinely hanging program
    would just hang again) and exponential backoff.  An iteration that
    exhausts its budget is counted in ``stats.timeouts`` and skipped;
    corpus entries record the *effective* seed so replays stay exact.

    ``temporal`` (off/check/quarantine) arms the lock-and-key policy on
    every oracle machine *and* widens the attack pool with the temporal
    kinds (use-after-free, double free, stale realloc pointer) for
    sites that support them.  With the default "off" the iteration
    stream is byte-identical to historical campaigns.
    """
    from repro.errors import WorkloadTimeout
    from repro.resil.retry import call_with_retry, derive_seed

    configs = list(configs) if configs else list(DEFAULT_CONFIGS)
    log = log or (lambda message: print(message))
    stats = FuzzStats(seed=seed, iterations=iterations, configs=configs,
                      temporal=temporal)
    started = time.monotonic()

    def one_iteration(iteration: int, iter_seed: int,
                      allow_plant: bool) -> None:
        program = generate_program(iter_seed, iteration)
        stats.programs += 1
        rng = random.Random(iteration_seed(iter_seed, iteration)
                            ^ 0xA77AC4)

        if clean:
            source = program.source
            planted = plant_bug and allow_plant
            planted_attack = planted_site = None
            if planted:
                source, planted_attack, planted_site = \
                    _plant_bug_program(program, rng)
            runs, divergences = check_clean(
                source, configs, name=f"fuzz-i{iteration}",
                timeout_seconds=timeout_seconds, engine=engine,
                temporal=temporal)
            stats.clean_runs += len(configs)
            stats.executions += len(configs)
            for divergence in divergences:
                _record_failure(
                    stats, kind=divergence.kind,
                    detail=divergence.detail
                    + (" (planted via --plant-bug)" if planted else ""),
                    config=divergence.config, seed=iter_seed,
                    iteration=iteration, configs=configs, source=source,
                    attack=planted_attack,
                    site_dict=planted_site.to_dict()
                    if planted_site else None, corpus_dir=corpus_dir,
                    minimize=minimize,
                    predicate=_predicate_for(divergence, configs, None,
                                             source, temporal),
                    log=log, trace=trace, temporal=temporal)

        if inject and program.sites:
            sites = list(program.sites)
            rng.shuffle(sites)
            for site in sites[:max_attacks_per_program]:
                attack = rng.choice(attacks_for(
                    site, include_temporal=temporal != "off"))
                source, verdict = check_attack(
                    program.spec, attack, configs,
                    timeout_seconds=timeout_seconds, engine=engine,
                    temporal=temporal)
                stats.attacks_injected += 1
                stats.attack_runs += len(configs)
                stats.executions += len(configs)
                for config, trap in verdict.observed.items():
                    stats.trap_histogram[(config, trap or "-")] += 1
                if verdict.detectable:
                    stats.attacks_detectable += 1
                    if verdict.detected:
                        stats.attacks_detected += 1
                else:
                    stats.expected_evasions += 1
                    if verdict.ok:
                        stats.evasions_confirmed += 1
                for divergence in verdict.divergences:
                    _record_failure(
                        stats, kind=divergence.kind,
                        detail=divergence.detail,
                        config=divergence.config, seed=iter_seed,
                        iteration=iteration, configs=configs,
                        source=source, attack=attack,
                        site_dict=site.to_dict(), corpus_dir=corpus_dir,
                        minimize=minimize,
                        predicate=_predicate_for(divergence, configs,
                                                 attack, source,
                                                 temporal),
                        log=log, trace=trace, temporal=temporal)

    for offset in range(iterations):
        iteration = start + offset

        def attempt_iteration(attempt: int, _iteration=iteration,
                              _first=(offset == 0)) -> None:
            one_iteration(_iteration, derive_seed(seed, attempt), _first)

        def note_retry(attempt: int, exc: BaseException,
                       delay: float, _iteration=iteration) -> None:
            stats.reseed_retries += 1
            log(f"[repro.fuzz] iteration {_iteration} timed out "
                f"({exc}); retrying with derived seed "
                f"{derive_seed(seed, attempt + 1)} "
                f"after {delay:.2f}s backoff")

        if timeout_seconds is None:
            one_iteration(iteration, seed, offset == 0)
        else:
            try:
                call_with_retry(attempt_iteration,
                                attempts=1 + max(0, retries),
                                base_delay=backoff_base,
                                jitter_seed=seed ^ iteration,
                                on_retry=note_retry)
            except WorkloadTimeout as exc:
                stats.timeouts += 1
                log(f"[repro.fuzz] iteration {iteration} abandoned "
                    f"after {1 + max(0, retries)} timed-out attempts: "
                    f"{exc}")

        done = offset + 1
        if progress_every and done % progress_every == 0 \
                and done < iterations:
            log(f"[repro.fuzz] {done}/{iterations} iterations, "
                f"{stats.divergences} divergences, "
                f"{stats.attacks_detected}/{stats.attacks_detectable} "
                f"attacks detected")
    stats.elapsed = time.monotonic() - started
    return stats


def replay_entry(path: str,
                 log: Optional[Callable[[str], None]] = None) -> bool:
    """Re-run one persisted corpus entry; True when it reproduces
    verbatim (source digest matches) and the oracle still fails."""
    from repro.fuzz.corpus import load_entry
    log = log or (lambda message: print(message))
    entry = load_entry(path)
    program = generate_program(entry.seed, entry.iteration)
    source = program.source
    if entry.attack is not None:
        if entry.attack.get("kind") in TEMPORAL_KINDS:
            source = render(program.spec,
                            (entry.attack["sid"],
                             entry.attack["index"],
                             entry.attack["kind"]))
        else:
            source = render(program.spec,
                            (entry.attack["sid"],
                             entry.attack["index"]))
    digest = source_digest(source)
    if digest != entry.source_sha256:
        log(f"[repro.fuzz] replay {entry.name}: source mismatch "
            f"({digest} != {entry.source_sha256}) — generator changed?")
        return False
    log(f"[repro.fuzz] replay {entry.name}: source reproduced verbatim")
    stats = run_fuzz(1, seed=entry.seed, start=entry.iteration,
                     configs=entry.configs, minimize=False,
                     corpus_dir=DEFAULT_CORPUS_DIR + "/.replay",
                     log=log, progress_every=0,
                     temporal=entry.extra.get("temporal", "off"))
    log(stats.summary())
    return True
