"""CLI entry point: ``python -m repro.fuzz``.

Examples::

    # the standard differential + attack-injection run
    python -m repro.fuzz --iterations 200 --seed 0

    # attack injection only, custom configuration set
    python -m repro.fuzz --iterations 50 --seed 7 --inject-only \\
        --configs baseline,subheap,wrapped,wrapped-np

    # force a failure end-to-end (minimizer + corpus self-test)
    python -m repro.fuzz --iterations 1 --seed 0 --plant-bug

    # re-run a persisted failure, verbatim from its seed
    python -m repro.fuzz --replay corpus/<name>.json

    # the same campaign sharded across 4 worker processes, resumable
    python -m repro.fuzz --iterations 200 --seed 0 --jobs 4 \\
        --checkpoint ckpt-fuzz
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.configs import CONFIG_NAMES
from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, load_entry
from repro.fuzz.driver import DEFAULT_CONFIGS, replay_entry, run_fuzz


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing & attack injection for the "
                    "IFP pipeline.")
    parser.add_argument("--iterations", "-n", type=int, default=100,
                        help="programs to generate (default 100)")
    parser.add_argument("--seed", "-s", type=int, default=0,
                        help="master seed (default 0)")
    parser.add_argument("--start", type=int, default=0,
                        help="first iteration index (for reproduction)")
    parser.add_argument("--configs", type=str,
                        default=",".join(DEFAULT_CONFIGS),
                        help="comma-separated configuration list "
                             f"(available: {', '.join(CONFIG_NAMES)})")
    parser.add_argument("--inject-only", action="store_true",
                        help="skip the clean differential phase")
    parser.add_argument("--no-inject", action="store_true",
                        help="skip attack injection")
    parser.add_argument("--corpus", type=str,
                        default=DEFAULT_CORPUS_DIR,
                        help="directory for failing cases "
                             "(default: corpus/)")
    parser.add_argument("--no-minimize", action="store_true",
                        help="persist failures without delta-debugging")
    parser.add_argument("--max-attacks", type=int, default=2,
                        help="attacks injected per program (default 2)")
    parser.add_argument("--plant-bug", action="store_true",
                        help="self-test: feed one attacked program to "
                             "the clean oracle to force a failure")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock watchdog per execution; timed-"
                             "out iterations retry with a derived seed")
    parser.add_argument("--retries", type=int, default=2,
                        help="reseed retries per timed-out iteration "
                             "(default 2)")
    parser.add_argument("--backoff", type=float, default=0.1,
                        metavar="SECONDS",
                        help="base of the exponential retry backoff "
                             "(default 0.1)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes; >1 shards the campaign "
                             "via repro.par (default 1, sequential)")
    parser.add_argument("--shard-size", type=int, default=0,
                        help="iterations per shard when sharded "
                             "(default: auto, 4 shards per worker)")
    parser.add_argument("--checkpoint", type=str, metavar="DIR",
                        help="resumable checkpoint directory (implies "
                             "the sharded path even at --jobs 1)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per shard attempt "
                             "(sharded path only)")
    parser.add_argument("--shard-retries", type=int, default=2,
                        help="requeues per failed shard (default 2)")
    parser.add_argument("--engine", type=str, default="auto",
                        choices=("auto", "fastpath", "superblock", "reference"),
                        help="execution engine for oracle runs; engines "
                             "are byte-identical in every simulated "
                             "observable (default auto)")
    parser.add_argument("--temporal", type=str, default="off",
                        choices=("off", "check", "quarantine"),
                        help="lock-and-key temporal policy for oracle "
                             "machines; also enables use-after-free / "
                             "double-free / stale-realloc attack kinds "
                             "(default off)")
    parser.add_argument("--replay", type=str, metavar="JSON",
                        help="re-run one corpus entry verbatim")
    parser.add_argument("--metrics-out", type=str, metavar="JSON",
                        help="write run metrics in the repro.obs "
                             "schema-v1 JSON format")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress progress lines")
    args = parser.parse_args(argv)

    log = (lambda message: None) if args.quiet else print

    if args.replay:
        try:  # validate the entry up front for a friendly CLI error
            load_entry(args.replay)
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot replay {args.replay}: {exc}")
        return 0 if replay_entry(args.replay, log=print) else 1

    configs = [c.strip() for c in args.configs.split(",") if c.strip()]
    unknown = [c for c in configs if c not in CONFIG_NAMES]
    if unknown:
        parser.error(f"unknown configuration(s): {', '.join(unknown)}")

    ok = True
    drained = False
    if args.jobs > 1 or args.checkpoint:
        import threading

        from repro.par.engine import parallel_fuzz, plan_fuzz
        from repro.par.pool import install_drain_handler
        plan = plan_fuzz(
            args.iterations, args.seed, configs=configs,
            start=args.start, clean=not args.inject_only,
            inject=not args.no_inject, corpus_dir=args.corpus,
            minimize=not args.no_minimize,
            max_attacks=args.max_attacks, plant_bug=args.plant_bug,
            timeout_seconds=args.timeout, retries=args.retries,
            backoff_base=args.backoff, jobs=args.jobs,
            shard_size=args.shard_size, engine=args.engine,
            temporal=args.temporal)
        stop = threading.Event()
        restore = install_drain_handler(stop, log=log)
        try:
            stats, outcome = parallel_fuzz(
                plan, jobs=args.jobs, checkpoint_dir=args.checkpoint,
                shard_timeout=args.shard_timeout,
                shard_retries=args.shard_retries, log=log, stop=stop)
        finally:
            restore()
        if not args.quiet:
            print(outcome.summary())
        ok = outcome.ok
        drained = outcome.drained
        if drained:
            print("drained: campaign interrupted; re-run with the same "
                  "--checkpoint to resume", file=sys.stderr)
    else:
        stats = run_fuzz(
            iterations=args.iterations, seed=args.seed, configs=configs,
            start=args.start, clean=not args.inject_only,
            inject=not args.no_inject, corpus_dir=args.corpus,
            minimize=not args.no_minimize,
            max_attacks_per_program=args.max_attacks,
            plant_bug=args.plant_bug, log=log,
            progress_every=0 if args.quiet else 25,
            timeout_seconds=args.timeout, retries=args.retries,
            backoff_base=args.backoff, engine=args.engine,
            temporal=args.temporal)
    print(stats.summary())
    if args.metrics_out:
        from repro.obs.metrics import metrics_document, write_metrics
        # The config/payload deliberately exclude jobs and pool
        # accounting: a --jobs N document must compare equal to the
        # --jobs 1 document for the same seed (the CI determinism
        # gate diffs them with `python -m repro.par diff`).
        path = write_metrics(args.metrics_out, metrics_document(
            "fuzz",
            {"seed": args.seed, "iterations": args.iterations,
             "configs": ",".join(configs),
             **({"temporal": args.temporal}
                if args.temporal != "off" else {})},
            stats.metrics()))
        print(f"metrics written to {path}")
    if drained:
        return 3
    return 0 if stats.ok and ok else 1


if __name__ == "__main__":
    sys.exit(main())
