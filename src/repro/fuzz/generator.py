"""Seeded random mini-C program generator.

Every program is built from a list of *actions*, each of which declares
an object (stack / heap / global; plain array, struct, or nested
array-of-structs), performs only in-bounds accesses on it, and registers
exactly one :class:`AccessSite` — a machine-readable description of one
access the attack injector (:mod:`repro.fuzz.attacks`) knows how to
mutate.  The same spec renders either the clean program or any mutated
variant, so a failing case is always reproducible from ``(seed,
iteration)`` alone.

The surface intentionally spans everything the instrumentation has an
opinion about:

* regions: stack locals, direct ``malloc`` heap objects, heap objects
  obtained through an alloc *wrapper* (no layout table — the paper's
  bzip2 pattern, including through a function pointer), small globals
  (local-offset scheme) and large globals (global-table scheme);
* flows: direct indexing, index through a helper-function argument,
  helper called through a function pointer, pointer escaped through a
  global and reloaded (forces ``promote``), and loop-carried indices;
* shapes: plain arrays, struct member arrays (with and without leading
  members), and members reached through an array-of-structs walk
  (the paper's Figure 9 shape);
* legacy boundaries: ``memset`` / ``memcpy`` / ``strlen`` calls on
  instrumented buffers (never attackable — libc is uninstrumented —
  but a classic false-positive source).

All array elements are ``int`` so struct layouts have no padding and
element arithmetic below stays exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Bytes of one array element (everything is ``int``).
ELEM_BYTES = 4

#: Objects larger than this fall back to the global-table scheme
#: (= ``IFPConfig.local_max_object`` for the default 16-byte granule,
#: 6-bit offset encoding).
LOCAL_OFFSET_MAX_BYTES = 1008

_REGIONS = ("stack", "heap", "heap_wrapped", "global", "global_big")
_FLOWS = ("direct", "helper", "fnptr", "reload", "loop")


@dataclass(frozen=True)
class AccessSite:
    """One attackable access in a generated program."""

    sid: int
    obj: str             #: variable name of the accessed object
    region: str          #: 'stack' | 'heap' | 'global'
    flow: str            #: one of :data:`_FLOWS`
    kind: str            #: 'write' | 'read'
    length: int          #: element count of the accessed (member) array
    safe_index: int      #: the in-bounds index the clean program uses
    via_wrapper: bool    #: heap object obtained through an alloc wrapper
    scheme: str          #: 'local_offset' | 'heap' | 'global_table'
    member_offset_elems: int  #: elements before the member (0 = plain)
    object_elems: int    #: total elements in the whole object
    nested: bool         #: reached through an array-of-structs walk
    #: the action can render a temporal (lock-and-key) attack epilogue:
    #: a plain heap array whose pointer the action still owns at the end
    #: of its fragment, so free/realloc can be appended after the access
    temporal_ok: bool = False

    @property
    def narrowable(self) -> bool:
        """Can the defense resolve *subobject* bounds for this access?

        Encodes the paper's Table 4 / Section 3 semantics: alloc-wrapper
        objects carry no layout table and global-table tags have no
        subobject-index bits, so both degrade to object granularity.
        """
        return not self.via_wrapper and self.scheme != "global_table"

    @property
    def intra_room(self) -> int:
        """Elements past the member's end but still inside the object."""
        return self.object_elems - self.member_offset_elems - self.length

    def to_dict(self) -> Dict[str, object]:
        return {
            "sid": self.sid, "obj": self.obj, "region": self.region,
            "flow": self.flow, "kind": self.kind, "length": self.length,
            "safe_index": self.safe_index,
            "via_wrapper": self.via_wrapper, "scheme": self.scheme,
            "member_offset_elems": self.member_offset_elems,
            "object_elems": self.object_elems, "nested": self.nested,
            "temporal_ok": self.temporal_ok,
        }


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Action:
    """Base: one self-contained fragment of the generated program."""

    index: int
    site: Optional[AccessSite] = None

    def struct_decls(self) -> List[str]:
        return []

    def global_decls(self) -> List[str]:
        return []

    def main_lines(self, attack_index: Optional[int]) -> List[str]:
        raise NotImplementedError

    def cleanup_lines(self) -> List[str]:
        return []

    def temporal_epilogue(self, kind: str) -> List[str]:
        """Lines appended after the clean fragment for a temporal attack
        (only actions whose site has ``temporal_ok`` support this)."""
        raise NotImplementedError


def _site_index(site: AccessSite, attack_index: Optional[int]) -> int:
    return site.safe_index if attack_index is None else attack_index


def _access(site: AccessSite, pointer: str, idx: int, value: int,
            suffix: str) -> List[str]:
    """Render the site's access through ``pointer`` at index ``idx``."""
    flow, k = site.flow, suffix
    if flow == "direct":
        # Index via a variable: the compiler statically folds literal
        # indices on named objects and emits no ifpbnd for them, so a
        # literal OOB index would be a miscompile-shaped miss rather
        # than the runtime detection this site is meant to exercise.
        lines = [f"    int ix{k} = {idx};"]
        if site.kind == "write":
            lines += [f"    {pointer}[ix{k}] = {value};",
                      f"    g_sink += {pointer}[{site.safe_index}];"]
        else:
            lines += [f"    g_sink += {pointer}[ix{k}];"]
        return lines
    if flow == "helper":
        fn = "helper_w" if site.kind == "write" else "helper_r"
        return [f"    {fn}({pointer}, {idx});"]
    if flow == "fnptr":
        fn = "helper_w" if site.kind == "write" else "helper_r"
        return [f"    g_fn = {fn};",
                f"    g_fn({pointer}, {idx});"]
    if flow == "reload":
        lines = [f"    g_ip = {pointer};",
                 f"    int *rp{k} = g_ip;"]
        if site.kind == "write":
            lines.append(f"    rp{k}[{idx}] = {value};")
        else:
            lines.append(f"    g_sink += rp{k}[{idx}];")
        return lines
    if flow == "loop":
        lines = [f"    int i{k};"]
        if idx >= site.safe_index:        # ascending (over direction)
            lines.append(f"    for (i{k} = 0; i{k} <= {idx}; i{k}++) {{")
        else:                              # descending (under direction)
            lines.append(f"    for (i{k} = {site.safe_index}; "
                         f"i{k} >= {idx}; i{k}--) {{")
        if site.kind == "write":
            lines.append(f"        {pointer}[i{k}] = i{k} + {value};")
        else:
            lines.append(f"        g_sink += {pointer}[i{k}];")
        lines.append("    }")
        return lines
    raise ValueError(flow)


def _alloc_lines(region: str, var: str, bytes_expr: str, cast: str,
                 fnptr_wrapper: bool, k: str) -> List[str]:
    if region == "heap":
        return [f"    {cast}{var} = ({cast.strip() or 'int *'})"
                f"malloc({bytes_expr});"]
    if region == "heap_wrapped":
        if fnptr_wrapper:
            return [f"    g_alloc = wrap_alloc;",
                    f"    {cast}{var} = ({cast.strip() or 'int *'})"
                    f"g_alloc({bytes_expr});"]
        return [f"    {cast}{var} = ({cast.strip() or 'int *'})"
                f"wrap_alloc({bytes_expr});"]
    raise ValueError(region)


@dataclass(frozen=True)
class _ArrayAction(_Action):
    """A plain ``int`` array, filled in-bounds, then the site access."""

    length: int = 8
    fill: bool = True
    fnptr_wrapper: bool = False
    value: int = 7

    def global_decls(self) -> List[str]:
        if self.site.region == "global":
            k = self.index
            return [f"int gpadlo{k}[2];",
                    f"int ga{k}[{self.length}];",
                    f"int gpadhi{k}[2];"]
        return []

    def main_lines(self, attack_index: Optional[int]) -> List[str]:
        site, k = self.site, str(self.index)
        idx = _site_index(site, attack_index)
        lines: List[str] = []
        if site.region == "stack":
            lines += [f"    int padlo{k}[2];",
                      f"    int a{k}[{self.length}];",
                      f"    int padhi{k}[2];",
                      f"    padlo{k}[0] = 0;",
                      f"    padhi{k}[0] = 0;"]
            ptr = f"a{k}"
        elif site.region == "global":
            ptr = f"ga{k}"
        else:
            lines += _alloc_lines(
                site.region if not site.via_wrapper else "heap_wrapped",
                f"h{k}", f"{self.length} * sizeof(int)", "int *",
                self.fnptr_wrapper, k)
            ptr = f"h{k}"
        if self.fill:
            lines += [f"    int f{k};",
                      f"    for (f{k} = 0; f{k} < {self.length}; f{k}++) "
                      f"{{ {ptr}[f{k}] = f{k}; }}"]
        lines += _access(site, ptr, idx, self.value, k)
        return lines

    def cleanup_lines(self) -> List[str]:
        if self.site.region in ("heap", "heap_wrapped") \
                or self.site.via_wrapper:
            return [f"    free(h{self.index});"]
        return []

    def temporal_epilogue(self, kind: str) -> List[str]:
        # Cleanup frees are suppressed whenever an attack is active, so
        # every epilogue renders its own frees — the program's lifetime
        # story must be complete for the lock-and-key verdict to mean
        # anything.
        k, safe = str(self.index), self.site.safe_index
        if kind == "uaf":
            return [f"    free(h{k});",
                    f"    g_sink += h{k}[{safe}];"]
        if kind == "double_free":
            return [f"    free(h{k});",
                    f"    free(h{k});"]
        if kind == "realloc_stale":
            return [f"    int *st{k} = h{k};",
                    f"    h{k} = (int *)realloc(h{k}, "
                    f"{2 * self.length} * sizeof(int));",
                    f"    g_sink += st{k}[{safe}];",
                    f"    free(h{k});"]
        raise ValueError(kind)


@dataclass(frozen=True)
class _StructAction(_Action):
    """A struct with a target member array, accessed via member pointer."""

    pre: int = 0          #: leading int elements before the target member
    target: int = 6       #: target member element count
    post: int = 4         #: trailing member element count (intra room)
    value: int = 5

    @property
    def sname(self) -> str:
        return f"S{self.index}"

    def struct_decls(self) -> List[str]:
        members = []
        if self.pre:
            members.append(f"int pre[{self.pre}];")
        members.append(f"int target[{self.target}];")
        members.append(f"int post[{self.post}];")
        return [f"struct {self.sname} {{ " + " ".join(members) + " };"]

    def global_decls(self) -> List[str]:
        if self.site.region == "global":
            k = self.index
            return [f"int gpadlo{k}[2];",
                    f"struct {self.sname} gs{k};",
                    f"int gpadhi{k}[2];"]
        return []

    def main_lines(self, attack_index: Optional[int]) -> List[str]:
        site, k = self.site, str(self.index)
        idx = _site_index(site, attack_index)
        lines: List[str] = []
        if site.region == "stack":
            lines += [f"    int padlo{k}[2];",
                      f"    struct {self.sname} s{k};",
                      f"    int padhi{k}[2];",
                      f"    padlo{k}[0] = 0;",
                      f"    padhi{k}[0] = 0;",
                      f"    s{k}.post[0] = 3;",
                      f"    int *mp{k} = s{k}.target;"]
        elif site.region == "global":
            lines += [f"    gs{k}.post[0] = 3;",
                      f"    int *mp{k} = gs{k}.target;"]
        else:
            lines += _alloc_lines(
                "heap_wrapped" if site.via_wrapper else "heap",
                f"sp{k}", f"sizeof(struct {self.sname})",
                f"struct {self.sname} *",
                False, k)
            lines += [f"    sp{k}->post[0] = 3;",
                      f"    int *mp{k} = sp{k}->target;"]
        lines += [f"    int t{k};",
                  f"    for (t{k} = 0; t{k} < {self.target}; t{k}++) "
                  f"{{ mp{k}[t{k}] = t{k} + 2; }}"]
        lines += _access(site, f"mp{k}", idx, self.value, k)
        return lines

    def cleanup_lines(self) -> List[str]:
        if self.site.region in ("heap", "heap_wrapped") \
                or self.site.via_wrapper:
            return [f"    free(sp{self.index});"]
        return []


@dataclass(frozen=True)
class _NestedAction(_Action):
    """Array-of-structs member access (the paper's Figure 9 shape)."""

    inner_a: int = 2
    inner_b: int = 2
    count: int = 3        #: elements of the array-of-structs
    tail: int = 4
    element: int = 1      #: which array element the access goes through
    value: int = 9

    @property
    def iname(self) -> str:
        return f"I{self.index}"

    @property
    def oname(self) -> str:
        return f"O{self.index}"

    def struct_decls(self) -> List[str]:
        return [
            f"struct {self.iname} {{ int a[{self.inner_a}]; "
            f"int b[{self.inner_b}]; }};",
            f"struct {self.oname} {{ struct {self.iname} "
            f"arr[{self.count}]; int tail[{self.tail}]; }};",
        ]

    def main_lines(self, attack_index: Optional[int]) -> List[str]:
        site, k = self.site, str(self.index)
        idx = _site_index(site, attack_index)
        lines: List[str] = []
        if site.region == "stack":
            lines += [f"    int padlo{k}[2];",
                      f"    struct {self.oname} o{k};",
                      f"    int padhi{k}[2];",
                      f"    padlo{k}[0] = 0;",
                      f"    padhi{k}[0] = 0;",
                      f"    o{k}.tail[0] = 2;",
                      f"    int *np{k} = o{k}.arr[{self.element}].a;"]
        else:
            lines += [f"    struct {self.oname} *op{k} = "
                      f"(struct {self.oname} *)"
                      f"malloc(sizeof(struct {self.oname}));",
                      f"    op{k}->tail[0] = 2;",
                      f"    int *np{k} = op{k}->arr[{self.element}].a;"]
        lines += [f"    int u{k};",
                  f"    for (u{k} = 0; u{k} < {self.inner_a}; u{k}++) "
                  f"{{ np{k}[u{k}] = u{k} + 4; }}"]
        lines += _access(site, f"np{k}", idx, self.value, k)
        return lines

    def cleanup_lines(self) -> List[str]:
        if self.site.region == "heap":
            return [f"    free(op{self.index});"]
        return []


@dataclass(frozen=True)
class _PtrArithAction(_Action):
    """In-bounds pointer arithmetic walk; the site is the final deref."""

    length: int = 8
    value: int = 11

    def main_lines(self, attack_index: Optional[int]) -> List[str]:
        site, k = self.site, str(self.index)
        idx = _site_index(site, attack_index)
        lines: List[str] = []
        if site.region == "stack":
            lines += [f"    int padlo{k}[2];",
                      f"    int pa{k}[{self.length}];",
                      f"    int padhi{k}[2];",
                      f"    padlo{k}[0] = 0;",
                      f"    padhi{k}[0] = 0;",
                      f"    int w{k};",
                      f"    for (w{k} = 0; w{k} < {self.length}; w{k}++) "
                      f"{{ pa{k}[w{k}] = w{k}; }}",
                      f"    int *pp{k} = pa{k};"]
        else:
            lines += [f"    int *pa{k} = (int*)malloc("
                      f"{self.length} * sizeof(int));",
                      f"    int w{k};",
                      f"    for (w{k} = 0; w{k} < {self.length}; w{k}++) "
                      f"{{ pa{k}[w{k}] = w{k}; }}",
                      f"    int *pp{k} = pa{k};"]
        lines += [f"    pp{k} = pp{k} + ({idx});",
                  f"    *pp{k} = {self.value};",
                  f"    g_sink += *pp{k};"]
        return lines

    def cleanup_lines(self) -> List[str]:
        if self.site.region == "heap":
            return [f"    free(pa{self.index});"]
        return []


@dataclass(frozen=True)
class _LegacyAction(_Action):
    """Uninstrumented-libc boundary crossing; never attackable."""

    variant: str = "strlen"
    length: int = 12

    def main_lines(self, attack_index: Optional[int]) -> List[str]:
        k = str(self.index)
        if self.variant == "strlen":
            return [
                f"    char cb{k}[{self.length}];",
                f"    memset(cb{k}, 'x', {self.length - 1});",
                f"    cb{k}[{self.length - 1}] = 0;",
                f"    g_sink += (int)strlen(cb{k});",
            ]
        if self.variant == "memcpy":
            return [
                f"    int src{k}[{self.length}];",
                f"    int dst{k}[{self.length}];",
                f"    int m{k};",
                f"    for (m{k} = 0; m{k} < {self.length}; m{k}++) "
                f"{{ src{k}[m{k}] = m{k} * 3; }}",
                f"    memcpy(dst{k}, src{k}, "
                f"{self.length} * sizeof(int));",
                f"    g_sink += dst{k}[{self.length - 1}];",
            ]
        if self.variant == "strcmp":
            return [
                f"    g_sink += strcmp(\"fuzz\", \"fuzz\") + "
                f"(int)strlen(\"boundary{k}\");",
            ]
        raise ValueError(self.variant)


# ---------------------------------------------------------------------------
# Program spec & rendering
# ---------------------------------------------------------------------------

_PRELUDE = """\
int g_sink = 0;
int *g_ip;
void helper_w(int *p, int idx) { p[idx] = 7; }
void helper_r(int *p, int idx) { g_sink += p[idx]; }
void (*g_fn)(int *, int);
void *wrap_alloc(unsigned long n) { return malloc(n); }
void *(*g_alloc)(unsigned long);
"""


@dataclass
class ProgramSpec:
    """The structured program: renderable with or without an attack."""

    seed: int
    actions: List[_Action] = field(default_factory=list)

    @property
    def sites(self) -> List[AccessSite]:
        return [a.site for a in self.actions if a.site is not None]

    def site(self, sid: int) -> AccessSite:
        for s in self.sites:
            if s.sid == sid:
                return s
        raise KeyError(sid)


@dataclass(frozen=True)
class GeneratedProgram:
    """A rendered clean program plus its spec (for mutation/replay)."""

    spec: ProgramSpec
    source: str

    @property
    def sites(self) -> List[AccessSite]:
        return self.spec.sites


def render(spec: ProgramSpec,
           attack: Optional[Tuple[int, ...]] = None) -> str:
    """Render the spec to mini-C.

    ``attack`` is ``(site_id, index)``: the named site's index expression
    is replaced by ``index``; everything else renders identically to the
    clean program.  A three-element ``(site_id, index, kind)`` form with
    a temporal ``kind`` ('uaf' | 'double_free' | 'realloc_stale')
    instead keeps the site's access clean and appends the action's
    temporal epilogue — the lifetime violation happens *after* the
    spatial story completes.
    """
    attack_sid = attack[0] if attack is not None else None
    attack_idx = attack[1] if attack is not None else None
    attack_kind = attack[2] if attack is not None and len(attack) > 2 \
        else None
    parts: List[str] = [f"/* repro.fuzz seed={spec.seed} */", _PRELUDE]
    for action in spec.actions:
        parts.extend(action.struct_decls())
    for action in spec.actions:
        parts.extend(action.global_decls())
    body: List[str] = []
    for action in spec.actions:
        hit = action.site is not None and action.site.sid == attack_sid
        this = attack_idx if (hit and attack_kind is None) else None
        body.append(f"    /* action {action.index} */")
        body.extend(action.main_lines(this))
        if hit and attack_kind is not None:
            body.extend(action.temporal_epilogue(attack_kind))
    if attack is None:
        for action in spec.actions:
            body.extend(action.cleanup_lines())
    parts.append("int main(void) {")
    parts.extend(body)
    parts += ["    printf(\"checksum %d\\n\", g_sink);",
              "    return 0;",
              "}"]
    return "\n".join(parts) + "\n"


# ---------------------------------------------------------------------------
# Random generation
# ---------------------------------------------------------------------------

def iteration_seed(seed: int, iteration: int) -> int:
    """The derived seed for one fuzz iteration (stable across runs)."""
    return (seed * 1_000_003 + iteration * 7_919 + 0x9E3779B9) \
        & 0x7FFF_FFFF


def _scheme_for(region: str, length_bytes: int) -> str:
    if region in ("heap", "heap_wrapped"):
        return "heap"
    if length_bytes > LOCAL_OFFSET_MAX_BYTES:
        return "global_table"
    return "local_offset"


def _make_site(sid: int, obj: str, region: str,
               flow: str, kind: str, length: int, safe_index: int,
               via_wrapper: bool, member_offset: int, object_elems: int,
               nested: bool = False,
               temporal_ok: bool = False) -> AccessSite:
    return AccessSite(
        sid=sid, obj=obj,
        region={"heap_wrapped": "heap", "global_big": "global"}.get(
            region, region),
        flow=flow, kind=kind, length=length, safe_index=safe_index,
        via_wrapper=via_wrapper,
        scheme=_scheme_for(region, object_elems * ELEM_BYTES),
        member_offset_elems=member_offset, object_elems=object_elems,
        nested=nested, temporal_ok=temporal_ok)


def _gen_array_action(rng: random.Random, index: int, sid: int) -> _Action:
    region = rng.choice(("stack", "heap", "heap_wrapped", "global",
                         "global_big"))
    flow = rng.choice(_FLOWS)
    kind = rng.choice(("write", "read"))
    if region == "global_big":
        # Big enough that even the 16-byte-granule local-offset scheme
        # cannot encode it: forces the global-table fallback.
        length = rng.choice((260, 300, 400))
    else:
        length = rng.randint(4, 12)
    safe = length - 1 if flow == "loop" else rng.randint(0, length - 1)
    via_wrapper = region == "heap_wrapped"
    site = _make_site(sid, f"a{index}", region, flow, kind, length,
                      safe, via_wrapper, 0, length,
                      temporal_ok=region in ("heap", "heap_wrapped"))
    return _ArrayAction(
        index=index, site=site, length=length, fill=True,
        fnptr_wrapper=via_wrapper and rng.random() < 0.4,
        value=rng.randint(1, 40))


def _gen_struct_action(rng: random.Random, index: int, sid: int) -> _Action:
    region = rng.choice(("stack", "heap", "heap_wrapped", "global",
                         "global_big"))
    # Where narrowing *cannot* work (no layout table / no subobject tag
    # bits) the member pointer must get its bounds from promote — i.e.
    # the reload flow — for the coarsening to be observable; the other
    # flows carry compile-time member bounds that narrow regardless.
    if region in ("heap_wrapped", "global_big"):
        flow = "reload"
    else:
        flow = rng.choice(("direct", "helper", "fnptr", "reload"))
    kind = rng.choice(("write", "read"))
    pre = rng.choice((0, 0, 2, 4))
    target = rng.randint(4, 8)
    post = rng.randint(3, 6)
    if region == "global_big":
        post = rng.choice((300, 400))   # push past the local-offset limit
    safe = rng.randint(0, target - 1)
    via_wrapper = region == "heap_wrapped"
    object_elems = pre + target + post
    site = _make_site(sid, f"s{index}", region, flow, kind, target,
                      safe, via_wrapper, pre, object_elems)
    return _StructAction(index=index, site=site, pre=pre, target=target,
                         post=post, value=rng.randint(1, 40))


def _gen_nested_action(rng: random.Random, index: int, sid: int) -> _Action:
    region = rng.choice(("stack", "heap"))
    flow = rng.choice(("direct", "reload"))
    kind = rng.choice(("write", "read"))
    inner_a = rng.randint(2, 4)
    inner_b = rng.randint(2, 4)
    count = rng.randint(2, 3)
    tail = rng.randint(2, 5)
    element = rng.randint(0, count - 1)
    inner = inner_a + inner_b
    site = _make_site(
        sid, f"o{index}", region, flow, kind, inner_a,
        rng.randint(0, inner_a - 1), False,
        element * inner, count * inner + tail, nested=True)
    return _NestedAction(index=index, site=site, inner_a=inner_a,
                         inner_b=inner_b, count=count, tail=tail,
                         element=element, value=rng.randint(1, 40))


def _gen_ptr_arith_action(rng: random.Random, index: int,
                          sid: int) -> _Action:
    region = rng.choice(("stack", "heap"))
    length = rng.randint(4, 12)
    safe = rng.randint(0, length - 1)
    site = _make_site(sid, f"pa{index}", region, "direct", "write",
                      length, safe, False, 0, length)
    return _PtrArithAction(index=index, site=site, length=length,
                           value=rng.randint(1, 40))


def _gen_legacy_action(rng: random.Random, index: int) -> _Action:
    return _LegacyAction(index=index, site=None,
                         variant=rng.choice(("strlen", "memcpy",
                                             "strcmp")),
                         length=rng.randint(6, 16))


def generate_program(seed: int, iteration: int = 0,
                     min_actions: int = 2,
                     max_actions: int = 5) -> GeneratedProgram:
    """Generate one deterministic program for ``(seed, iteration)``."""
    rng = random.Random(iteration_seed(seed, iteration))
    n_actions = rng.randint(min_actions, max_actions)
    actions: List[_Action] = []
    sid = 0
    for index in range(n_actions):
        kind = rng.choices(
            ("array", "struct", "nested", "ptr_arith", "legacy"),
            weights=(34, 26, 14, 14, 12))[0]
        if kind == "array":
            actions.append(_gen_array_action(rng, index, sid))
            sid += 1
        elif kind == "struct":
            actions.append(_gen_struct_action(rng, index, sid))
            sid += 1
        elif kind == "nested":
            actions.append(_gen_nested_action(rng, index, sid))
            sid += 1
        elif kind == "ptr_arith":
            actions.append(_gen_ptr_arith_action(rng, index, sid))
            sid += 1
        else:
            actions.append(_gen_legacy_action(rng, index))
    if not any(a.site is not None for a in actions):
        actions.append(_gen_array_action(rng, n_actions, sid))
    spec = ProgramSpec(seed=iteration_seed(seed, iteration),
                       actions=actions)
    return GeneratedProgram(spec=spec, source=render(spec))
