"""Sparse paged byte-addressable memory with lazy page materialisation.

The memory system only ever sees 48-bit canonical addresses: callers (the
VM's load/store unit) must strip pointer tags first.  Accessing a page that
has never been mapped raises :class:`~repro.errors.MemoryFault`, modelling
a page fault delivered to the guest.

Little-endian byte order throughout, matching RISC-V.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import MemoryFault
from repro.mem.layout import ADDRESS_MASK, PAGE_SIZE


class Memory:
    """Sparse paged memory.

    Pages are created on :meth:`map_range` (explicit mapping, used by the
    loader and the allocators' ``sbrk``-style growth) — *not* on first
    access, so wild stores fault like they would on real hardware.
    """

    def __init__(self, page_size: int = PAGE_SIZE):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        self.page_size = page_size
        self._pages: Dict[int, bytearray] = {}
        #: bytes explicitly mapped; the high-water mark feeds the
        #: memory-overhead evaluation (Figure 12).
        self.mapped_bytes = 0
        self.peak_mapped_bytes = 0
        #: optional store snoop ``watcher(address, size)`` invoked before
        #: every write — the IFP unit uses it to invalidate its metadata
        #: line buffer and host-side promote/layout caches.  ``None``
        #: keeps writes on their unwatched fast path.
        self.watcher = None
        #: optional ``unmap_watcher(base, size)`` invoked on unmap_range.
        self.unmap_watcher = None

    # -- mapping ----------------------------------------------------------

    def map_range(self, base: int, size: int) -> None:
        """Map all pages covering ``[base, base + size)`` (idempotent)."""
        if size <= 0:
            return
        base &= ADDRESS_MASK
        first = base // self.page_size
        last = (base + size - 1) // self.page_size
        for page_no in range(first, last + 1):
            if page_no not in self._pages:
                self._pages[page_no] = bytearray(self.page_size)
                self.mapped_bytes += self.page_size
        self.peak_mapped_bytes = max(self.peak_mapped_bytes, self.mapped_bytes)

    def unmap_range(self, base: int, size: int) -> None:
        """Unmap all pages fully contained in ``[base, base + size)``."""
        if size <= 0:
            return
        if self.unmap_watcher is not None:
            self.unmap_watcher(base & ADDRESS_MASK, size)
        base &= ADDRESS_MASK
        first_full = -(-base // self.page_size)  # ceil division
        last_full = (base + size) // self.page_size  # exclusive
        for page_no in range(first_full, last_full):
            if self._pages.pop(page_no, None) is not None:
                self.mapped_bytes -= self.page_size

    def is_mapped(self, address: int, size: int = 1) -> bool:
        """True when every byte of ``[address, address + size)`` is mapped."""
        address &= ADDRESS_MASK
        first = address // self.page_size
        last = (address + size - 1) // self.page_size
        return all(page_no in self._pages for page_no in range(first, last + 1))

    # -- raw byte access --------------------------------------------------

    def read_bytes(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes; faults if any byte is unmapped."""
        address &= ADDRESS_MASK
        if size < 0:
            raise MemoryFault(f"negative read size {size}", address)
        offset = address % self.page_size
        if size and offset + size <= self.page_size:
            # fast path: the whole read sits inside one page
            page = self._pages.get(address // self.page_size)
            if page is None:
                raise MemoryFault(
                    f"page fault at 0x{address:012x} (unmapped)", address)
            return bytes(page[offset:offset + size])
        out = bytearray()
        remaining = size
        cursor = address
        while remaining:
            page = self._page_for(cursor)
            offset = cursor % self.page_size
            chunk = min(remaining, self.page_size - offset)
            out += page[offset:offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write ``data``; faults if any byte is unmapped."""
        address &= ADDRESS_MASK
        size = len(data)
        if self.watcher is not None:
            self.watcher(address, size)
        offset = address % self.page_size
        if size and offset + size <= self.page_size:
            # fast path: the whole write sits inside one page
            page = self._pages.get(address // self.page_size)
            if page is None:
                raise MemoryFault(
                    f"page fault at 0x{address:012x} (unmapped)", address)
            page[offset:offset + size] = data
            return
        cursor = address
        view = memoryview(data)
        while view:
            page = self._page_for(cursor)
            offset = cursor % self.page_size
            chunk = min(len(view), self.page_size - offset)
            page[offset:offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    # -- integer access ---------------------------------------------------

    def load_int(self, address: int, size: int, signed: bool = False) -> int:
        """Load a little-endian integer of ``size`` bytes."""
        address &= ADDRESS_MASK
        offset = address % self.page_size
        if size > 0 and offset + size <= self.page_size:
            # fast path mirroring read_bytes, minus one call and copy
            page = self._pages.get(address // self.page_size)
            if page is None:
                raise MemoryFault(
                    f"page fault at 0x{address:012x} (unmapped)", address)
            return int.from_bytes(page[offset:offset + size], "little",
                                  signed=signed)
        raw = self.read_bytes(address, size)
        return int.from_bytes(raw, "little", signed=signed)

    def store_int(self, address: int, value: int, size: int) -> None:
        """Store a little-endian integer, truncating to ``size`` bytes."""
        value &= (1 << (size * 8)) - 1
        self.write_bytes(address, value.to_bytes(size, "little"))

    def load_u64(self, address: int) -> int:
        return self.load_int(address, 8)

    def store_u64(self, address: int, value: int) -> None:
        self.store_int(address, value, 8)

    # -- utilities --------------------------------------------------------

    def fill(self, address: int, value: int, size: int) -> None:
        """memset: set ``size`` bytes to ``value``."""
        self.write_bytes(address, bytes([value & 0xFF]) * size)

    def copy(self, dst: int, src: int, size: int) -> None:
        """memmove-style copy (reads fully before writing)."""
        self.write_bytes(dst, self.read_bytes(src, size))

    def read_cstring(self, address: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated byte string (without the NUL)."""
        out = bytearray()
        cursor = address & ADDRESS_MASK
        for _ in range(limit):
            byte = self.read_bytes(cursor, 1)[0]
            if byte == 0:
                return bytes(out)
            out.append(byte)
            cursor += 1
        raise MemoryFault("unterminated string", address)

    def mapped_ranges(self) -> Iterator[Tuple[int, int]]:
        """Yield (base, size) for maximal runs of mapped pages."""
        pages = sorted(self._pages)
        run_start = None
        prev = None
        for page_no in pages:
            if run_start is None:
                run_start = page_no
            elif page_no != prev + 1:
                yield (run_start * self.page_size,
                       (prev - run_start + 1) * self.page_size)
                run_start = page_no
            prev = page_no
        if run_start is not None:
            yield (run_start * self.page_size,
                   (prev - run_start + 1) * self.page_size)

    # -- internal ---------------------------------------------------------

    def _page_for(self, address: int) -> bytearray:
        page = self._pages.get(address // self.page_size)
        if page is None:
            raise MemoryFault(
                f"page fault at 0x{address:012x} (unmapped)", address)
        return page
