"""Virtual address-space layout constants for the simulated machine.

The layout mirrors a conventional RISC-V Linux user process:

* a read-only + read-write *globals* segment near the bottom,
* a *heap* growing upward from the end of the globals,
* a *stack* growing downward from near the top of the 48-bit space,
* a reserved region for the In-Fat Pointer *global metadata table*
  (allocated by the runtime at startup; see the global-table scheme).

Addresses are "canonical user" addresses: bit 47 and everything above is
zero, so an untagged pointer naturally has the ``00`` scheme selector the
paper reserves for legacy pointers.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of meaningful (non-tag) address bits.
ADDRESS_BITS = 48

#: Mask selecting the address portion of a 64-bit tagged pointer.
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1

#: Size of a simulated page in bytes.
PAGE_SIZE = 4096


@dataclass(frozen=True)
class AddressSpaceLayout:
    """Base addresses and sizes of the standard segments.

    All values are canonical 48-bit addresses.  The defaults leave generous
    gaps so that out-of-segment accesses fault instead of silently landing
    in a neighbouring segment.
    """

    globals_base: int = 0x0000_0001_0000
    globals_limit: int = 0x0000_1000_0000
    heap_base: int = 0x0000_2000_0000
    heap_limit: int = 0x0000_6000_0000
    metadata_table_base: int = 0x0000_7000_0000
    metadata_table_limit: int = 0x0000_7100_0000
    stack_top: int = 0x0000_8000_0000
    #: stack grows down toward this; 8 MiB matches a typical Linux
    #: default ulimit (and keeps host-interpreter recursion bounded)
    stack_limit: int = 0x0000_7F80_0000

    def segment_of(self, address: int) -> str:
        """Return a human-readable segment name for diagnostics."""
        if self.globals_base <= address < self.globals_limit:
            return "globals"
        if self.heap_base <= address < self.heap_limit:
            return "heap"
        if self.metadata_table_base <= address < self.metadata_table_limit:
            return "metadata-table"
        if self.stack_limit <= address < self.stack_top:
            return "stack"
        return "unmapped"


#: The layout used by every machine unless overridden.
DEFAULT_LAYOUT = AddressSpaceLayout()
