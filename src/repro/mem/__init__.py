"""Simulated 64-bit sparse paged memory.

The machine addresses a 48-bit virtual address space (the paper's design
point: the upper 16 bits of every pointer are a tag and never reach the
memory system).  Memory is materialised lazily in fixed-size pages.
"""

from repro.mem.layout import (
    ADDRESS_BITS,
    ADDRESS_MASK,
    PAGE_SIZE,
    AddressSpaceLayout,
    DEFAULT_LAYOUT,
)
from repro.mem.memory import Memory

__all__ = [
    "ADDRESS_BITS",
    "ADDRESS_MASK",
    "PAGE_SIZE",
    "AddressSpaceLayout",
    "DEFAULT_LAYOUT",
    "Memory",
]
