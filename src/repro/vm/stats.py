"""Dynamic-execution statistics (the raw material of Table 4, Figures 10-12).

``RunStats`` accumulates during one program run.  Category accounting
matches the paper:

* ``base_instructions`` — instructions the unmodified ISA would execute
  (including modelled libc/runtime builtin work);
* ``promote_instructions`` / ``ifp_arith_instructions`` /
  ``bounds_ls_instructions`` — the three new-instruction classes of
  Figure 11;
* object-instrumentation counters split by global/local/heap and by
  whether the object metadata includes a layout table (Table 4);
* cycle and cache-miss counts for the runtime-overhead figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ifp.unit import IFPUnitStats


@dataclass
class RunStats:
    # -- dynamic instruction counts ------------------------------------------
    base_instructions: int = 0
    promote_instructions: int = 0
    ifp_arith_instructions: int = 0
    bounds_ls_instructions: int = 0
    builtin_instructions: int = 0  #: included in base_instructions

    # -- time ---------------------------------------------------------------
    cycles: int = 0

    # -- memory accesses -------------------------------------------------------
    loads: int = 0
    stores: int = 0

    # -- checks ------------------------------------------------------------------
    implicit_checks: int = 0
    check_failures: int = 0
    #: deref-site lock==key comparisons (repro.temporal); only bounds
    #: registers carrying a temporal fact are probed
    temporal_checks: int = 0
    temporal_failures: int = 0

    # -- object instrumentation (Table 4) -----------------------------------------
    local_objects: int = 0
    local_objects_lt: int = 0
    global_objects: int = 0
    global_objects_lt: int = 0
    heap_objects: int = 0
    heap_objects_lt: int = 0
    heap_frees: int = 0
    #: allocations downgraded to a weaker scheme / untagged pointer when
    #: a fixed-size metadata resource ran out (see repro.resil.policy)
    degraded_allocs: int = 0

    # -- attached at end of run -----------------------------------------------------
    ifp: Optional[IFPUnitStats] = None
    l1d_accesses: int = 0
    l1d_misses: int = 0
    peak_mapped_bytes: int = 0
    heap_high_water: int = 0

    @property
    def total_instructions(self) -> int:
        return (self.base_instructions + self.promote_instructions
                + self.ifp_arith_instructions + self.bounds_ls_instructions)

    @property
    def new_instructions(self) -> int:
        """Instructions introduced by In-Fat Pointer."""
        return (self.promote_instructions + self.ifp_arith_instructions
                + self.bounds_ls_instructions)

    def compact(self) -> str:
        """One-line snapshot, embedded in harness error messages and
        forensics reports."""
        parts = [
            f"instr={self.total_instructions}",
            f"cycles={self.cycles}",
            f"checks={self.implicit_checks}"
            f"({self.check_failures} failed)",
            f"objs={self.global_objects}g/{self.local_objects}l"
            f"/{self.heap_objects}h",
        ]
        if self.ifp is not None:
            parts.append(f"promotes={self.ifp.promotes_total}"
                         f"({self.ifp.promotes_valid} valid)")
            if self.ifp.narrow_attempts:
                parts.append(f"narrow={self.ifp.narrow_success}"
                             f"/{self.ifp.narrow_attempts}")
        return " ".join(parts)

    def summary(self) -> str:
        lines = [
            f"instructions: {self.total_instructions:,} "
            f"(base {self.base_instructions:,}, "
            f"promote {self.promote_instructions:,}, "
            f"ifp-arith {self.ifp_arith_instructions:,}, "
            f"bounds-ls {self.bounds_ls_instructions:,})",
            f"cycles: {self.cycles:,}",
            f"L1D: {self.l1d_accesses:,} accesses, "
            f"{self.l1d_misses:,} misses",
            f"objects: {self.global_objects} global "
            f"({self.global_objects_lt} w/LT), "
            f"{self.local_objects} local ({self.local_objects_lt} w/LT), "
            f"{self.heap_objects} heap ({self.heap_objects_lt} w/LT)",
            f"peak mapped memory: {self.peak_mapped_bytes:,} bytes",
        ]
        if self.ifp is not None:
            ifp = self.ifp
            lines.append(
                f"promotes: {ifp.promotes_total:,} total, "
                f"{ifp.promotes_valid:,} valid, "
                f"{ifp.promotes_null:,} null, {ifp.promotes_legacy:,} legacy; "
                f"narrowing {ifp.narrow_success}/{ifp.narrow_attempts}")
        return "\n".join(lines)
