"""Closure-compiled fast execution engine (basic-block compilation).

The reference interpreter (:mod:`repro.vm.interp`) re-decodes every
instruction on every execution: a ~30-arm ``if/elif`` chain plus a dozen
``ins.*`` attribute loads per step.  This engine translates each
:class:`~repro.compiler.ir.IRFunction` **once** (lazily, on first call)
into specialized closures.  Straight-line runs of instructions are fused
into a single Python function compiled at translate time — operands,
immediates, resolved global addresses, and static cycle costs are inlined
as literals — so a fused block executes with *no* per-instruction
dispatch at all.  Instructions that transfer control to other functions
(``call``/``callptr``) compile to single-instruction blocks.  The hot
loop is just::

    while ip >= 0:
        ip = handlers[ip](st)

Each handler returns the next instruction index; ``ret`` returns -1.

Equivalence contract (enforced by ``tests/test_fastpath.py`` and the CI
differential gate): guest output, trap class/message, ``RunStats`` and
``IFPUnitStats`` are **byte-identical** to the reference interpreter for
every program.  The compiled code replicates the reference's accounting
exactly, including at trap time:

* ``executed`` and the deferred stat counters (``st.c``) are updated at
  *segment* boundaries — a segment ends at each instruction that can
  raise — so any trap observes precisely the counts the reference's
  per-instruction accounting would have produced.
* A fused block checks the instruction budget once on entry against its
  static length; if the budget could trip inside the block, it falls
  back to single-stepping so :class:`StepBudgetExceeded` fires at the
  exact instruction, with the exact message, of the reference.
* Trap-time cycle corner cases are compensated inline (a poison/bounds-
  trapped access counts its instruction but not its cycle; a division by
  zero charges one cycle less than a completed division).

Runs with the wall-clock watchdog armed single-step (the deadline is
polled between instructions, as in the reference).

Instrumented runs compile a *second variant* instead of falling back to
the reference interpreter.  Translations are keyed by an
**instrumentation signature** — a bitmask of which instruments are
armed (``SIG_TRACE`` for a tracer, ``SIG_OBS`` for an observer) — and
the signature selects what the compiler inlines at each emit site:

* signature 0 is today's zero-cost variant: no guard, no emit, not even
  a dead branch — observability costs literally nothing when disarmed;
* with ``SIG_TRACE`` every instruction is prefixed with a direct call to
  the tracer's bound ``record`` method, placed exactly where the
  reference calls it (before the budget check, on pre-execution
  register values);
* with ``SIG_OBS`` the observer's emits are compiled inline at the
  reference's exact sites: ``CheckEvent`` between the bounds predicate
  and the trap, ``PromoteEvent`` (with ``obs.site`` attribution
  bracketing the IFP-unit call), ``BoundsSpillEvent`` before the
  bounds-table access, and ``scheme_assigned`` after local-object
  registration.

Fault injectors need no translation support at all: they live in the
shared IFP unit / metadata port, which both engines call through the
same bound methods.  The event *stream* (kinds, payloads, order), the
``RunStats``, and trap forensics are byte-identical to the reference
under any signature; the only latitude is that ``executed`` and the
deferred cycle counters lag by at most one basic block mid-block, which
no event payload (and hence no sink) can observe.

The one knowable divergence: when the watchdog fires at the exact
instruction where the budget also trips, this engine reports the timeout
and the reference the budget trap — unobservable in practice since
watchdog expiry is host-timing dependent.
"""

from __future__ import annotations

import re
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    BoundsTrap, LinkError, PoisonTrap, SimTrap, StepBudgetExceeded,
    TemporalViolation, WorkloadTimeout,
)
from repro.compiler.ir import IRFunction, Op
from repro.ifp.bounds import Bounds
from repro.mem.layout import ADDRESS_MASK
from repro.obs.events import BoundsSpillEvent, CheckEvent, PromoteEvent
from repro.temporal import temporal_violation
from repro.vm.interp import (
    Interpreter, U64, _CALL_EXTRA, _DIV_EXTRA, _MUL_EXTRA,
    _SCHEME_NAMES, _signed,
)

#: clears both poison bits of a tagged pointer
_PCLR = ~(3 << 62)

# instrumentation-signature bits (translation-cache key, see module doc)
SIG_TRACE = 1  #: a tracer is armed: inline tracer.record before each ins
SIG_OBS = 2    #: an observer is armed: inline guarded emits

# instruction classification for block formation
_SIMPLE = 0    #: cannot raise; fusable anywhere in a block
_RAISING = 1   #: may raise; fusable, but ends an accounting segment
_TERM = 2      #: branch/ret; fusable only as the last instruction
_BARRIER = 3   #: call/callptr; always compiled as its own block

#: auto tier: straight-line functions graduate to the superblock tier
#: after this many calls; functions with a backedge graduate immediately
_SUPER_CALL_THRESHOLD = 16

#: whole-function native chains dispatch by a linear arm scan, so only
#: functions at or below this many block arms compile as one function;
#: larger functions keep the fused table's O(1) dispatch and go native
#: per loop region instead
_SUPER_FUNC_ARMS = 24
#: a natural loop collapses into one native-loop handler only when its
#: arm chain stays below this length
_SUPER_REGION_ARMS = 16

# superblock tier: rewrite literal-indexed register accesses to pinned
# locals (emit() only ever produces literal indices outside call frames)
_PIN_REGS = re.compile(r"\bregs\[(\d+)\]")
_PIN_BNDS = re.compile(r"\bbnds\[(\d+)\]")


def _has_backedge(func: IRFunction) -> bool:
    return any(ins.op in (Op.JMP, Op.BZ, Op.BNZ) and ins.target <= ip
               for ip, ins in enumerate(func.instrs))


def _elision_sites(func: IRFunction) -> frozenset:
    """Static promote-elision pass (the CGuard / L4-Pointer move).

    A ``promote`` site is *elidable* when some earlier promote in the
    same basic block consumed provably the same register value with no
    intervening ``call``/``callptr``.  At such a site the IFP unit's
    one-entry promote memo is guaranteed fresh up to its runtime guards:
    only calls can reach the allocator/runtime, so the version vector
    (control-register versions, unmap epoch, temporal-registry version)
    cannot have moved since the dominating promote — guest stores may
    invalidate cached promote lines, but that bumps the unit's
    invalidation epoch, which the memo guard re-checks at run time.
    Elidable sites therefore compile to ``elide_promote``, which skips
    key construction and cache probing entirely on the (dominant) hit
    path and falls back to the full ``promote`` otherwise.

    Tracked state: the set of registers known to hold the last-promoted
    input value unchanged.  ``mv`` propagates membership; any other
    write to a tracked register evicts it; block leaders and calls
    clear the set.  The pass never *requires* a hit — ``elide_promote``
    degrades to ``promote`` when its pointer/epoch guard fails — so an
    over-approximation here costs speed, never soundness.
    """
    leaders = {0}
    for ip, ins in enumerate(func.instrs):
        op = ins.op
        if op in (Op.JMP, Op.BZ, Op.BNZ):
            leaders.add(ins.target)
            leaders.add(ip + 1)
        elif op in (Op.CALL, Op.CALLPTR, Op.RET):
            leaders.add(ip + 1)
    sites = set()
    srcs: set = set()
    for ip, ins in enumerate(func.instrs):
        if ip in leaders:
            srcs.clear()
        op = ins.op
        if op == Op.PROMOTE:
            if ins.a in srcs:
                sites.add(ip)
            # dst == a keeps the result in srcs: the result pointer
            # usually equals the input, and elide_promote's pointer
            # equality guard turns a mismatch into a plain promote
            srcs.clear()
            srcs.add(ins.a)
        elif op in (Op.CALL, Op.CALLPTR):
            srcs.clear()
        elif op == Op.MV:
            if ins.a in srcs:
                srcs.add(ins.dst)
            else:
                srcs.discard(ins.dst)
        elif ins.dst >= 0:
            srcs.discard(ins.dst)
    return frozenset(sites)


class _Act:
    """Per-activation state threaded through the compiled handlers.

    ``c`` is the deferred-counter block, indexed as ``[base, promote,
    ifp_arith, bounds_ls, extra_cycles, loads, stores]``.  Total cycles
    at flush = ``c[0] + c[2] + c[3] + c[4]`` (every base / ifp-arith /
    bounds-ls instruction costs its baseline cycle; extras — cache
    accesses, mul/div/call latencies, promote results — accumulate in
    ``c[4]``).
    """

    __slots__ = ("regs", "bnds", "frame_base", "c", "ret", "retb")


#: value expressions for the single-cycle BIN/BINI variants, keyed by the
#: IR-assigned code (see repro.compiler.ir.BIN_CODES).  {a}/{b} are
#: replaced with operand expressions at translate time.  mul (2) and
#: div/rem (3/4) carry extra cycles and are emitted separately.
_BIN_EXPR = {
    0: "({a} + {b}) & U64",
    1: "({a} - {b}) & U64",
    5: "{a} & {b}",
    6: "{a} | {b}",
    7: "{a} ^ {b}",
    8: "({a} << ({b} & 63)) & U64",
    9: "{a} >> ({b} & 63)",
    10: "(_signed({a}) >> ({b} & 63)) & U64",
    11: "int({a} == {b})",
    12: "int({a} != {b})",
    13: "int({a} < {b})",
    14: "int({a} <= {b})",
    15: "(-{a}) & U64",
    16: "int({a} == 0)",
    17: "(~{a}) & U64",
    18: "int(({a} & ADDRESS_MASK) == ({b} & ADDRESS_MASK))",
    19: "int(({a} & ADDRESS_MASK) != ({b} & ADDRESS_MASK))",
    20: "int(({a} & ADDRESS_MASK) < ({b} & ADDRESS_MASK))",
    21: "int(({a} & ADDRESS_MASK) <= ({b} & ADDRESS_MASK))",
    22: "(({a} & ADDRESS_MASK) - ({b} & ADDRESS_MASK)) & U64",
}

#: signed overrides (only slt/sle interpret their operands as signed)
_BIN_EXPR_SIGNED = {
    13: "int(_signed({a}) < _signed({b}))",
    14: "int(_signed({a}) <= _signed({b}))",
}


class _Emitted:
    """Source fragment for one instruction."""

    __slots__ = ("counts", "lines", "kind", "ret_expr")

    def __init__(self, counts, lines, kind, ret_expr=None):
        self.counts = counts      #: static 7-tuple of st.c deltas
        self.lines = lines        #: statements (may embed their own indent)
        self.kind = kind
        self.ret_expr = ret_expr  #: next-ip expression for _TERM


class _FuncCompiler:
    """Compiles one IRFunction into handler lists for a FastInterpreter.

    Produces two views sharing the barrier handlers:

    * ``fused`` — basic blocks collapsed into one compiled function each,
      used by the no-deadline loop;
    * ``singles`` — one handler per instruction, used when the wall-clock
      watchdog is armed (the deadline is polled between instructions) and
      by the near-budget fallback of fused blocks.

    ``sig`` is the instrumentation signature (``SIG_TRACE`` |
    ``SIG_OBS``): it selects which emit statements are compiled inline.
    Signature 0 produces the uninstrumented variant with no emit code at
    all.
    """

    def __init__(self, interp: "FastInterpreter", func: IRFunction,
                 sig: int = 0):
        self.interp = interp
        self.func = func
        self.sig = sig
        self.trace = bool(sig & SIG_TRACE)
        self.obs = bool(sig & SIG_OBS)
        self.ns = {
            "U64": U64, "ADDRESS_MASK": ADDRESS_MASK, "_signed": _signed,
            "Bounds": Bounds, "SimTrap": SimTrap, "PoisonTrap": PoisonTrap,
            "BoundsTrap": BoundsTrap, "LinkError": LinkError,
            "StepBudgetExceeded": StepBudgetExceeded,
            "I": interp, "stats": interp.stats,
            "access": interp.hierarchy.access_cycles,
            "mem_load": interp.memory.load_int,
            "mem_store": interp.memory.store_int,
            "memory": interp.memory,
            "mac_compute": interp.ifp.mac.compute,
            "tagged": interp._ifpadd_tagged,
            "promote": interp.ifp.promote,
            "elide": interp.ifp.elide_promote,
            "call_function": interp.call_function,
            "FBA": interp.functions_by_address,
            "FN": func.name, "LIMIT": interp._limit, "PCLR": _PCLR,
        }
        # Temporal lock-and-key (repro.temporal): check lines are only
        # *emitted* when the machine's registry exists, so a temporal=off
        # machine compiles exactly the code it always did — zero cost.
        # Translations are cached per machine instance and the policy is
        # fixed at construction, so the specialization cannot go stale.
        # statically-proven promote-elision sites (empty when promotes
        # are compiled away entirely under no_promote)
        self.elide_sites = (frozenset() if interp._no_promote
                            else _elision_sites(func))
        self.temporal = interp._temporal is not None
        if self.temporal:
            self.ns["tprobe"] = interp._temporal.probe
            self.ns["tviol"] = temporal_violation
            self.ns["TemporalViolation"] = TemporalViolation
        if self.trace:
            # the bound method, resolved once at translate time: a traced
            # instruction costs one direct call, no attribute walk
            self.ns["T"] = interp.machine.tracer.record
            self.ns["INS"] = func.instrs
        if self.obs:
            obs = interp.machine.obs
            self.ns["OB"] = obs
            # Specialize the emit call: for the standard Observer (whose
            # emit() only forwards to its bus) bind the bus's emit
            # directly, skipping one call frame per event.  Custom
            # observers keep their own emit.
            emit = obs.emit
            from repro.obs.observer import Observer
            if type(obs) is Observer:
                emit = obs.bus.emit
            self.ns["OBE"] = emit
            self.ns["CK"] = CheckEvent
            self.ns["PE"] = PromoteEvent
            self.ns["BSE"] = BoundsSpillEvent
            self.ns["SCHEME"] = _SCHEME_NAMES

    def _site(self, ip: int) -> str:
        """Intern the ``(function, ip)`` site tuple as a translate-time
        constant; emit sites reference it by name instead of building a
        fresh tuple per event."""
        name = f"S{ip}"
        if name not in self.ns:
            self.ns[name] = (self.func.name, ip)
        return name

    # -- per-instruction source ---------------------------------------------

    def emit(self, ins, ip: int) -> _Emitted:
        op = ins.op
        nip = ip + 1
        d, a, b, imm = ins.dst, ins.a, ins.b, ins.imm

        if op == Op.BIN or op == Op.BINI:
            return self._emit_bin(ins)
        if op == Op.LOAD or op == Op.STORE:
            kind = "load" if op == Op.LOAD else "store"
            lines = [
                f"_p = regs[{a}]",
                "if _p >> 62:",
                "    c[4] -= 1",
                f"    raise PoisonTrap('{kind} through poisoned pointer',"
                f" _p, pc=(FN, {ip}))",
                ("_ea = _p & ADDRESS_MASK" if imm == 0 else
                 f"_ea = ((_p & ADDRESS_MASK) + {imm}) & ADDRESS_MASK"),
                f"_bd = bnds[{a}]",
                "if _bd is not None:",
                "    stats.implicit_checks += 1",
            ]
            if self.obs:
                # the reference emits the CheckEvent between computing
                # the predicate and delivering the trap
                lines += [
                    f"    _ps = (_bd.lower <= _ea"
                    f" and _ea + {ins.size} <= _bd.upper)",
                    f"    OBE(CK({self._site(ip)}, '{kind}', False, _ea,"
                    f" {ins.size}, _ps))",
                    "    if not _ps:",
                ]
            else:
                lines += [
                    f"    if not (_bd.lower <= _ea"
                    f" and _ea + {ins.size} <= _bd.upper):",
                ]
            lines += [
                "        stats.check_failures += 1",
                "        c[4] -= 1",
                f"        raise BoundsTrap('{kind} out of bounds', _p,"
                f" _bd.lower, _bd.upper, pc=(FN, {ip}))",
            ]
            if self.temporal:
                # lock==key probe, exactly where the reference runs it:
                # after the bounds check passes, before the access is
                # charged (hence the c[4] -= 1 on the trap path — the
                # reference raises before its ``cycles += 1 + access``)
                lines += [
                    "    _tk = _bd.tkey",
                    "    if _tk:",
                    "        stats.temporal_checks += 1",
                    "        _te = tprobe(_bd.tbase)",
                    "        if _te is None or not _te[1]"
                    " or _te[0] != _tk:",
                    "            stats.temporal_failures += 1",
                    "            c[4] -= 1",
                    f"            raise tviol('{kind}', _p, _bd.tbase,"
                    f" _tk, _te, pc=(FN, {ip}))",
                ]
            if op == Op.LOAD:
                lines += [
                    f"c[4] += access(_ea, {ins.size}, False)",
                    f"regs[{d}] = mem_load(_ea, {ins.size},"
                    f" {bool(ins.signed)}) & U64",
                    f"bnds[{d}] = None",
                ]
                return _Emitted((1, 0, 0, 0, 0, 1, 0), lines, _RAISING)
            lines += [
                f"c[4] += access(_ea, {ins.size}, True)",
                f"mem_store(_ea, regs[{b}], {ins.size})",
            ]
            return _Emitted((1, 0, 0, 0, 0, 0, 1), lines, _RAISING)
        if op == Op.MV:
            return _Emitted((1, 0, 0, 0, 0, 0, 0),
                            [f"regs[{d}] = regs[{a}]",
                             f"bnds[{d}] = bnds[{a}]"], _SIMPLE)
        if op == Op.LI:
            return _Emitted((1, 0, 0, 0, 0, 0, 0),
                            [f"regs[{d}] = {imm & U64}",
                             f"bnds[{d}] = None"], _SIMPLE)
        if op == Op.BZ:
            return _Emitted((1, 0, 0, 0, 0, 0, 0), [], _TERM,
                            f"{ins.target} if regs[{a}] == 0 else {nip}")
        if op == Op.BNZ:
            return _Emitted((1, 0, 0, 0, 0, 0, 0), [], _TERM,
                            f"{ins.target} if regs[{a}] != 0 else {nip}")
        if op == Op.JMP:
            return _Emitted((1, 0, 0, 0, 0, 0, 0), [], _TERM,
                            f"{ins.target}")
        if op == Op.TRUNC:
            bits = ins.size * 8
            mask = (1 << bits) - 1
            if ins.signed:
                lines = [
                    f"_v = regs[{a}] & {mask}",
                    f"if _v & {1 << (bits - 1)}:",
                    f"    _v |= {U64 >> bits << bits}",
                    f"regs[{d}] = _v",
                    f"bnds[{d}] = None",
                ]
            else:
                lines = [f"regs[{d}] = regs[{a}] & {mask}",
                         f"bnds[{d}] = None"]
            return _Emitted((1, 0, 0, 0, 0, 0, 0), lines, _SIMPLE)
        if op == Op.FRAME:
            return _Emitted((1, 0, 0, 0, 0, 0, 0),
                            [f"regs[{d}] = st.frame_base + {imm}",
                             f"bnds[{d}] = None"], _SIMPLE)
        if op == Op.GLOB:
            address = self.interp.symbols.get(ins.name)
            if address is None:
                msg = f"undefined symbol {ins.name!r}"
                return _Emitted((1, 0, 0, 0, 0, 0, 0),
                                [f"raise LinkError({msg!r})"], _RAISING)
            return _Emitted((1, 0, 0, 0, 0, 0, 0),
                            [f"regs[{d}] = {address}",
                             f"bnds[{d}] = None"], _SIMPLE)
        if op == Op.CALL or op == Op.CALLPTR:
            return _Emitted((0, 0, 0, 0, 0, 0, 0), [], _BARRIER)
        if op == Op.RET:
            if a >= 0:
                lines = [f"st.ret = regs[{a}]", f"st.retb = bnds[{a}]"]
            else:
                lines = ["st.ret = 0", "st.retb = None"]
            return _Emitted((1, 0, 0, 0, _CALL_EXTRA, 0, 0), lines,
                            _TERM, "-1")
        if op == Op.PROMOTE:
            if self.interp._no_promote:
                return _Emitted((0, 1, 0, 0, 1, 0, 0),
                                [f"regs[{d}] = regs[{a}]",
                                 f"bnds[{d}] = None"], _SIMPLE)
            # statically-elidable sites go through the unit's memo-only
            # entry point (see _elision_sites); both names resolve to
            # bound methods of the shared IFP unit, so the reference's
            # own memo fires at exactly the same dynamic sites and the
            # elision counters stay engine-identical
            pfn = "elide" if ip in self.elide_sites else "promote"
            if self.obs:
                # site attribution brackets the unit call so unit-level
                # events (metadata fetch, MAC, narrow) inherit it; if
                # promote raises, site stays set — as in the reference
                site = self._site(ip)
                if self.temporal:
                    promote_call = [
                        "try:",
                        f"    _pr = {pfn}(_pv)",
                        "except TemporalViolation as _tv:",
                        f"    _tv.pc = {site}",
                        "    raise",
                    ]
                else:
                    promote_call = [f"_pr = {pfn}(_pv)"]
                lines = [
                    f"_pv = regs[{a}]",
                    f"OB.site = {site}",
                ] + promote_call + [
                    "c[4] += _pr.cycles",
                    f"regs[{d}] = _pr.pointer",
                    f"bnds[{d}] = _pr.bounds",
                    f"OBE(PE({site}, _pv,"
                    " SCHEME[(_pv >> 60) & 3], _pr.outcome.value,"
                    " _pr.narrowed, _pr.cycles))",
                    "OB.site = None",
                ]
                return _Emitted((0, 1, 0, 0, 0, 0, 0), lines, _RAISING)
            if self.temporal:
                # stamp the promote site on a temporal trap, as the
                # reference does (no cycle compensation: the reference
                # raises before charging the promote's result cycles,
                # and a promote contributes no baseline cycle)
                lines = [
                    "try:",
                    f"    _pr = {pfn}(regs[{a}])",
                    "except TemporalViolation as _tv:",
                    f"    _tv.pc = (FN, {ip})",
                    "    raise",
                ]
            else:
                lines = [f"_pr = {pfn}(regs[{a}])"]
            lines += [
                "c[4] += _pr.cycles",
                f"regs[{d}] = _pr.pointer",
                f"bnds[{d}] = _pr.bounds",
            ]
            return _Emitted((0, 1, 0, 0, 0, 0, 0), lines, _RAISING)
        if op == Op.IFPADD:
            delta = f"{imm}" if b < 0 else f"_signed(regs[{b}])"
            lines = [
                f"_v = regs[{a}]",
                f"_ad = ((_v & ADDRESS_MASK) + {delta}) & ADDRESS_MASK",
                "_tg = _v >> 48",
                f"regs[{d}] = _ad if _tg == 0"
                f" else tagged(_v, _ad, _tg, bnds[{a}])",
                f"bnds[{d}] = bnds[{a}]",
            ]
            return _Emitted((0, 0, 1, 0, 0, 0, 0), lines, _SIMPLE)
        if op == Op.IFPBND:
            size = f"{imm}" if b < 0 else f"regs[{b}]"
            lines = [
                f"_v = regs[{a}]",
                f"_sz = {size}",
                "_ad = _v & ADDRESS_MASK",
                f"regs[{d}] = _v",
                f"bnds[{d}] = Bounds(_ad, _ad + _sz)",
            ]
            return _Emitted((0, 0, 1, 0, 0, 0, 0), lines, _SIMPLE)
        if op == Op.IFPIDX:
            lb = self.interp._local_sub_bits
            sb = self.interp._subheap_sub_bits
            lines = [
                f"_v = regs[{a}]",
                "_s = (_v >> 60) & 3",
                f"_w = {lb} if _s == 1 else {sb} if _s == 2 else 0",
                "if _w:",
                "    _m = (1 << _w) - 1",
                f"    _f = (((_v >> 48) & _m) + {imm}) & _m",
                "    _v = (_v & ~(_m << 48)) | (_f << 48)",
                f"regs[{d}] = _v",
                f"bnds[{d}] = bnds[{a}]",
            ]
            return _Emitted((0, 0, 1, 0, 0, 0, 0), lines, _SIMPLE)
        if op == Op.IFPCHK:
            lines = [
                f"_v = regs[{a}]",
                f"_bd = bnds[{a}]",
                "if _bd is not None:",
                "    _ad = _v & ADDRESS_MASK",
                "    stats.implicit_checks += 1",
            ]
            if self.obs:
                lines += [
                    f"    _ps = (_bd.lower <= _ad"
                    f" and _ad + {imm} <= _bd.upper)",
                    f"    OBE(CK({self._site(ip)}, 'ifpchk', True, _ad,"
                    f" {imm}, _ps))",
                    "    if not _ps:",
                ]
            else:
                lines += [
                    f"    if not (_bd.lower <= _ad"
                    f" and _ad + {imm} <= _bd.upper):",
                ]
            lines += [
                "        stats.check_failures += 1",
                f"        _v = (_v & PCLR) | {1 << 62}",
                f"regs[{d}] = _v",
                f"bnds[{d}] = _bd",
            ]
            return _Emitted((0, 0, 1, 0, 0, 0, 0), lines, _SIMPLE)
        if op == Op.IFPEXTRACT:
            lines = [
                f"_v = regs[{a}]",
                f"_bd = bnds[{a}]",
                "if _bd is not None:",
                "    _ad = _v & ADDRESS_MASK",
                "    _v = (_v & PCLR) | ((0 if _bd.lower <= _ad"
                " < _bd.upper else 1) << 62)",
                f"regs[{d}] = _v",
                f"bnds[{d}] = None",
            ]
            return _Emitted((0, 0, 1, 0, 0, 0, 0), lines, _SIMPLE)
        if op == Op.IFPMD:
            lines = [f"regs[{d}] = (regs[{a}] & ADDRESS_MASK)"
                     f" | {imm << 48}",
                     f"bnds[{d}] = None"]
            if ins.name:
                lines.append("stats.local_objects += 1")
                if ins.name == "local+lt":
                    lines.append("stats.local_objects_lt += 1")
                if self.obs:
                    lines += [
                        f"OB.site = {self._site(ip)}",
                        f"OB.scheme_assigned('local', regs[{d}], 0,"
                        f" {ins.name == 'local+lt'})",
                        "OB.site = None",
                    ]
            return _Emitted((0, 0, 1, 0, 0, 0, 0), lines, _SIMPLE)
        if op == Op.IFPMAC:
            mac_cycles = self.interp.machine.config.ifp.mac_cycles
            lines = [
                f"regs[{d}] = mac_compute((regs[{a}] & ADDRESS_MASK,"
                f" {imm}, regs[{b}]))",
                f"bnds[{d}] = None",
            ]
            return _Emitted((0, 0, 1, 0, mac_cycles, 0, 0), lines,
                            _SIMPLE)
        if op == Op.LDBND:
            lines = ([f"OBE(BSE({self._site(ip)}, False))"]
                     if self.obs else []) + [
                f"_ea = (regs[{a}] & ADDRESS_MASK) + {imm}",
                "c[4] += access(_ea, 16, False)",
                "if not memory.is_mapped(_ea, 16):",
                "    memory.map_range(_ea, 16)",
                "_lo = memory.load_u64(_ea)",
                "_hi = memory.load_u64(_ea + 8)",
                f"bnds[{d}] = None if _lo == 0 and _hi == 0"
                " else Bounds(_lo, _hi)",
            ]
            return _Emitted((0, 0, 0, 1, 0, 0, 0), lines, _RAISING)
        if op == Op.STBND:
            lines = ([f"OBE(BSE({self._site(ip)}, True))"]
                     if self.obs else []) + [
                f"_ea = (regs[{a}] & ADDRESS_MASK) + {imm}",
                "c[4] += access(_ea, 16, True)",
                "if not memory.is_mapped(_ea, 16):",
                "    memory.map_range(_ea, 16)",
                f"_bd = bnds[{b}]",
                "if _bd is None:",
                "    memory.store_u64(_ea, 0)",
                "    memory.store_u64(_ea + 8, 0)",
                "else:",
                "    memory.store_u64(_ea, _bd.lower)",
                "    memory.store_u64(_ea + 8, _bd.upper)",
            ]
            return _Emitted((0, 0, 0, 1, 0, 0, 0), lines, _RAISING)
        # Unreachable from compiled programs; message rendered now so it
        # matches what the reference would produce at run time.
        msg = f"unimplemented opcode {op}"
        return _Emitted((0, 0, 0, 0, 0, 0, 0),
                        [f"raise SimTrap({msg!r})"], _RAISING)

    def _emit_bin(self, ins) -> _Emitted:
        d, a = ins.dst, ins.a
        is_imm = ins.op == Op.BINI
        code = ins.code
        aex = f"regs[{a}]"
        bex = f"({ins.imm})" if is_imm else f"regs[{ins.b}]"
        if code == 2:
            return _Emitted(
                (1, 0, 0, 0, _MUL_EXTRA + 1, 0, 0),
                [f"regs[{d}] = ({aex} * {bex}) & U64",
                 f"bnds[{d}] = None"], _SIMPLE)
        if code == 3 or code == 4:
            lines = [
                f"_b = {bex}",
                "if _b == 0:",
                "    c[4] -= 1",
                "    raise SimTrap('division by zero')",
                f"_a = {aex}",
            ]
            if ins.signed:
                lines += ["_sa = _signed(_a)", "_sb = _signed(_b)"]
            else:
                lines += ["_sa = _a", "_sb = _b"]
            lines += [
                "_q = abs(_sa) // abs(_sb)",
                "if (_sa < 0) != (_sb < 0):",
                "    _q = -_q",
                (f"regs[{d}] = _q & U64" if code == 3 else
                 f"regs[{d}] = (_sa - _q * _sb) & U64"),
                f"bnds[{d}] = None",
            ]
            return _Emitted((1, 0, 0, 0, _DIV_EXTRA + 1, 0, 0), lines,
                            _RAISING)
        table = _BIN_EXPR_SIGNED if ins.signed else _BIN_EXPR
        expr = table.get(code) or _BIN_EXPR.get(code)
        if expr is None:
            # The reference raises before charging the instruction's
            # trailing cycle; compensate the baseline cycle c[0] implies.
            return _Emitted((1, 0, 0, 0, 0, 0, 0),
                            ["c[4] -= 1",
                             f"raise SimTrap('bad BIN code {code}')"],
                            _RAISING)
        if is_imm and code in (8, 9, 10):
            bex = f"{ins.imm & 63}"  # constant-fold the shift count
        return _Emitted((1, 0, 0, 0, 0, 0, 0),
                        [f"regs[{d}] = {expr.format(a=aex, b=bex)}",
                         f"bnds[{d}] = None"], _SIMPLE)

    # -- call/callptr (barrier) handlers ------------------------------------

    def _emit_call(self, ins, ip: int) -> List[str]:
        """Body lines for a call 1-block (flush + dispatch)."""
        nip = ip + 1
        args = ", ".join(f"regs[{r}]" for r in ins.args)
        bounds = ", ".join(f"bnds[{r}]" for r in ins.args)
        lines = [
            "c[0] += 1",
            f"c[4] += {_CALL_EXTRA}",
            f"_as = [{args}]",
            f"_bs = [{bounds}]",
        ]
        if ins.op == Op.CALL:
            target = f"{ins.name!r}"
        else:
            lines += [
                f"_ad = regs[{ins.a}] & ADDRESS_MASK",
                "_nm = FBA.get(_ad)",
                "if _nm is None:",
                "    raise SimTrap('indirect call to non-function"
                " address 0x%x' % _ad)",
            ]
            target = "_nm"
        # Flush the deferred counters before recursing so nested runs
        # see consistent global stats (the reference does the same).
        lines += [
            "stats.base_instructions += c[0]",
            "stats.promote_instructions += c[1]",
            "stats.ifp_arith_instructions += c[2]",
            "stats.bounds_ls_instructions += c[3]",
            "stats.cycles += c[0] + c[2] + c[3] + c[4]",
            "stats.loads += c[5]",
            "stats.stores += c[6]",
            "c[0] = c[1] = c[2] = c[3] = c[4] = c[5] = c[6] = 0",
            f"_v, _rb = call_function({target}, _as, _bs)",
        ]
        if ins.dst >= 0:
            lines += [f"regs[{ins.dst}] = _v", f"bnds[{ins.dst}] = _rb"]
        lines.append(f"return {nip}")
        return lines

    # -- block assembly ------------------------------------------------------

    def _assemble(self, header: List[str], body: List[str]) -> object:
        src = "def _b(st):\n" + "".join(
            f"    {line}\n" for line in header + body)
        ns = dict(self.ns)
        exec(src, ns)  # noqa: S102 - templates above, literals only
        return ns["_b"]

    def _single_header(self, ip: int) -> List[str]:
        """Accounting prologue for a 1-instruction block: exact budget
        check with the reference's message and pc."""
        return [
            "e = I.executed + 1",
            "if e > LIMIT:",
            "    raise StepBudgetExceeded(",
            "        f'instruction limit exceeded"
            " ({e:,} > {LIMIT:,})',",
            f"        executed=e, limit=LIMIT, pc=(FN, {ip}))",
            "I.executed = e",
            "regs = st.regs",
            "bnds = st.bnds",
            "c = st.c",
        ]

    @staticmethod
    def _counter_lines(counts) -> List[str]:
        return [f"c[{i}] += {n}" for i, n in enumerate(counts) if n]

    def compile_single(self, ins, ip: int) -> object:
        if ins.op == Op.CALL or ins.op == Op.CALLPTR:
            body = self._emit_call(ins, ip)
        else:
            em = self.emit(ins, ip)
            body = self._counter_lines(em.counts) + list(em.lines)
            body.append(f"return {em.ret_expr if em.kind == _TERM else ip + 1}")
        # the reference records the trace before the budget check, on
        # pre-execution register values — so does the compiled prologue
        pre = [f"T(FN, {ip}, INS[{ip}], st.regs)"] if self.trace else []
        return self._assemble(pre + self._single_header(ip), body)

    def compile_block(self, emitted: List[Tuple[int, _Emitted]],
                      fallback) -> object:
        """Compile a fused run of >= 2 instructions into one function.

        ``emitted`` is [(ip, _Emitted), ...] in order; the last entry may
        be a terminator.  ``fallback`` single-steps from the block start
        and is taken when the instruction budget could trip inside.
        """
        k = len(emitted)
        header = [
            "e0 = I.executed",
            f"if e0 + {k} > LIMIT:",
            "    return _fb(st)",
            "regs = st.regs",
            "bnds = st.bnds",
            "c = st.c",
        ]
        # Segments: executed/counters become exact at each raising
        # instruction (and at the end), so a trap anywhere observes the
        # reference's counts.
        body: List[str] = []
        seg_counts = [0] * 7
        seg_lines: List[str] = []
        done = 0

        def close_segment(through: int) -> None:
            nonlocal seg_counts, seg_lines, done
            if through > done:
                body.append(f"I.executed = e0 + {through}")
            body.extend(self._counter_lines(seg_counts))
            body.extend(seg_lines)
            done = through
            seg_counts = [0] * 7
            seg_lines = []

        for index, (ip, em) in enumerate(emitted):
            if self.trace:
                # in program order, before the instruction's own effect
                # (and before any statement of it that can raise)
                em.lines = [f"T(FN, {ip}, INS[{ip}], regs)"] \
                    + list(em.lines)
            for i, n in enumerate(em.counts):
                seg_counts[i] += n
            if em.kind == _RAISING:
                # executed/counters (including this instruction's) must
                # be current before any statement that can raise
                close_segment(index + 1)
                body.extend(em.lines)
            elif em.kind == _TERM:
                seg_lines.extend(em.lines)
                close_segment(index + 1)
                body.append(f"return {em.ret_expr}")
                break
            else:
                seg_lines.extend(em.lines)
        else:
            close_segment(k)
            body.append(f"return {emitted[-1][0] + 1}")
        ns_extra = {"_fb": fallback}
        src = "def _b(st):\n" + "".join(
            f"    {line}\n" for line in header + body)
        ns = dict(self.ns)
        ns.update(ns_extra)
        exec(src, ns)  # noqa: S102
        return ns["_b"]

    # -- function-level translation ------------------------------------------

    def branch_targets(self) -> set:
        targets = set()
        for ins in self.func.instrs:
            if ins.op in (Op.JMP, Op.BZ, Op.BNZ):
                targets.add(ins.target)
        return targets

    def compile_singles(self) -> list:
        handlers = [self.compile_single(ins, ip)
                    for ip, ins in enumerate(self.func.instrs)]
        handlers.append(_make_sentinel(self.func.name))
        return handlers

    def compile_fused(self) -> list:
        instrs = self.func.instrs
        count = len(instrs)
        targets = self.branch_targets()
        handlers: list = [None] * (count + 1)
        handlers[count] = _make_sentinel(self.func.name)
        interp = self.interp
        func = self.func
        ip = 0
        while ip < count:
            em = self.emit(instrs[ip], ip)
            if em.kind == _BARRIER:
                handlers[ip] = self.compile_single(instrs[ip], ip)
                ip += 1
                continue
            # grow a block: stop before a barrier or a branch target,
            # stop after a terminator
            block = [(ip, em)]
            end = ip + 1
            while end < count and end not in targets \
                    and block[-1][1].kind != _TERM:
                nxt = self.emit(instrs[end], end)
                if nxt.kind == _BARRIER:
                    break
                block.append((end, nxt))
                end += 1
            if len(block) == 1:
                handlers[ip] = self.compile_single(instrs[ip], ip)
            else:
                handlers[ip] = self.compile_block(
                    block, _make_fallback(interp, func, ip, self.sig))
            # non-leader slots inside the block are never entered (blocks
            # stop before branch targets); point them at the sentinel's
            # defensive neighbour anyway for debuggability
            for inner, _ in block[1:]:
                handlers[inner] = _make_unreachable(func.name, inner)
            ip = end
        return handlers

    # -- superblock (whole-function) translation -----------------------------

    def compile_super(self):
        """Superblock tier: native control flow for hot code.

        Returns either one compiled function covering the whole
        IRFunction (small functions — the handler table and its
        per-block closure calls disappear entirely) or an enhanced
        handler table (large functions — identical to the fused table
        except that each small natural loop is collapsed into a single
        native-loop handler).

        Inside a native chain, blocks are arms of an address-ordered
        ``if ip ==`` chain under ``while True``; branches are rendered
        at translate time (a later target falls through to its arm's
        test, an earlier one ``continue``s, a target outside the chain
        leaves it).  Within a *loop* chain the registers the loop
        touches are additionally pinned to locals — unpacked once on
        loop entry, spilled back to the activation's banks on every
        exit edge — so iterating costs local loads instead of list
        indexing, with no per-block dispatch at all.

        Chains are linear scans, so only regions below a small arm cap
        go native; everything else keeps the fused table's O(1)
        dispatch.  Accounting is byte-identical to the fused tier (same
        segment logic and counter lines); a block that could trip the
        instruction budget spills its pinned registers and defers to
        the single-step fallback so :class:`StepBudgetExceeded` fires
        at the reference's exact instruction with the exact message.
        Only the uninstrumented signature compiles here — instrumented
        or deadline-armed runs use the fused/single tiers — so the
        ``regs[N]`` → pinned-local rewrite sees only literal indices.
        """
        assert self.sig == 0, "superblock tier is uninstrumented-only"
        func = self.func
        instrs = func.instrs
        count = len(instrs)

        leaders = {0, count}
        for ip, ins in enumerate(instrs):
            op = ins.op
            if op in (Op.JMP, Op.BZ, Op.BNZ):
                leaders.add(min(ins.target, count))
                leaders.add(ip + 1)
            elif op in (Op.CALL, Op.CALLPTR):
                leaders.add(ip)
                leaders.add(ip + 1)
            elif op == Op.RET:
                leaders.add(ip + 1)
        order = sorted(leaders)
        self._next_leader = {order[i]: order[i + 1]
                             for i in range(len(order) - 1)}
        starts = [ld for ld in order if ld < count]

        # natural-loop extents: each backward branch at ip spans
        # [target, ip + 1); overlapping spans merge, so afterwards every
        # backward transfer is region-internal and every region boundary
        # is a leader
        spans = sorted((ins.target, ip + 1)
                       for ip, ins in enumerate(instrs)
                       if ins.op in (Op.JMP, Op.BZ, Op.BNZ)
                       and ins.target <= ip)
        regions: List[list] = []
        for lo, hi in spans:
            if regions and lo < regions[-1][1]:
                if hi > regions[-1][1]:
                    regions[-1][1] = hi
            else:
                regions.append([lo, hi])

        if len(starts) <= _SUPER_FUNC_ARMS:
            return self._compile_whole(starts, regions, count)

        # Large function: fused dispatch, small loops collapsed into
        # native-loop handlers entered through per-leader thunks.  The
        # untouched base table is cached for the fused tier too.
        base = self.interp._fused.get((func.name, 0))
        if base is None:
            base = self.interp._fused[(func.name, 0)] = self.compile_fused()
        handlers = list(base)
        for lo, hi in regions:
            blocks = [b for b in starts if lo <= b < hi]
            if len(blocks) > _SUPER_REGION_ARMS:
                continue
            native = self._compile_loop(blocks)
            for leader in blocks:
                handlers[leader] = _make_region_entry(native, leader)
        return handlers

    # -- native-chain block body ---------------------------------------------

    def _native_block(self, start: int, transfer, spill: List[str],
                      fb_call: List[str], pinned: bool) -> List[str]:
        """Body lines for one block of a native chain.

        ``transfer(target)`` renders a control transfer; ``spill``
        restores the activation's register banks from pinned locals
        (empty when the context is unpinned) and prefixes ``fb_call``
        (the budget fallback) and every chain-leaving edge the caller
        renders through ``transfer``.  ``pinned`` applies the
        local-rewrite to the emitted lines.
        """
        instrs = self.func.instrs
        end = self._next_leader[start]
        ins0 = instrs[start]
        if ins0.op in (Op.CALL, Op.CALLPTR):
            # own block with the exact single-instruction budget check;
            # no spill before the raise — nothing reads the register
            # banks after an uninstrumented trap
            body = [
                "e = I.executed + 1",
                "if e > LIMIT:",
                "    raise StepBudgetExceeded(",
                "        f'instruction limit exceeded"
                " ({e:,} > {LIMIT:,})',",
                f"        executed=e, limit=LIMIT, pc=(FN, {start}))",
                "I.executed = e",
            ]
            call_lines = self._emit_call(ins0, start)
            assert call_lines[-1] == f"return {start + 1}"
            body += call_lines[:-1]
            body += transfer(start + 1)
            return _pin(body) if pinned else body
        k = end - start
        fb = f"_fb{start}"
        self._native_fallbacks[fb] = _make_fallback(
            self.interp, self.func, start, 0)
        body = (["e0 = I.executed", f"if e0 + {k} > LIMIT:"]
                + [f"    {line}" for line in spill]
                + [f"    {line}" for line in fb_call])
        seg_counts = [0] * 7
        seg_lines: List[str] = []
        done = 0

        def close_segment(through: int) -> None:
            nonlocal seg_counts, seg_lines, done
            if through > done:
                body.append(f"I.executed = e0 + {through}")
            body.extend(self._counter_lines(seg_counts))
            body.extend(seg_lines)
            done = through
            seg_counts = [0] * 7
            seg_lines = []

        terminated = False
        for index in range(k):
            ip = start + index
            ins = instrs[ip]
            em = self.emit(ins, ip)
            for i, n in enumerate(em.counts):
                seg_counts[i] += n
            if em.kind == _RAISING:
                close_segment(index + 1)
                body.extend(em.lines)
            elif em.kind == _TERM:
                seg_lines.extend(em.lines)
                close_segment(index + 1)
                op = ins.op
                if op == Op.RET:
                    body.extend(self._native_ret)
                elif op == Op.JMP:
                    body.extend(transfer(ins.target))
                else:
                    cond = "==" if op == Op.BZ else "!="
                    taken = transfer(ins.target)
                    fall = transfer(ip + 1)
                    body.append(f"if regs[{ins.a}] {cond} 0:")
                    body.extend(f"    {line}" for line in taken)
                    if taken[-1].startswith("ip = "):
                        # both edges fall through to later arm tests;
                        # keep them exclusive
                        body.append("else:")
                        body.extend(f"    {line}" for line in fall)
                    else:
                        body.extend(fall)
                terminated = True
                break
            else:
                seg_lines.extend(em.lines)
        if not terminated:
            close_segment(k)
            body.extend(transfer(end))
        return _pin(body) if pinned else body

    def _reg_use(self, blocks: List[int]):
        """Registers a set of blocks reads or writes (operand scan —
        a superset of every literal index the emitted code contains)."""
        instrs = self.func.instrs
        used: set = set()
        for start in blocks:
            for ip in range(start, self._next_leader[start]):
                ins = instrs[ip]
                for r in (ins.dst, ins.a, ins.b):
                    if r >= 0:
                        used.add(r)
                if ins.args:
                    used.update(ins.args)
        return sorted(used)

    def _pin_lines(self, regs: List[int]):
        """Unpack/spill line pairs for a pinned register subset.  Spills
        write through the ``_R``/``_B`` prologue aliases so the
        pinned-local rewrite cannot touch them."""
        unpack = []
        spill = []
        for r in regs:
            unpack.append(f"r{r} = regs[{r}]")
            unpack.append(f"b{r} = bnds[{r}]")
            spill.append(f"_R[{r}] = r{r}")
            spill.append(f"_B[{r}] = b{r}")
        return unpack, spill

    def _compile_whole(self, starts: List[int], regions: List[list],
                       count: int):
        """One compiled function for the entire (small) IRFunction."""
        func = self.func
        self._native_fallbacks = {}
        self._native_ret = ["return"]

        items: list = []
        ri = 0
        for block in starts:
            while ri < len(regions) and block >= regions[ri][1]:
                ri += 1
            if ri < len(regions) and regions[ri][0] <= block:
                if items and items[-1][0] == "region" \
                        and items[-1][1] == regions[ri][0]:
                    items[-1][3].append(block)
                else:
                    items.append(["region", regions[ri][0],
                                  regions[ri][1], [block]])
            else:
                items.append(["block", block])
        items.append(["sentinel", count])

        item_idx: Dict[int, int] = {}
        inner_idx: Dict[int, int] = {}
        for idx, item in enumerate(items):
            if item[0] == "region":
                for j, block in enumerate(item[3]):
                    item_idx[block] = idx
                    inner_idx[block] = j
            else:
                item_idx[item[1]] = idx

        arms: List[str] = []
        for idx, item in enumerate(items):
            if item[0] == "block":
                def transfer(target: int, _idx=idx) -> List[str]:
                    lines = [f"ip = {target}"]
                    if item_idx[target] <= _idx:  # pragma: no cover -
                        # backward top-level edges are always
                        # region-internal after span merging
                        lines.append("continue")
                    return lines
                arms.append(f"if ip == {item[1]}:")
                arms += [f"    {line}" for line in self._native_block(
                    item[1], transfer, [], ["_fb%d(st)" % item[1],
                                            "return"], False)]
            elif item[0] == "region":
                pinned_regs = self._reg_use(item[3])
                unpack, spill = self._pin_lines(pinned_regs)
                arms.append(f"if {item[1]} <= ip < {item[2]}:")
                arms += [f"    {line}" for line in unpack]
                arms.append("    while True:")
                for j, block in enumerate(item[3]):
                    def transfer(target: int, _idx=idx, _j=j,
                                 _spill=spill) -> List[str]:
                        if item_idx[target] == _idx:
                            lines = [f"ip = {target}"]
                            if inner_idx[target] <= _j:
                                lines.append("continue")
                            return lines
                        return list(_spill) + [f"ip = {target}", "break"]
                    arms.append(f"        if ip == {block}:")
                    arms += [f"            {line}"
                             for line in self._native_block(
                                 block, transfer, spill,
                                 ["_fb%d(st)" % block, "return"], True)]
                arms.append("        raise AssertionError("
                            "'superblock lost dispatch at %d' % ip)")
            else:
                msg = f"function {func.name} fell off the end"
                arms.append(f"if ip == {count}:")
                arms.append(f"    raise SimTrap({msg!r})")

        src_lines = (["regs = st.regs", "bnds = st.bnds",
                      "_R = regs", "_B = bnds", "c = st.c",
                      "ip = 0", "while True:"]
                     + [f"    {line}" for line in arms])
        src = "def _sf(st):\n" + "".join(
            f"    {line}\n" for line in src_lines)
        ns = dict(self.ns)
        ns.update(self._native_fallbacks)
        exec(src, ns)  # noqa: S102 - templates above, literals only
        return ns["_sf"]

    def _compile_loop(self, blocks: List[int]):
        """One native-loop handler covering a small loop region of a
        large function; callable as ``fn(st, entry_ip)``, returns the
        next handler index (or -1 after ``ret``)."""
        self._native_fallbacks = {}
        self._native_ret = ["return -1"]
        inner_idx = {block: j for j, block in enumerate(blocks)}
        pinned_regs = self._reg_use(blocks)
        unpack, spill = self._pin_lines(pinned_regs)

        arms: List[str] = []
        for j, block in enumerate(blocks):
            def transfer(target: int, _j=j, _spill=spill) -> List[str]:
                t_inner = inner_idx.get(target)
                if t_inner is not None:
                    lines = [f"ip = {target}"]
                    if t_inner <= _j:
                        lines.append("continue")
                    return lines
                return list(_spill) + [f"return {target}"]
            arms.append(f"if ip == {block}:")
            arms += [f"    {line}" for line in self._native_block(
                block, transfer, spill,
                ["return _fb%d(st)" % block], True)]
        arms.append("raise AssertionError("
                    "'superblock lost dispatch at %d' % ip)")

        src_lines = (["regs = st.regs", "bnds = st.bnds",
                      "_R = regs", "_B = bnds", "c = st.c"]
                     + unpack
                     + ["while True:"]
                     + [f"    {line}" for line in arms])
        src = "def _rg(st, ip):\n" + "".join(
            f"    {line}\n" for line in src_lines)
        ns = dict(self.ns)
        ns.update(self._native_fallbacks)
        exec(src, ns)  # noqa: S102 - templates above, literals only
        return ns["_rg"]


def _make_region_entry(native, entry: int):
    def _h(st):
        return native(st, entry)
    return _h


def _pin(lines: List[str]) -> List[str]:
    """Rewrite literal-indexed register-bank accesses to pinned locals."""
    return [_PIN_BNDS.sub(r"b\1", _PIN_REGS.sub(r"r\1", line))
            for line in lines]


def _make_sentinel(name: str):
    def _h(st):
        raise SimTrap(f"function {name} fell off the end")
    return _h


def _make_unreachable(name: str, ip: int):
    def _h(st):  # pragma: no cover - blocks never start mid-run
        raise AssertionError(
            f"fastpath entered mid-block at {name}+{ip}")
    return _h


def _make_fallback(interp: "FastInterpreter", func: IRFunction, base: int,
                   sig: int):
    """Single-step continuation for a block entered too close to the
    instruction budget: runs the per-instruction handlers (which carry
    the exact budget check) until the function returns or traps."""
    def _fb(st):
        singles = interp._singles.get((func.name, sig))
        if singles is None:
            singles = interp._translate_singles(func, sig)
        ip = base
        while ip >= 0:
            ip = singles[ip](st)
        return -1
    return _fb


class FastInterpreter(Interpreter):
    """Block-compiling engine; drop-in replacement for the reference.

    Inherits the call-entry / builtin / deadline plumbing and the
    ``_ifpadd_tagged`` helper (the same code object the reference runs,
    so tag maintenance cannot diverge); only ``_run`` is replaced.
    """

    def __init__(self, machine):
        super().__init__(machine)
        #: (function name, signature) -> fused handler list
        self._fused: Dict[Tuple[str, int], list] = {}
        #: (function name, signature) -> per-instruction handler list
        self._singles: Dict[Tuple[str, int], list] = {}
        #: function name -> whole-function superblock translation
        #: (signature 0 only; instrumented runs use the fused tier)
        self._super: Dict[str, object] = {}
        self._super_calls: Dict[str, int] = {}
        self._super_loopy: Dict[str, bool] = {}
        engine = machine.config.engine
        #: superblock tier enabled at all (auto heuristic or forced)
        self._super_on = engine in ("auto", "superblock")
        #: engine=superblock: translate every function on first call
        self._super_forced = engine == "superblock"
        #: instrument identities the cached instrumented translations
        #: are bound to (compiled code holds the tracer's bound method
        #: and the observer object directly)
        self._armed = (None, None)

    def _sig(self) -> int:
        machine = self.machine
        return ((SIG_TRACE if machine.tracer is not None else 0)
                | (SIG_OBS if machine.obs is not None else 0))

    def arm_deadline(self, timeout_seconds) -> None:
        super().arm_deadline(timeout_seconds)
        # Called once per Machine.run: if the armed instrument objects
        # changed since the last run, instrumented translations bound to
        # the old objects are stale — drop them (signature-0 entries
        # bind no instrument and stay valid).
        armed = (self.machine.tracer, self.machine.obs)
        if armed != self._armed:
            self._fused = {key: handlers
                           for key, handlers in self._fused.items()
                           if key[1] == 0}
            self._singles = {key: handlers
                             for key, handlers in self._singles.items()
                             if key[1] == 0}
            self._armed = armed

    def _translate_fused(self, func: IRFunction, sig: int = 0) -> list:
        handlers = _FuncCompiler(self, func, sig).compile_fused()
        self._fused[(func.name, sig)] = handlers
        return handlers

    def _translate_singles(self, func: IRFunction, sig: int = 0) -> list:
        handlers = _FuncCompiler(self, func, sig).compile_singles()
        self._singles[(func.name, sig)] = handlers
        return handlers

    def _translate_super(self, func: IRFunction):
        fn = _FuncCompiler(self, func, 0).compile_super()
        self._super[func.name] = fn
        return fn

    def _super_fn(self, func: IRFunction):
        """Tier heuristic: whole-function translation for hot or loopy
        functions.  ``engine=superblock`` translates on first call;
        ``auto`` translates immediately when the function has a backedge
        (its iterations amortize the compile) and after
        ``_SUPER_CALL_THRESHOLD`` calls otherwise."""
        if not self._super_on:
            return None
        if not self._super_forced:
            name = func.name
            loopy = self._super_loopy.get(name)
            if loopy is None:
                loopy = self._super_loopy[name] = _has_backedge(func)
            if not loopy:
                n = self._super_calls.get(name, 0) + 1
                self._super_calls[name] = n
                if n < _SUPER_CALL_THRESHOLD:
                    return None
        return self._translate_super(func)

    def _run(self, func: IRFunction, args: List[int],
             arg_bounds: List[Optional[Bounds]]
             ) -> Tuple[int, Optional[Bounds]]:
        machine = self.machine
        frame_base = machine.push_frame(func.frame_size)
        st = _Act()
        st.regs = regs = [0] * func.num_regs
        st.bnds = bnds = [None] * func.num_regs
        st.frame_base = frame_base
        st.c = c = [0, 0, 0, 0, 0, 0, 0]
        st.ret = 0
        st.retb = None
        for index, preg in enumerate(func.param_regs):
            if index < len(args):
                regs[preg] = args[index] & U64
                bnds[preg] = arg_bounds[index] \
                    if index < len(arg_bounds) else None
        stats = self.stats
        name = func.name
        sig = self._sig()
        ip = 0
        try:
            deadline = self._deadline
            if deadline:
                # Watchdog armed: single-step so the deadline is polled
                # between instructions, exactly as the reference does.
                handlers = self._singles.get((name, sig)) \
                    or self._translate_singles(func, sig)
                monotonic = time.monotonic
                while ip >= 0:
                    e1 = self.executed + 1
                    if not e1 & 0xFFF and monotonic() > deadline:
                        self.executed = e1
                        raise WorkloadTimeout(
                            f"wall-clock timeout after "
                            f"{self._timeout_seconds:g}s "
                            f"({e1:,} instructions executed, "
                            f"at {name}+{ip})",
                            seconds=self._timeout_seconds,
                            executed=e1)
                    ip = handlers[ip](st)
            else:
                if sig == 0:
                    sup = self._super.get(name) or self._super_fn(func)
                    if sup is not None:
                        if type(sup) is list:
                            while ip >= 0:
                                ip = sup[ip](st)
                        else:
                            sup(st)
                        return st.ret, st.retb
                handlers = self._fused.get((name, sig)) \
                    or self._translate_fused(func, sig)
                while ip >= 0:
                    ip = handlers[ip](st)
            return st.ret, st.retb
        finally:
            stats.base_instructions += c[0]
            stats.promote_instructions += c[1]
            stats.ifp_arith_instructions += c[2]
            stats.bounds_ls_instructions += c[3]
            stats.cycles += c[0] + c[2] + c[3] + c[4]
            stats.loads += c[5]
            stats.stores += c[6]
            machine.pop_frame(func.frame_size)
