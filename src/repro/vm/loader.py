"""Program loader: lay out the image in simulated memory.

Assigns addresses to globals (with appended-metadata reserves for
registrable ones), string literals, layout tables, and function "text"
stubs (so function pointers are ordinary legacy pointers), then writes the
initial bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.compiler.ir import IRProgram, assign_bin_codes
from repro.errors import LinkError
from repro.mem import Memory
from repro.mem.layout import AddressSpaceLayout


@dataclass
class LoadedImage:
    """Symbol tables produced by loading."""

    symbols: Dict[str, int] = field(default_factory=dict)
    #: function-pointer address → function name
    functions_by_address: Dict[int, str] = field(default_factory=dict)
    #: global name → (address, size, layout table address, registrable)
    global_info: Dict[str, Tuple[int, int, int, bool]] = \
        field(default_factory=dict)
    globals_end: int = 0
    #: [base, end) envelope of the compile-time layout tables — the
    #: loader places them contiguously, so the IFP unit can snoop guest
    #: stores into the region with two compares (layout-walk cache
    #: invalidation).  ``(0, 0)`` when the program has no tables.
    layout_tables_base: int = 0
    layout_tables_end: int = 0


#: spacing between synthetic function entry points
_FUNC_STRIDE = 16


def load_program(program: IRProgram, memory: Memory,
                 layout: AddressSpaceLayout) -> LoadedImage:
    """Write the program image into memory; returns the symbol tables."""
    # Hand-built IR programs reach the VM without passing through
    # compile_source; give them their BIN/BINI codes here (no-op for
    # already-assigned programs, LinkError once for unknown variants).
    assign_bin_codes(program)
    image = LoadedImage()
    cursor = layout.globals_base

    # Function text stubs first (low addresses, like .text).
    for index, name in enumerate(sorted(program.functions)):
        address = cursor + index * _FUNC_STRIDE
        image.symbols[f"__func_{name}"] = address
        image.functions_by_address[address] = name
    cursor += len(program.functions) * _FUNC_STRIDE

    # Layout tables (read-only data, placed contiguously).
    if program.layout_tables:
        image.layout_tables_base = _align(cursor, 16)
    for symbol, table in program.layout_tables.items():
        cursor = _align(cursor, 16)
        table.address = cursor
        image.symbols[symbol] = cursor
        cursor += len(table.data)
    if program.layout_tables:
        image.layout_tables_end = cursor

    # Globals, with appended-metadata reserve where needed.
    for name, glob in program.globals.items():
        cursor = _align(cursor, max(glob.align, 1))
        glob.address = cursor
        image.symbols[name] = cursor
        cursor += max(glob.size, 1) + glob.metadata_reserve

    if cursor >= layout.globals_limit:
        raise LinkError("globals segment overflow")
    image.globals_end = _align(cursor, 4096)

    # Materialise and write initial bytes.
    memory.map_range(layout.globals_base, image.globals_end - layout.globals_base)
    for symbol, table in program.layout_tables.items():
        memory.write_bytes(table.address, table.data)
    for name, glob in program.globals.items():
        if glob.init:
            memory.write_bytes(glob.address, glob.init)
        lt_address = image.symbols.get(glob.layout_symbol, 0) \
            if glob.layout_symbol else 0
        image.global_info[name] = (glob.address, glob.size, lt_address,
                                   glob.needs_registration)
    return image


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)
